#!/usr/bin/env python3
"""Quickstart: run a random SFI campaign on the emulated POWER6-class core.

Builds the full-system model, loads it onto the (modelled) Awan
acceleration engine, runs the AVP workload suite fault-free to establish
references, then injects random latch-bit flips and classifies each one —
the core loop of the paper's Figure 1.

Usage:
    python examples/quickstart.py [--flips N] [--seed S]
"""

import argparse
import time

from repro import CampaignConfig, SfiExperiment
from repro.sfi.outcomes import OUTCOME_ORDER
from repro.stats import wilson_interval


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--flips", type=int, default=400,
                        help="number of bit flips to inject")
    parser.add_argument("--seed", type=int, default=2008)
    args = parser.parse_args()

    print("Preparing the machine (model load, AVP suite, references)...")
    start = time.perf_counter()
    experiment = SfiExperiment(CampaignConfig(suite_size=4))
    latch_map = experiment.latch_map
    print(f"  {len(latch_map):,} injectable latch bits across "
          f"{len(latch_map.units())} units "
          f"({time.perf_counter() - start:.1f}s)")
    for unit, bits in sorted(latch_map.unit_bit_counts().items()):
        print(f"    {unit:5s} {bits:6,} bits")

    print(f"\nInjecting {args.flips} random bit flips...")
    start = time.perf_counter()
    result = experiment.run_random_campaign(args.flips, seed=args.seed)
    elapsed = time.perf_counter() - start
    print(f"  {args.flips} injections in {elapsed:.1f}s "
          f"({1000 * elapsed / args.flips:.0f} ms each)\n")

    print(f"{'Outcome':<16}{'count':>8}{'fraction':>10}   95% CI")
    counts = result.counts()
    for outcome in OUTCOME_ORDER:
        low, high = wilson_interval(counts[outcome], result.total)
        print(f"{outcome.value:<16}{counts[outcome]:>8}"
              f"{counts[outcome] / result.total:>10.2%}"
              f"   [{low:.2%}, {high:.2%}]")

    stats = experiment.emulator.stats
    print(f"\nEngine accounting: {stats.cycles_run:,} cycles, "
          f"{stats.host_interactions:,} host interactions, "
          f"{stats.checkpoints_loaded} checkpoint reloads")
    print(f"Modelled emulator time: {stats.total_seconds:.1f}s "
          f"({stats.host_seconds / stats.total_seconds:.0%} host overhead)")


if __name__ == "__main__":
    main()
