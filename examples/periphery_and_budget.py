#!/usr/bin/env python3
"""Periphery injection + FIT budgeting (the paper's §4 future work and
designer workflow).

"Current and future work involves fault injections in the periphery of
the core, such as the I/O subsystem, memory subsystem and so on.  Future
core and system designs ... require careful analysis of soft error
sensitivities to optimally allocate and apportion any additional
resources to provide soft error protection."

This example enables the nest model (memory controller + I/O bridge),
runs targeted campaigns on every unit *including the periphery*, and
converts the measured derating into a designer-facing FIT budget.

Usage:
    python examples/periphery_and_budget.py [--flips-per-unit N]
"""

import argparse

from repro import CampaignConfig, CoreParams, SfiExperiment, per_unit_campaigns
from repro.analysis import render_budgets, render_fig3, unit_budgets


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--flips-per-unit", type=int, default=200)
    parser.add_argument("--fit-per-bit", type=float, default=0.0005,
                        help="raw upset rate per latch bit (FIT)")
    parser.add_argument("--seed", type=int, default=8)
    args = parser.parse_args()

    experiment = SfiExperiment(CampaignConfig(
        suite_size=4, core_params=CoreParams(include_nest=True)))
    units = experiment.latch_map.units()
    print(f"Model with periphery enabled: {len(experiment.latch_map):,} "
          f"latch bits across {units}\n")

    results = per_unit_campaigns(experiment, args.flips_per_unit,
                                 seed=args.seed)
    print(render_fig3(results, unit_order=("IFU", "IDU", "FXU", "FPU",
                                           "LSU", "RUT", "CORE", "NEST")))

    print("\nFIT budget (raw per-bit rate "
          f"{args.fit_per_bit} FIT/bit):")
    budgets = unit_budgets(results, experiment.latch_map.unit_bit_counts(),
                           args.fit_per_bit)
    print(render_budgets(budgets))

    worst = budgets[0]
    print(f"\n-> {worst.name} carries the largest unrecoverable-FIT "
          f"budget; protection resources go there first (paper, §4).")


if __name__ == "__main__":
    main()
