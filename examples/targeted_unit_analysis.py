#!/usr/bin/env python3
"""Targeted per-unit SER analysis (the paper's §3.1, Figures 3 and 4).

The beam cannot be focused on individual components; SFI can.  This
example injects an equal number of flips into each micro-architectural
unit, reports the per-unit outcome rates (Figure 3), then normalises by
each unit's latch-bit count to get its *contribution* to the core's total
recoveries/hangs/checkstops (Figure 4).

Usage:
    python examples/targeted_unit_analysis.py [--flips-per-unit N]
"""

import argparse

from repro import CampaignConfig, SfiExperiment, per_unit_campaigns
from repro.analysis import contribution_table, per_unit_derating, render_fig3, render_fig4
from repro.sfi.outcomes import Outcome


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--flips-per-unit", type=int, default=250)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    experiment = SfiExperiment(CampaignConfig(suite_size=4))
    unit_bits = experiment.latch_map.unit_bit_counts()

    print(f"Injecting {args.flips_per_unit} flips into each unit...\n")
    results = per_unit_campaigns(experiment, args.flips_per_unit,
                                 seed=args.seed)

    print(render_fig3(results))

    print("\nArchitectural derating per unit (fraction masked):")
    for unit, derating in sorted(per_unit_derating(results).items(),
                                 key=lambda item: item[1]):
        print(f"  {unit:5s} {derating:.1%}")
    weakest = min(per_unit_derating(results).items(), key=lambda kv: kv[1])
    print(f"  -> {weakest[0]} masks the least, as the paper found for the "
          f"recovery unit's control logic")

    print()
    contributions = contribution_table(results, unit_bits)
    print(render_fig4(contributions))
    top_recovery = max(contributions[Outcome.CORRECTED].items(),
                       key=lambda kv: kv[1])
    print(f"\n-> Highest contribution to recoveries: {top_recovery[0]} "
          f"({top_recovery[1]:.0%}); the paper attributes this to the LSU "
          f"having the most latch bits.")


if __name__ == "__main__":
    main()
