#!/usr/bin/env python3
"""SFI vs proton-beam calibration (the paper's §2.2, Table 2).

Runs a whole-core random SFI campaign and a simulated proton-beam
irradiation of the same machine (the beam also strikes the SRAM arrays
SFI's latch campaigns exclude, and cannot aim or observe internals), then
compares the outcome proportions — the validation that makes SFI a
trustworthy stand-in for two days of beam time.

Usage:
    python examples/beam_calibration.py [--flips N] [--events N]
"""

import argparse

from repro import BeamExperiment, CampaignConfig, FluxModel, SfiExperiment
from repro.analysis import render_table2
from repro.sfi.outcomes import Outcome


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--flips", type=int, default=500)
    parser.add_argument("--events", type=int, default=400)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    print(f"SFI campaign: {args.flips} latch-bit flips...")
    sfi = SfiExperiment(CampaignConfig(suite_size=4))
    sfi_result = sfi.run_random_campaign(args.flips, seed=args.seed)

    print(f"Beam irradiation: {args.events} single-upset events "
          f"(latches + SRAM arrays)...")
    beam = BeamExperiment(CampaignConfig(suite_size=4),
                          flux=FluxModel(sram_cross_section=1.3))
    beam_result = beam.run_events(args.events, seed=args.seed)

    print()
    print(render_table2(sfi_result, beam_result))

    sfi_vanish = sfi_result.fractions()[Outcome.VANISHED]
    beam_vanish = beam_result.fractions()[Outcome.VANISHED]
    print(f"\n|SFI - beam| vanished delta: "
          f"{abs(sfi_vanish - beam_vanish):.2%} "
          f"(paper: |95.48% - 95.89%| = 0.41%)")
    print("The close match validates SFI against the real-world "
          "experiment (paper, §2.2).")

    array_records = [r for r in beam_result.records if r.unit == "ARRAY"]
    print(f"\nBeam-only visibility: {len(array_records)} of "
          f"{beam_result.total} events struck SRAM arrays "
          f"(caches / ECC checkpoint) that latch-targeted SFI never samples.")


if __name__ == "__main__":
    main()
