#!/usr/bin/env python3
"""Hardware-checker effectiveness study (the paper's §3.3, Table 3).

SFI's controllability lets the experimenter mask checkers through MODE
configuration and re-run the same campaign: the "Raw" machine (checkers
off) versus the "Check" machine (checkers on).  Checkers convert latent
corruptions into recoveries and fail-stops — exactly the effect Table 3
reports.

Usage:
    python examples/checker_effectiveness.py [--flips N]
"""

import argparse

from repro import CampaignConfig, ClassifyOptions, SfiExperiment
from repro.analysis import render_table3
from repro.sfi.outcomes import Outcome


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--flips", type=int, default=500)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    print("Campaign 1: all low-level checkers masked (Raw)...")
    raw_experiment = SfiExperiment(CampaignConfig(
        suite_size=4, checker_mask=0,
        classify_options=ClassifyOptions(latent_as_vanished=True)))
    raw = raw_experiment.run_random_campaign(args.flips, seed=args.seed)

    print("Campaign 2: all checkers enabled (Check)...")
    check_experiment = SfiExperiment(CampaignConfig(suite_size=4))
    check = check_experiment.run_random_campaign(args.flips, seed=args.seed)

    print()
    print(render_table3(raw, check))

    raw_fracs, check_fracs = raw.fractions(), check.fractions()
    print(f"\nDetected-and-handled fraction: "
          f"raw {raw_fracs[Outcome.CORRECTED] + raw_fracs[Outcome.CHECKSTOP]:.2%} "
          f"-> check {check_fracs[Outcome.CORRECTED] + check_fracs[Outcome.CHECKSTOP]:.2%}")
    print("The checkers are therefore very effective at improving the "
          "quality of the design (paper, §3.3).")

    # The same raw campaign classified with full observability shows what
    # the masked machine actually did to architected state.
    print("\nRaw campaign, reclassified with the AVP's end-state check "
          "(latent corruption made visible):")
    honest = SfiExperiment(CampaignConfig(suite_size=4, checker_mask=0))
    honest_result = honest.run_random_campaign(args.flips, seed=args.seed)
    print(f"  {honest_result.summary()}")


if __name__ == "__main__":
    main()
