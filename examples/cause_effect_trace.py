#!/usr/bin/env python3
"""Cause-and-effect tracing (the paper's third headline capability).

"SFI makes three types of information accessible for the first time:
... Cause and effect tracing of system errors (effect) to the
originating bit flip (cause) in a full-system environment."

This example runs a campaign, then narrates the full causal chain of
every flip that had a visible effect — which latch bit flipped, which
checker caught it (at what instruction address and after how many
cycles), how recovery proceeded, and what the final destiny was —
followed by campaign-level detection-latency statistics.

Usage:
    python examples/cause_effect_trace.py [--flips N] [--show K]
"""

import argparse

from repro import CampaignConfig, SfiExperiment
from repro.analysis import render_cause_effect, render_trace_summary, summarize_traces
from repro.sfi.outcomes import Outcome


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--flips", type=int, default=400)
    parser.add_argument("--show", type=int, default=5,
                        help="number of traces to print")
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args()

    experiment = SfiExperiment(CampaignConfig(suite_size=4))
    print(f"Injecting {args.flips} random flips...\n")
    result = experiment.run_random_campaign(args.flips, seed=args.seed)

    visible = [record for record in result.records
               if record.outcome is not Outcome.VANISHED]
    print(f"{len(visible)} of {result.total} flips had a visible effect.\n")

    shown = 0
    for outcome in (Outcome.CHECKSTOP, Outcome.HANG, Outcome.SDC,
                    Outcome.CORRECTED):
        for record in visible:
            if record.outcome is outcome and shown < args.show:
                print(render_cause_effect(record))
                print()
                shown += 1

    print(render_trace_summary(summarize_traces(result)))
    print("\nEvery effect above is attributable to its originating bit — "
          "the feedback designers use to target protection (paper, §4).")


if __name__ == "__main__":
    main()
