#!/usr/bin/env python3
"""Workload characterisation: AVP vs SPECInt 2000 (the paper's Table 1).

Runs the AVP and the eleven synthetic SPECInt 2000 components through the
performance-estimation tool (dynamic instruction mix + CPI measured on the
latch-level core), applies the paper's top-90% mix truncation, and prints
Table 1's Low/High/Average comparison.

Usage:
    python examples/workload_characterization.py [--programs N]
"""

import argparse

from repro.avp import AvpGenerator
from repro.analysis import render_table1
from repro.isa import InstrClass
from repro.workload import SPEC_COMPONENTS, measure_cpi, measure_mix, top90_mix


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--programs", type=int, default=3,
                        help="programs generated per workload")
    args = parser.parse_args()

    print("Characterising the AVP...")
    avp_programs = [AvpGenerator().generate(seed).program
                    for seed in range(100, 100 + args.programs)]
    avp_mix = top90_mix(measure_mix(avp_programs))
    avp_cpi = measure_cpi(avp_programs)

    spec_mixes = {}
    spec_cpis = {}
    for component in SPEC_COMPONENTS:
        print(f"Characterising {component.name}...")
        programs = component.programs(count=args.programs)
        spec_mixes[component.name] = top90_mix(measure_mix(programs))
        spec_cpis[component.name] = measure_cpi(programs)

    print()
    print(render_table1(avp_mix, avp_cpi, spec_mixes, spec_cpis))

    print("\nPer-component detail:")
    print(f"{'component':<10}" + "".join(
        f"{cls.value[:5]:>8}" for cls in (
            InstrClass.LOAD, InstrClass.STORE, InstrClass.FIXED_POINT,
            InstrClass.FLOATING_POINT, InstrClass.COMPARISON,
            InstrClass.BRANCH)) + f"{'CPI':>7}")
    for name, mix in spec_mixes.items():
        row = f"{name:<10}"
        for cls in (InstrClass.LOAD, InstrClass.STORE,
                    InstrClass.FIXED_POINT, InstrClass.FLOATING_POINT,
                    InstrClass.COMPARISON, InstrClass.BRANCH):
            row += f"{mix.get(cls, 0.0):>8.1%}"
        print(row + f"{spec_cpis[name]:>7.2f}")

    inside = 0
    for cls in (InstrClass.LOAD, InstrClass.STORE, InstrClass.FIXED_POINT,
                InstrClass.COMPARISON, InstrClass.BRANCH):
        values = [m.get(cls, 0.0) for m in spec_mixes.values()]
        if min(values) <= avp_mix.get(cls, 0.0) <= max(values):
            inside += 1
    print(f"\nAVP falls within the SPECInt bounds for {inside}/5 integer "
          f"classes — 'the AVP certainly fits within the bounds of the "
          f"SPECInt 2000 benchmark' (paper, §2).")


if __name__ == "__main__":
    main()
