#!/usr/bin/env python3
"""Latch-type SER analysis and a hardening what-if (the paper's §3.2,
Figure 5).

Classifies outcomes per latch type (scan-only MODE/GPTR configuration
latches versus read-write REGFILE/FUNC latches), confirming the paper's
finding that scan-only latches have the larger system-level impact
because their state persists through execution.  Then quantifies the
paper's recommendation — "the results motivate the hardening of scan-only
latches in the core" — as a what-if on the measured campaign.

Usage:
    python examples/latch_hardening_study.py [--flips-per-kind N]
"""

import argparse

from repro import CampaignConfig, SfiExperiment, per_kind_campaigns
from repro.analysis import render_kind_results
from repro.rtl import LatchKind
from repro.sfi import harden_rings
from repro.sfi.outcomes import Outcome


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--flips-per-kind", type=int, default=300)
    parser.add_argument("--seed", type=int, default=6)
    args = parser.parse_args()

    experiment = SfiExperiment(CampaignConfig(suite_size=4))
    print(f"Injecting {args.flips_per_kind} flips into each latch type...\n")
    results = per_kind_campaigns(experiment, args.flips_per_kind,
                                 seed=args.seed)
    print("Figure 5: SER of different types of latches")
    print(render_kind_results(results))

    scan_only = (results[LatchKind.MODE].fractions()[Outcome.VANISHED]
                 + results[LatchKind.GPTR].fractions()[Outcome.VANISHED]) / 2
    read_write = (results[LatchKind.REGFILE].fractions()[Outcome.VANISHED]
                  + results[LatchKind.FUNC].fractions()[Outcome.VANISHED]) / 2
    print(f"\nScan-only latches vanish {scan_only:.1%} of the time; "
          f"read-write latches {read_write:.1%} — flips in read-write "
          f"latches may be over-written, scan-only state persists (§3.2).")

    # What-if: harden the scan-only rings.
    print("\nWhat-if: harden every MODE and GPTR latch...")
    whole_core = experiment.run_random_campaign(600, seed=args.seed + 1)
    ring_bits = {ring: len(experiment.latch_map.indices_for_ring(ring))
                 for ring in experiment.latch_map.rings()}
    report = harden_rings(whole_core, {"MODE", "GPTR"}, ring_bits)
    print(f"  hardened {report.hardened_bits:,} of "
          f"{report.population_bits:,} latch bits "
          f"({report.hardened_bits / report.population_bits:.1%})")
    print(f"  unmasked-fault rate: "
          f"{1 - report.baseline[Outcome.VANISHED]:.2%} -> "
          f"{1 - report.hardened[Outcome.VANISHED]:.2%}")
    print(f"  checkstop rate: {report.baseline[Outcome.CHECKSTOP]:.2%} -> "
          f"{report.hardened[Outcome.CHECKSTOP]:.2%}")
    print(f"  bad-outcome reduction: {report.bad_outcome_reduction():.0%} "
          f"from hardening ~{report.hardened_bits / report.population_bits:.0%} "
          f"of the latches — a cheap, targeted win.")

    # Drill down to individual latches: a dense macro campaign on the
    # recovery unit's commit datapath ranks its hottest latches.
    from repro.analysis import latch_vulnerabilities, render_vulnerabilities
    from repro.sfi import macro_campaign
    print("\nMacro what-if: per-latch vulnerability of the RUT commit "
          "datapath (rut.cmt*)...")
    macro = macro_campaign(experiment, "rut.cmt", trials_per_site=2,
                           seed=args.seed + 2)
    print(render_vulnerabilities(latch_vulnerabilities(macro), top=8))


if __name__ == "__main__":
    main()
