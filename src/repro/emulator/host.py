"""The controlling communication host.

Fault injection and FIR monitoring go through a communication layer
between the engine and the controlling workstation "at pre-specified
intervals in the cycle simulation"; minimising this interaction is what
makes SFI's throughput practical.  ``CommHost`` batches engine work into
poll windows and exposes the run-until-quiesce primitive campaigns use.
"""

from __future__ import annotations

from repro.emulator.awan import AwanEmulator


class CommHost:
    """Host-side driver for an :class:`AwanEmulator`."""

    def __init__(self, emulator: AwanEmulator, poll_interval: int = 100) -> None:
        if poll_interval < 1:
            raise ValueError("poll_interval must be >= 1")
        self.emulator = emulator
        self.poll_interval = poll_interval

    def run_until_quiesce(self, max_cycles: int) -> dict:
        """Clock the model, polling status every ``poll_interval`` cycles.

        Returns the final status dict.  The poll interval trades host
        communication overhead against how promptly a terminal state is
        noticed — exactly the overhead knob the paper describes.
        """
        emulator = self.emulator
        remaining = max_cycles
        while remaining > 0:
            chunk = min(self.poll_interval, remaining)
            run = emulator.clock(chunk)
            remaining -= chunk
            status = emulator.read_status()
            if status["quiesced"] or run < chunk:
                return status
        return emulator.read_status()

    def run_cycles(self, cycles: int) -> None:
        """Advance the model without intermediate polling (one batch)."""
        self.emulator.clock(cycles)
