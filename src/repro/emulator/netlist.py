"""Flat latch map ("netlist") over a compiled core model.

When a design is loaded onto the Awan accelerator its latches become
addressable storage in the Boolean-function processors.  This module gives
every latch *bit* in the model a flat index, plus the filtered views the
SFI methodology samples from: per micro-architectural unit (Figure 3),
per scan ring / latch type (Figure 5), or the whole core (Table 2).
"""

from __future__ import annotations

from collections import defaultdict

from repro.rtl.fault import FaultSite
from repro.rtl.latch import Latch, LatchKind


class LatchMap:
    """Flat, indexable view of every injectable latch bit in a core."""

    def __init__(self, core) -> None:
        self._core = core
        self._sites: list[FaultSite] = []
        self._by_unit: dict[str, list[int]] = defaultdict(list)
        self._by_ring: dict[str, list[int]] = defaultdict(list)
        self._by_kind: dict[LatchKind, list[int]] = defaultdict(list)
        self._by_name: dict[str, int] = {}
        for latch in core.all_latches():
            unit = core.unit_of(latch)
            bits = latch.width + (1 if latch.protected else 0)
            for bit in range(bits):
                index = len(self._sites)
                site = FaultSite(latch, bit)
                self._sites.append(site)
                self._by_unit[unit].append(index)
                self._by_ring[latch.ring].append(index)
                self._by_kind[latch.kind].append(index)
                self._by_name[site.name] = index

    def __len__(self) -> int:
        return len(self._sites)

    def site(self, index: int) -> FaultSite:
        return self._sites[index]

    def index_of(self, name: str) -> int:
        """Flat index of a site by its ``unit.latch.bit`` name."""
        return self._by_name[name]

    def unit_of(self, index: int) -> str:
        return self._core.unit_of(self._sites[index].latch)

    def kind_of(self, index: int) -> LatchKind:
        return self._sites[index].latch.kind

    def all_indices(self) -> range:
        return range(len(self._sites))

    def indices_for_unit(self, unit: str) -> list[int]:
        if unit not in self._by_unit:
            raise KeyError(f"unknown unit {unit!r}; have {sorted(self._by_unit)}")
        return list(self._by_unit[unit])

    def indices_for_ring(self, ring: str) -> list[int]:
        if ring not in self._by_ring:
            raise KeyError(f"unknown ring {ring!r}; have {sorted(self._by_ring)}")
        return list(self._by_ring[ring])

    def indices_for_kind(self, kind: LatchKind) -> list[int]:
        return list(self._by_kind[kind])

    def units(self) -> list[str]:
        return sorted(self._by_unit)

    def rings(self) -> list[str]:
        return sorted(self._by_ring)

    def unit_bit_counts(self) -> dict[str, int]:
        """Latch bits per unit — the weights Figure 4 normalises by."""
        return {unit: len(indices) for unit, indices in self._by_unit.items()}

    def latch_of(self, index: int) -> Latch:
        return self._sites[index].latch
