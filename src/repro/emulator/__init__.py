"""Hardware-emulation substrate: the modelled Awan acceleration engine,
the flat latch map (netlist), the controlling communication host and a
software event-simulation baseline backend."""

from repro.emulator.awan import (
    AWAN_CYCLES_PER_SECOND,
    HOST_INTERACTION_SECONDS,
    AwanEmulator,
    EngineStats,
)
from repro.emulator.host import CommHost
from repro.emulator.netlist import LatchMap
from repro.emulator.software_sim import SoftwareSimulator
from repro.emulator.structural import (
    LatchGraph,
    extract_graph,
    latch_name_of_site,
    load_graph,
    probe_cone,
)

__all__ = [
    "AWAN_CYCLES_PER_SECOND",
    "AwanEmulator",
    "CommHost",
    "EngineStats",
    "HOST_INTERACTION_SECONDS",
    "LatchGraph",
    "LatchMap",
    "SoftwareSimulator",
    "extract_graph",
    "latch_name_of_site",
    "load_graph",
    "probe_cone",
]
