"""Bit-plane parallel trial evaluation (the wave backend).

One machine word carries up to 64 independent universes: bit *k* of a
plane word is trial *k*'s value of one latch/array bit, with lane 0
reserved for the golden (fault-free) run.  The backend works in the
*divergence domain* — every plane is stored XORed against the golden
lane, so the golden plane is identically zero and "has any trial
diverged?" is a single word-compare against zero.

The fault-free reference run is recorded once per testcase by
:func:`record_schedule` (a :class:`~repro.cpu.touchtrace.TouchTrace`
subclass, so the existing ``untraced()`` windows and the masked-exit
``last_touch`` licence keep working).  :func:`compile_netlist` flattens
that recorded ``Core.cycle`` activity into a :class:`CompiledSchedule`
— per-latch read/write streams in sequence-exact order — cached by
model digest.  A wave of up to :data:`MAX_WAVE_TRIALS` injections is
then resolved by *generated straight-line plane code*: every injection
lowers to an OR/XOR into the site's divergence plane, every golden read
run to an AND/OR/ANDN triple (consume → peel), every golden write run
to an AND/ANDN pair (overwrite → converge), and what survives the
whole schedule still diverges at quiesce.  The key collapse: between
two injection boundaries only the *first* schedule event can change the
diverged∧active word (afterwards it is zero until the next lane joins),
so a kernel is a handful of word ops per site, however long the run.

Why a trial lane may stay in-plane at all: a TOGGLE trial is
bit-identical to the golden run until the golden schedule first *reads*
the diverged bit.  If a *write* of that bit comes first, the trial (by
that same identical-prefix induction) writes the same value and the
divergence is gone — the lane's future *is* the golden future.  A read
first means the trial's control flow may now fork, which plane algebra
cannot follow — that lane peels to the scalar path.  The differential
suite (``tests/test_bitplane_differential.py``) holds the whole scheme
to byte-identical journals against the seed path.

Generated sources are linted before ``exec`` (rule REPRO-D05: no
unseeded randomness, wall clocks, or other determinism breaks in
generated plane code) and carry a provenance header naming the model
digest they were compiled from.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from contextlib import contextmanager

from repro.cpu import touchtrace
from repro.cpu.touchtrace import TouchTrace
from repro.rtl.latch import Latch

_VALUE = Latch.value  # slot descriptors behind the traced properties
_PAR = Latch.par

#: Plane geometry: one Python int word per latch bit, lane 0 = golden.
PLANE_LANES = 64
GOLDEN_LANE = 0
MAX_WAVE_TRIALS = PLANE_LANES - 1

#: Strides of the bit-plane side's own golden instrumentation (denser
#: than the scalar fast path's, because a peeled lane re-enters close
#: to its first-read cycle and exits at the first licensed boundary).
BITPLANE_DIGEST_STRIDE = 8
BITPLANE_RUNG_STRIDE = 4


class BitplaneCompileError(RuntimeError):
    """Generated plane code failed its pre-exec lint or compile."""


# ----------------------------------------------------------------------
# Plane algebra primitives (the lowering targets).  All operate on plain
# ints; ``lanes`` bounds the word so NOT/MUX cannot leak sign bits.

def plane_mask(lanes: int) -> int:
    """All-lanes-set word for a ``lanes``-wide wave."""
    return (1 << lanes) - 1


def plane_not(plane: int, lanes: int) -> int:
    """Lane-wise NOT, bounded to the wave width."""
    return ~plane & plane_mask(lanes)


def plane_and(a: int, b: int) -> int:
    """Lane-wise AND."""
    return a & b


def plane_or(a: int, b: int) -> int:
    """Lane-wise OR."""
    return a | b


def plane_xor(a: int, b: int) -> int:
    """Lane-wise XOR (an injection in the divergence domain)."""
    return a ^ b


def plane_mux(sel: int, a: int, b: int, lanes: int) -> int:
    """Lane-wise MUX: lane k takes ``a`` where ``sel`` is 1, else ``b``."""
    return (sel & a) | (plane_not(sel, lanes) & b)


def broadcast(level: int, lanes: int) -> int:
    """Replicate one scalar bit across every lane of a plane."""
    return plane_mask(lanes) if level & 1 else 0


def lane_word(lane: int) -> int:
    """The single-lane mask for lane ``lane``."""
    return 1 << lane


def pack_lanes(levels) -> int:
    """Pack per-lane scalar bits (lane 0 first) into one plane word."""
    plane = 0
    for lane, level in enumerate(levels):
        if level & 1:
            plane |= 1 << lane
    return plane


def unpack_lanes(plane: int, lanes: int) -> tuple:
    """Unpack a plane word into per-lane scalar bits (lane 0 first)."""
    return tuple((plane >> lane) & 1 for lane in range(lanes))


def divergence_plane(plane: int, golden_level: int, lanes: int) -> int:
    """Re-base an absolute plane against its golden lane's level."""
    return plane_xor(plane, broadcast(golden_level, lanes))


def diverged(divergence: int) -> bool:
    """The divergence detect: one word-compare against the golden plane
    (identically zero in the divergence domain)."""
    return divergence != 0


# ----------------------------------------------------------------------
# Schedule recording.

class ScheduleTrace(TouchTrace):
    """Sequence-exact access schedule of one golden run.

    Extends the plain last-touch trace with, per latch and domain
    (value / parity / single bit), the ordered stream of *first accesses
    per cycle*: read streams keep one monotonically increasing sequence
    number per (latch, cycle), write streams additionally keep the value
    the latch holds after that cycle's last write.  Sequence numbers are
    global, so read-vs-write order *within* a cycle is exact — no tie
    conservatism at the injection boundary.

    ``marks[c]`` is the first sequence number stamped at cycle ``c`` or
    later, which makes "everything after the injection at the end of
    cycle c" a single ``bisect``.
    """

    __slots__ = ("seq", "marks", "initial",
                 "vr", "vw_seq", "vw_cyc", "vw_val",
                 "pr", "pw_seq", "pw_cyc", "pw_val",
                 "br", "bw_seq", "bw_cyc", "bw_val",
                 "_vr_last", "_pr_last", "_br_last")

    def __init__(self, core) -> None:
        super().__init__(core)
        self.seq = 0
        self.marks: list[int] = [0]
        self.initial = tuple((latch.value, latch.par)
                             for latch in core.all_latches())
        self.vr: dict[int, list[int]] = {}
        self.vw_seq: dict[int, list[int]] = {}
        self.vw_cyc: dict[int, list[int]] = {}
        self.vw_val: dict[int, list[int]] = {}
        self.pr: dict[int, list[int]] = {}
        self.pw_seq: dict[int, list[int]] = {}
        self.pw_cyc: dict[int, list[int]] = {}
        self.pw_val: dict[int, list[int]] = {}
        self.br: dict[tuple[int, int], list[int]] = {}
        self.bw_seq: dict[tuple[int, int], list[int]] = {}
        self.bw_cyc: dict[tuple[int, int], list[int]] = {}
        self.bw_val: dict[tuple[int, int], list[int]] = {}
        self._vr_last: dict[int, int] = {}
        self._pr_last: dict[int, int] = {}
        self._br_last: dict[tuple[int, int], int] = {}

    # Stamping helpers: every *recorded* access takes one sequence
    # number; repeats within a cycle collapse onto the first (reads) or
    # update the cycle's final value in place (writes).

    def _mark(self, cycle: int) -> None:
        marks = self.marks
        while len(marks) <= cycle:
            marks.append(self.seq)

    def _read(self, streams, last, latch, bit=None) -> None:
        if bit is None:
            key = id(latch)
        else:
            key = (id(latch), bit)
        cycle = self.core.cycles
        if last.get(key) == cycle:
            return
        last[key] = cycle
        self._mark(cycle)
        stream = streams.get(key)
        if stream is None:
            streams[key] = [self.seq]
        else:
            stream.append(self.seq)
        self.seq += 1

    def _write(self, seqs, cycs, vals, latch, value, bit=None) -> None:
        if bit is None:
            key = id(latch)
        else:
            key = (id(latch), bit)
        cycle = self.core.cycles
        cyc = cycs.get(key)
        if cyc is not None and cyc and cyc[-1] == cycle:
            vals[key][-1] = value
            return
        self._mark(cycle)
        if cyc is None:
            seqs[key] = [self.seq]
            cycs[key] = [cycle]
            vals[key] = [value]
        else:
            seqs[key].append(self.seq)
            cyc.append(cycle)
            vals[key].append(value)
        self.seq += 1


class _ScheduleLatch(Latch):
    """Layout-compatible latch stamping the schedule trace.

    Whole-word accesses stream into the value/parity tables; the
    bit-granular accessors (``bit``/``write_bit``) stream into per-bit
    tables for unprotected latches, so scoreboard-style consumers do
    not make every lane of a wide mask latch peel.  ``last_touch`` is
    co-populated with identical semantics to the plain touch trace.
    """

    __slots__ = ()

    @property
    def value(self) -> int:
        trace = touchtrace._ACTIVE
        if trace is not None:
            trace.last_touch[id(self)] = trace.core.cycles
            trace._read(trace.vr, trace._vr_last, self)
        return _VALUE.__get__(self)

    @value.setter
    def value(self, new: int) -> None:
        trace = touchtrace._ACTIVE
        if trace is not None:
            trace.last_touch[id(self)] = trace.core.cycles
            trace._write(trace.vw_seq, trace.vw_cyc, trace.vw_val,
                         self, new)
        _VALUE.__set__(self, new)

    @property
    def par(self) -> int:
        trace = touchtrace._ACTIVE
        if trace is not None:
            trace.last_touch[id(self)] = trace.core.cycles
            trace._read(trace.pr, trace._pr_last, self)
        return _PAR.__get__(self)

    @par.setter
    def par(self, new: int) -> None:
        trace = touchtrace._ACTIVE
        if trace is not None:
            trace.last_touch[id(self)] = trace.core.cycles
            trace._write(trace.pw_seq, trace.pw_cyc, trace.pw_val,
                         self, new)
        _PAR.__set__(self, new)

    def bit(self, bit: int) -> int:
        trace = touchtrace._ACTIVE
        if trace is not None:
            trace.last_touch[id(self)] = trace.core.cycles
            trace._read(trace.br, trace._br_last, self, bit)
        return (_VALUE.__get__(self) >> bit) & 1

    def write_bit(self, bit: int, level: int) -> None:
        if self.protected:
            # A protected write re-derives the whole parity shadow from
            # the whole value: that is a whole-latch access, take the
            # conservative base path (which stamps value and parity).
            Latch.write_bit(self, bit, level)
            return
        trace = touchtrace._ACTIVE
        if trace is not None:
            trace.last_touch[id(self)] = trace.core.cycles
            trace._write(trace.bw_seq, trace.bw_cyc, trace.bw_val,
                         self, level & 1, bit)
        value = _VALUE.__get__(self)
        if level:
            value |= 1 << bit
        else:
            value &= ~(1 << bit) & self.mask
        _VALUE.__set__(self, value)


@contextmanager
def record_schedule(core):
    """Record the sequence-exact access schedule of a golden run.

    Drop-in for :func:`repro.cpu.touchtrace.trace_touches` on the
    bit-plane path: yields a :class:`ScheduleTrace` (which *is* a
    ``TouchTrace``, so ``GoldenTrace.last_touch`` and the existing
    ``untraced()`` snapshot/digest windows work unchanged).
    """
    latches = core.all_latches()
    trace = ScheduleTrace(core)
    for latch in latches:
        latch.__class__ = _ScheduleLatch
    touchtrace._ACTIVE = trace
    try:
        yield trace
    finally:
        touchtrace._ACTIVE = None
        for latch in latches:
            latch.__class__ = Latch


# ----------------------------------------------------------------------
# The compiled schedule + wave kernels.

_KERNEL_HEADER = (
    "# generated by repro.emulator.bitplane.compile_netlist\n"
    "# model {model}  schedule-end {end}\n"
    "# straight-line divergence-plane program; lane 0 = golden (plane\n"
    "# word bit 0 stays 0).  lowering: I -> OR/XOR into the site plane,\n"
    "# R -> AND,OR,ANDN (consume peels), W -> AND,ANDN (overwrite\n"
    "# converges); survivors are the lanes still diverged at the end.\n"
)

_SCHEDULE_CACHE: dict = {}


def compile_netlist(core, trace: ScheduleTrace, cache_key=None):
    """Flatten one recorded golden run into a :class:`CompiledSchedule`.

    ``cache_key`` (conventionally the model digest plus everything that
    determines the golden trajectory: testcase seed, checker mask, mode
    overrides, core params) memoises the result in-process, so repeated
    experiments over the same model/testcase skip re-deriving tables.
    """
    if cache_key is not None:
        cached = _SCHEDULE_CACHE.get(cache_key)
        if cached is not None:
            return cached
    compiled = CompiledSchedule(core, trace, cache_key)
    if cache_key is not None:
        _SCHEDULE_CACHE[cache_key] = compiled
    return compiled


class CompiledSchedule:
    """Read-only flattening of one golden run's access schedule.

    Holds, per latch (keyed by position in ``core.all_latches()``
    order), the sequence-exact read/write streams of every domain, the
    cycle->sequence boundary marks, the initial state, and the
    *never-read mask set* — latches the golden run never reads in any
    domain, whose divergence therefore cannot influence a
    golden-mirroring trial (the licence for the set-masked early exit).

    Instances are immutable by convention (all streams tupled at build
    time) and shared across experiments via the compile cache, so the
    snapshot-aliasing suite pins that nothing here aliases live core
    state.
    """

    def __init__(self, core, trace: ScheduleTrace, cache_key=None) -> None:
        from repro.emulator.structural import model_digest
        self.model_digest = model_digest(core)
        self.cache_key = cache_key
        self.end_cycle = core.cycles
        self.total_seq = trace.seq
        self.marks = tuple(trace.marks)
        self.initial = trace.initial
        latches = core.all_latches()
        self._index = {id(latch): i for i, latch in enumerate(latches)}
        ids = [id(latch) for latch in latches]

        def _by_index(table):
            return {self._index[key]: tuple(stream)
                    for key, stream in table.items()}

        def _bits_by_index(table):
            return {(self._index[key[0]], key[1]): tuple(stream)
                    for key, stream in table.items()}

        self.vr = _by_index(trace.vr)
        self.vw_seq = _by_index(trace.vw_seq)
        self.vw_cyc = _by_index(trace.vw_cyc)
        self.vw_val = _by_index(trace.vw_val)
        self.pr = _by_index(trace.pr)
        self.pw_seq = _by_index(trace.pw_seq)
        self.pw_cyc = _by_index(trace.pw_cyc)
        self.pw_val = _by_index(trace.pw_val)
        self.br = _bits_by_index(trace.br)
        self.bw_seq = _bits_by_index(trace.bw_seq)
        self.bw_cyc = _bits_by_index(trace.bw_cyc)
        self.bw_val = _bits_by_index(trace.bw_val)
        bit_read_ids = {key[0] for key in self.br}
        self.mask_indices = frozenset(
            index for index, latch_id in enumerate(ids)
            if index not in self.vr and index not in self.pr
            and index not in bit_read_ids)
        self._kernels: dict = {}
        self.kernel_sources: list[str] = []

    # -- schedule queries ----------------------------------------------

    def boundary(self, cycle: int) -> int:
        """First sequence number after the injection point at the end
        of ``cycle`` (injection happens after all of that cycle's
        activity)."""
        if cycle + 1 < len(self.marks):
            return self.marks[cycle + 1]
        return self.total_seq

    def seq_cycle(self, seq: int) -> int:
        """The cycle a sequence number was stamped in."""
        return bisect_right(self.marks, seq) - 1

    def _streams(self, index: int, bit: int, is_parity: bool):
        """(read streams, write-seq streams) relevant to one site."""
        if is_parity:
            reads = [self.pr.get(index, ())]
            writes = [self.pw_seq.get(index, ())]
        else:
            reads = [self.vr.get(index, ()),
                     self.br.get((index, bit), ())]
            writes = [self.vw_seq.get(index, ()),
                      self.bw_seq.get((index, bit), ())]
        return reads, writes

    def first_event(self, index: int, bit: int, is_parity: bool,
                    boundary: int):
        """First golden access of a site at/after a boundary:
        ``(seq, kind)`` with kind ``"R"``/``"W"``, or ``None``."""
        reads, writes = self._streams(index, bit, is_parity)
        best = None
        for stream in reads:
            pos = bisect_left(stream, boundary)
            if pos < len(stream) and (best is None or stream[pos] < best[0]):
                best = (stream[pos], "R")
        for stream in writes:
            pos = bisect_left(stream, boundary)
            if pos < len(stream) and (best is None or stream[pos] < best[0]):
                best = (stream[pos], "W")
        return best

    def level_at(self, index: int, bit: int, is_parity: bool,
                 boundary: int) -> int:
        """The site's golden bit level just before an injection
        boundary (the level the flip toggles away from)."""
        if is_parity:
            seqs = self.pw_seq.get(index, ())
            pos = bisect_left(seqs, boundary) - 1
            if pos >= 0:
                return self.pw_val[index][pos] & 1
            return self.initial[index][1] & 1
        best_seq = -1
        level = (self.initial[index][0] >> bit) & 1
        seqs = self.vw_seq.get(index, ())
        pos = bisect_left(seqs, boundary) - 1
        if pos >= 0:
            best_seq = seqs[pos]
            level = (self.vw_val[index][pos] >> bit) & 1
        seqs = self.bw_seq.get((index, bit), ())
        pos = bisect_left(seqs, boundary) - 1
        if pos >= 0 and seqs[pos] > best_seq:
            level = self.bw_val[(index, bit)][pos] & 1
        return level

    def whole_write_after(self, index: int, cycle: int,
                          is_parity: bool = False) -> bool:
        """Does the golden run whole-write this latch domain after
        ``cycle``?  (Masked-exit reconstruction: if yes, the trial's
        final value is the golden final value.)"""
        cycles = (self.pw_cyc if is_parity else self.vw_cyc).get(index, ())
        return bool(cycles) and cycles[-1] > cycle

    def bits_written_after(self, index: int, cycle: int) -> int:
        """Mask of bits the golden run bit-writes after ``cycle``."""
        mask = 0
        for (idx, bit), cycles in self.bw_cyc.items():
            if idx == index and cycles and cycles[-1] > cycle:
                mask |= 1 << bit
        return mask

    # -- wave resolution (generated plane kernels) ---------------------

    def resolve_wave(self, lanes):
        """Classify a wave of injections with generated plane code.

        ``lanes`` is a sequence of ``(latch_index, bit, is_parity,
        inject_cycle)`` tuples, at most :data:`MAX_WAVE_TRIALS` long;
        entry *i* rides plane-word bit ``i + 1`` (bit 0 is the golden
        lane).  Returns a list of per-lane fates: ``("peel", cycle)``
        with the golden first-read cycle to re-enter the scalar path
        at, ``("converge", None)`` or ``("survive", None)``.
        """
        if len(lanes) > MAX_WAVE_TRIALS:
            raise ValueError(
                f"wave of {len(lanes)} lanes exceeds {MAX_WAVE_TRIALS}")
        descriptors = tuple(
            (index, bit, bool(is_parity), self.boundary(cycle))
            for index, bit, is_parity, cycle in lanes)
        kernel = self._kernels.get(descriptors)
        if kernel is None:
            kernel = self._build_kernel(descriptors)
            self._kernels[descriptors] = kernel
        peel, conv, live = kernel()
        fates = []
        for pos, (index, bit, is_parity, boundary) in enumerate(descriptors):
            lane_bit = 1 << (pos + 1)
            if peel & lane_bit:
                event = self.first_event(index, bit, is_parity, boundary)
                fates.append(("peel", self.seq_cycle(event[0])))
            elif conv & lane_bit:
                fates.append(("converge", None))
            else:
                fates.append(("survive", None))
        return fates

    def _build_kernel(self, descriptors):
        """Generate, lint and exec one wave's straight-line kernel."""
        by_site: dict = {}
        for pos, (index, bit, is_parity, boundary) in enumerate(descriptors):
            by_site.setdefault((index, bit, is_parity), []).append(
                (boundary, pos + 1))
        lines = [_KERNEL_HEADER.format(model=self.model_digest,
                                       end=self.end_cycle),
                 "def wave_kernel():",
                 "    peel = 0",
                 "    conv = 0",
                 "    live = 0"]
        for (index, bit, is_parity), members in sorted(by_site.items()):
            site_mask = 0
            ops = []
            for boundary, lane in members:
                site_mask |= 1 << lane
                ops.append((boundary, 0, "I", 1 << lane))
                event = self.first_event(index, bit, is_parity, boundary)
                if event is not None:
                    ops.append((event[0], 1, event[1], 0))
            domain = "par" if is_parity else f"bit {bit}"
            lines.append(f"    # site latch[{index}] {domain}")
            lines.append("    p = 0")
            lines.append(f"    a = 0x{site_mask:x}")
            seen_events = set()
            for seq, _tie, kind, mask in sorted(ops):
                if kind == "I":
                    lines.append(f"    p ^= 0x{mask:x}  # I @seq {seq}")
                elif seq not in seen_events:
                    seen_events.add(seq)
                    if kind == "R":
                        lines.append(f"    h = p & a  # R @seq {seq}")
                        lines.append("    peel |= h")
                        lines.append("    a &= ~h")
                        lines.append("    p &= ~h")
                    else:
                        lines.append(f"    w = p & a  # W @seq {seq}")
                        lines.append("    conv |= w")
                        lines.append("    p &= ~w")
            lines.append("    live |= p & a")
        lines.append("    return peel, conv, live")
        source = "\n".join(lines) + "\n"
        lint_generated_plane_code(source)
        namespace: dict = {}
        try:
            exec(compile(source, "<bitplane-kernel>", "exec"),  # noqa: S102
                 namespace)
        except SyntaxError as err:  # pragma: no cover - generator bug
            raise BitplaneCompileError(
                f"generated kernel does not compile: {err}") from err
        self.kernel_sources.append(source)
        return namespace["wave_kernel"]


def lint_generated_plane_code(source: str) -> None:
    """REPRO-D05 gate: generated plane code must satisfy the
    determinism rules (no unseeded randomness, no wall clocks, no id()
    escapes) before it is executed.  Raises
    :class:`BitplaneCompileError` on any finding."""
    from repro.lint.rules_ast import lint_generated
    findings = lint_generated(source, origin="emulator/bitplane-gen")
    if findings:
        details = "; ".join(
            f"{finding.rule}:{finding.line}:{finding.message}"
            for finding in findings)
        raise BitplaneCompileError(
            f"generated plane code failed determinism lint: {details}")
