"""Structural latch-graph extraction from the compiled model.

The SFI campaigns *measure* derating; this module lets the repo *prove*
part of it.  A :class:`_StructuralTracker` (a
:class:`repro.cpu.tainttrace.TaintTracker` subclass) treats **every**
storage node as a permanent taint source simultaneously and replays the
fault-free golden run of each AVP testcase once.  Because taint tracking
is purely observational — callbacks never change machine state — a
single traced run captures the union of all read→write dataflow pairs
the model exercises: the cycle-accurate latch→latch dependency graph,
at the cost of one golden run per testcase instead of one probe run per
latch (a ~1000x reduction for the full core).

Two artefacts come out of a traced run:

* **edges** — every (source, destination) storage pair where a value
  read of the source sat in the consume-on-write pending window of a
  write to the destination.  The union over the suite is the structural
  graph; per-latch cones of influence are its BFS closures.
* **read sets** — per testcase, the latches whose *value* (and,
  separately, whose *parity shadow*) the machine consulted at any point
  of the fault-free run.  A latch never read during testcase T's golden
  run provably cannot influence T's outcome: by induction over cycles,
  the faulty and fault-free runs stay bit-identical everywhere except
  the flipped latch until some cycle reads it — and no cycle does.
  This is the sound core of the static masking bound
  (:mod:`repro.analysis.static_bounds`).

Extraction runs the golden program to quiescence polling every cycle
(a strict superset of the campaign supervisor's poll-interval reads)
and then keeps tracing for ``settle_cycles`` extra cycles so post-halt
readers (watchdog, scrub, hang detection) land in the read sets too.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.avp.generator import AvpGenerator
from repro.avp.suite import make_suite
from repro.cpu.core import Power6Core
from repro.cpu.tainttrace import _MEMORY_WIDTH, TaintTracker
from repro.obs.provenance import TaintNodeKind

__all__ = [
    "LatchGraph",
    "MEMORY_NODE",
    "SIDECAR_FORMAT",
    "SIDECAR_VERSION",
    "extract_graph",
    "latch_name_of_site",
    "load_graph",
    "probe_cone",
]

#: Sidecar envelope identity: bump ``SIDECAR_VERSION`` whenever the
#: payload layout changes so the warehouse can refuse mixed eras.
SIDECAR_FORMAT = "repro-structural-graph"
SIDECAR_VERSION = 1

#: Canonical node name for the sparse backing memory (all words).
MEMORY_NODE = "MEM"

#: Post-quiescence cycles traced so the read sets cover the drain
#: window the campaign supervisor runs after an injection quiesces
#: (watchdog ticks, scrub sweeps, hang detection all keep reading).
DEFAULT_SETTLE_CYCLES = 2000

_PAR_SUFFIX = "p"


def latch_name_of_site(site_name: str) -> tuple[str, bool]:
    """Split a flat site name into (latch name, is_parity_bit).

    Site names are ``<latch>.<bit>`` with ``p`` as the parity suffix
    (:class:`repro.rtl.fault.FaultSite`), e.g. ``fxu.gpr[3].17`` →
    (``fxu.gpr[3]``, False) and ``lsu.stq_data[0].p`` → (…, True).
    """
    latch_name, _, suffix = site_name.rpartition(".")
    if not latch_name:
        raise ValueError(f"malformed site name {site_name!r}")
    return latch_name, suffix == _PAR_SUFFIX


class _StructuralTracker(TaintTracker):
    """All-sources observational tracer for one golden run.

    Every storage node is treated as already tainted: each value read
    joins the pending window *and* is recorded in the per-run read set,
    and every write with a non-empty window records edges.  Nothing is
    ever cleansed — the graph wants the union of dataflow, not the fate
    of one injection.
    """

    def __init__(self, core) -> None:
        # The seed latch is irrelevant (everything is a source) but the
        # base class wants one; edge capacity is effectively unbounded
        # because the structural graph must not silently truncate.
        super().__init__([core], core.pervasive.hang,
                         max_edges=2_000_000, max_footprint=1,
                         max_masking=0)
        self.read_keys: set = set()
        self.par_read_keys: set = set()

    # -- every read is a (recorded) tainted read -----------------------

    def _on_latch_read(self, latch) -> None:
        key = id(latch)  # repro-lint: allow[REPRO-D03]
        self.read_keys.add(key)
        self._pending.add(key)

    def _on_par_read(self, latch) -> None:
        key = id(latch)  # repro-lint: allow[REPRO-D03]
        self.par_read_keys.add(key)
        self._on_latch_read(latch)

    def _on_array_read(self, aid, index, result, is_ecc: bool) -> None:
        key = ("a", aid, index)
        self.read_keys.add(key)
        self._pending.add(key)

    def _on_memory_read(self, memory, addr: int) -> None:
        key = ("m", id(memory), addr >> 2)  # repro-lint: allow[REPRO-D03]
        self.read_keys.add(key)
        self._pending.add(key)

    # -- every write with a window propagates; nothing cleanses --------

    def _on_latch_write(self, latch) -> None:
        if self._pending:
            self._infect(id(latch),  # repro-lint: allow[REPRO-D03]
                         latch.width)

    def _on_word_write(self, key) -> None:
        if self._pending:
            self._infect(key, _MEMORY_WIDTH)

    def _clear_taint(self, key, cause: str) -> None:
        # Structural mode: sources are permanent, masking is not the
        # question being asked.
        pass

    # -- canonical-name resolution -------------------------------------

    def canonical_name(self, node: dict) -> str:
        """Stable storage-level name for one tracker node.

        Array words collapse onto their array (``lsu.dcache.data[12]``
        → ``lsu.dcache.data``) and memory words onto :data:`MEMORY_NODE`
        so the graph stays data-independent across testcases.
        """
        if node["kind"] == TaintNodeKind.LATCH.value:
            return node["name"]
        if node["kind"] == TaintNodeKind.ARRAY.value:
            return node["name"].rsplit("[", 1)[0]
        return MEMORY_NODE

    def canonical_key_name(self, key) -> str:
        if isinstance(key, int):
            return self._latch_name[key]
        tag, oid, _index = key
        if tag == "a":
            return self._array_name[oid]
        return MEMORY_NODE

    def harvest(self) -> tuple[dict, set[str], set[str]]:
        """(edges by canonical name pair, value-read names, par-read names)."""
        edges: dict[tuple[str, str], list[int]] = {}
        for (src, dst), (cycle, count) in self.edges.items():
            src_name = self.canonical_name(self.nodes[src])
            dst_name = self.canonical_name(self.nodes[dst])
            if src_name == dst_name:
                continue
            record = edges.get((src_name, dst_name))
            if record is None:
                edges[(src_name, dst_name)] = [cycle, count]
            else:
                record[0] = min(record[0], cycle)
                record[1] += count
        reads = {self.canonical_key_name(key) for key in self.read_keys}
        par_reads = {self.canonical_key_name(key)
                     for key in self.par_read_keys}
        return edges, reads, par_reads


@dataclass
class LatchGraph:
    """The extracted structural graph plus per-testcase read evidence.

    ``nodes`` maps every storage node's canonical name to its
    description; ``edges`` maps (src, dst) name pairs to
    ``[first_cycle, count]``; ``reads``/``par_reads`` map each traced
    testcase seed to the set of node names whose value / parity shadow
    was consulted during that testcase's fault-free run.
    """

    nodes: dict[str, dict]
    edges: dict[tuple[str, str], list[int]]
    reads: dict[int, set[str]] = field(default_factory=dict)
    par_reads: dict[int, set[str]] = field(default_factory=dict)
    model_digest: str = ""
    suite_seed: int = 0
    suite_size: int = 0
    settle_cycles: int = DEFAULT_SETTLE_CYCLES

    # -- graph queries -------------------------------------------------

    def out_adjacency(self) -> dict[str, list[str]]:
        adjacency: dict[str, list[str]] = {}
        for src, dst in self.edges:
            adjacency.setdefault(src, []).append(dst)
        for targets in adjacency.values():
            targets.sort()
        return adjacency

    def cone(self, name: str,
             adjacency: dict[str, list[str]] | None = None) -> set[str]:
        """Cone of influence: every node reachable from ``name``."""
        if adjacency is None:
            adjacency = self.out_adjacency()
        seen: set[str] = set()
        frontier = list(adjacency.get(name, ()))
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(adjacency.get(node, ()))
        return seen

    def sink_names(self) -> set[str]:
        """Architected state, the detection network, arrays and memory."""
        return {name for name, node in self.nodes.items()
                if node["arch"] or node["detect"]
                or node["kind"] in (TaintNodeKind.ARRAY.value,
                                    TaintNodeKind.MEMORY.value)}

    def latch_names(self) -> list[str]:
        return [name for name, node in self.nodes.items()
                if node["kind"] == TaintNodeKind.LATCH.value]

    def read_union(self) -> set[str]:
        union: set[str] = set()
        for names in self.reads.values():
            union |= names
        return union

    def par_read_union(self) -> set[str]:
        union: set[str] = set()
        for names in self.par_reads.values():
            union |= names
        return union

    # -- sidecar serialisation -----------------------------------------

    def to_payload(self) -> dict:
        return {
            "format": SIDECAR_FORMAT,
            "version": SIDECAR_VERSION,
            "model_digest": self.model_digest,
            "suite_seed": self.suite_seed,
            "suite_size": self.suite_size,
            "settle_cycles": self.settle_cycles,
            "nodes": {name: self.nodes[name]
                      for name in sorted(self.nodes)},
            "edges": sorted([src, dst, cycle, count]
                            for (src, dst), (cycle, count)
                            in self.edges.items()),
            "reads": {str(seed): sorted(names)
                      for seed, names in sorted(self.reads.items())},
            "par_reads": {str(seed): sorted(names)
                          for seed, names in sorted(self.par_reads.items())},
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "LatchGraph":
        if payload.get("format") != SIDECAR_FORMAT:
            raise ValueError(
                f"not a structural sidecar: format={payload.get('format')!r}")
        if payload.get("version") != SIDECAR_VERSION:
            raise ValueError(
                f"structural sidecar version {payload.get('version')!r} "
                f"unsupported (this build reads {SIDECAR_VERSION})")
        return cls(
            nodes=dict(payload["nodes"]),
            edges={(src, dst): [cycle, count]
                   for src, dst, cycle, count in payload["edges"]},
            reads={int(seed): set(names)
                   for seed, names in payload["reads"].items()},
            par_reads={int(seed): set(names)
                       for seed, names in payload["par_reads"].items()},
            model_digest=payload["model_digest"],
            suite_seed=payload["suite_seed"],
            suite_size=payload["suite_size"],
            settle_cycles=payload["settle_cycles"],
        )

    def save(self, path: str | os.PathLike) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_payload(), indent=1,
                                   sort_keys=True) + "\n",
                        encoding="utf-8")
        return path


def load_graph(path: str | os.PathLike) -> LatchGraph:
    """Load a sidecar written by :meth:`LatchGraph.save`."""
    return LatchGraph.from_payload(
        json.loads(Path(path).read_text(encoding="utf-8")))


def model_digest(core) -> str:
    """Stable fingerprint of the compiled model's storage inventory.

    Campaign journals and sidecars both carry (or can recompute) this,
    so the reconciliation gate can refuse to compare artefacts from
    different model builds.
    """
    hasher = hashlib.sha256()
    for latch in core.all_latches():
        hasher.update(f"{latch.name}|{latch.width}|{latch.kind.value}|"
                      f"{latch.ring}|{int(latch.protected)}\n".encode())
    for array in core.arrays():
        hasher.update(f"array:{array.name}\n".encode())
    return "sha256:" + hasher.hexdigest()[:16]


def _node_table(core) -> dict[str, dict]:
    detect_ids = {id(latch)  # repro-lint: allow[REPRO-D03]
                  for latch in core.pervasive.detection_latches()}
    arch_ids = {id(latch)  # repro-lint: allow[REPRO-D03]
                for latch in (core.idu.cr, core.idu.lr, core.idu.ctr,
                              core.ifu.ifar)}
    nodes: dict[str, dict] = {}
    for latch in core.all_latches():
        key = id(latch)  # repro-lint: allow[REPRO-D03]
        nodes[latch.name] = {
            "unit": core.unit_of(latch),
            "kind": TaintNodeKind.LATCH.value,
            "latch_kind": latch.kind.value,
            "ring": latch.ring,
            "width": latch.width,
            "bits": latch.width + (1 if latch.protected else 0),
            "protected": latch.protected,
            "arch": latch.kind.name == "REGFILE" or key in arch_ids,
            "detect": key in detect_ids,
        }
    for array, unit in ((core.ifu.icache.array, "IFU"),
                        (core.lsu.dcache.array, "LSU"),
                        (core.rut.ckpt, "RUT")):
        nodes[array.name] = {
            "unit": unit, "kind": TaintNodeKind.ARRAY.value,
            "latch_kind": "", "ring": "", "width": 0, "bits": 0,
            "protected": False, "arch": False, "detect": False,
        }
    nodes[MEMORY_NODE] = {
        "unit": "MEM", "kind": TaintNodeKind.MEMORY.value,
        "latch_kind": "", "ring": "", "width": 0, "bits": 0,
        "protected": False, "arch": True, "detect": False,
    }
    return nodes


def _trace_testcase(core, testcase, settle_cycles: int):
    """One traced golden run; returns (edges, reads, par_reads)."""
    core.load_program(testcase.program)
    tracker = _StructuralTracker(core)
    budget = core.cycles + 50 * testcase.instructions_retired + 10_000
    tracker.install()
    try:
        # Poll quiescence every cycle: a strict superset of the reads
        # the campaign supervisor's poll-interval loop performs, which
        # the read-silence soundness argument depends on.
        while not core.quiesced and core.cycles < budget:
            core.cycle()
        for _ in range(settle_cycles):
            core.cycle()
    finally:
        tracker.uninstall()
    if not core.halted:
        raise RuntimeError(
            f"golden run of testcase seed {testcase.seed} did not halt "
            f"within {budget} cycles; structural trace would be partial")
    return tracker.harvest()


def _merge_run(graph: LatchGraph, seed: int, edges, reads, par_reads) -> None:
    for pair, (cycle, count) in edges.items():
        record = graph.edges.get(pair)
        if record is None:
            graph.edges[pair] = [cycle, count]
        else:
            record[0] = min(record[0], cycle)
            record[1] += count
    graph.reads[seed] = reads
    graph.par_reads[seed] = par_reads


def extract_graph(core=None, *, suite_size: int = 6, suite_seed: int = 2008,
                  settle_cycles: int = DEFAULT_SETTLE_CYCLES,
                  extra_seeds=()) -> LatchGraph:
    """Extract the structural graph by tracing the AVP suite's golden runs.

    ``suite_size``/``suite_seed`` regenerate the same deterministic suite
    the campaign engine uses (:func:`repro.avp.suite.make_suite` with
    default instruction-mix weights); ``extra_seeds`` traces additional
    raw generator seeds (e.g. testcase seeds found in a journal that the
    suite parameters do not cover).
    """
    core = core if core is not None else Power6Core()
    graph = LatchGraph(nodes=_node_table(core), edges={},
                       model_digest=model_digest(core),
                       suite_seed=suite_seed, suite_size=suite_size,
                       settle_cycles=settle_cycles)
    for testcase in make_suite(suite_size, suite_seed):
        _merge_run(graph, testcase.seed,
                   *_trace_testcase(core, testcase, settle_cycles))
    ensure_seeds(graph, extra_seeds, core=core)
    return graph


def ensure_seeds(graph: LatchGraph, seeds, core=None) -> list[int]:
    """Trace any raw testcase seeds missing from ``graph.reads``.

    Returns the seeds that were newly traced.  Regeneration assumes the
    default AVP instruction-mix weights (the campaign default); a
    campaign run with custom weights needs its own extraction.
    """
    missing = [seed for seed in seeds if seed not in graph.reads]
    if not missing:
        return []
    core = core if core is not None else Power6Core()
    generator = AvpGenerator()
    for seed in missing:
        testcase = generator.generate(seed)
        _merge_run(graph, seed,
                   *_trace_testcase(core, testcase, graph.settle_cycles))
    return missing


def probe_cone(core, testcase, latch_name: str,
               settle_cycles: int = DEFAULT_SETTLE_CYCLES) -> set[str]:
    """Classic single-seed dynamic probe, for cross-validating the graph.

    Seeds one latch with a live :class:`TaintTracker` and replays the
    golden run; returns the canonical names of every node the taint ever
    touched.  Every such node must lie inside the structural graph's
    cone of the same latch (the structural pending windows are supersets
    of the dynamic ones), which the test suite asserts.
    """
    core.load_program(testcase.program)
    by_name = {latch.name: latch for latch in core.all_latches()}
    tracker = TaintTracker([core], by_name[latch_name],
                           max_edges=500_000, max_footprint=2)
    budget = core.cycles + 50 * testcase.instructions_retired + 10_000
    tracker.install()
    try:
        while not core.quiesced and core.cycles < budget:
            core.cycle()
        for _ in range(settle_cycles):
            core.cycle()
    finally:
        tracker.uninstall()
    helper = _StructuralTracker(core)
    touched = {helper.canonical_name(node) for node in tracker.nodes}
    touched.discard(latch_name)
    return touched
