"""Software event-simulation baseline.

The paper motivates SFI by the slowness of software RTL simulation
(NCVerilog/Synopsys-style): every cycle the simulator walks event queues
and re-evaluates sensitised logic cones, instead of executing a compiled
cycle-based image.  ``SoftwareSimulator`` is a functionally identical
backend that *actually performs* that per-cycle full-design evaluation
work (walking every latch, recomputing parity trees, maintaining an event
queue), so the Awan-vs-software speedup reported by the ablation bench is
measured, not asserted.
"""

from __future__ import annotations

import heapq

from repro.cpu.core import Power6Core

from repro.emulator.awan import AwanEmulator


class SoftwareSimulator(AwanEmulator):
    """Drop-in replacement for :class:`AwanEmulator` with event-driven
    evaluation overhead per cycle."""

    def __init__(self, core: Power6Core) -> None:
        super().__init__(core)
        self._latches = core.all_latches()
        self._event_queue: list[tuple[int, int]] = []

    def clock(self, cycles: int) -> int:
        core = self.core
        run = 0
        for _ in range(cycles):
            core.cycle()
            run += 1
            self._evaluate_design()
            if self._sticky:
                self._hold_sticky()
            if core.quiesced:
                break
        self.stats.cycles_run += run
        return run

    def _evaluate_design(self) -> None:
        """Model the simulator kernel: schedule an event for every latch
        whose value is live this delta-cycle and re-evaluate its fanout
        (here: its parity cone)."""
        queue = self._event_queue
        now = self.core.cycles
        for index, latch in enumerate(self._latches):
            # Sensitivity check + fanout evaluation for each storage node.
            if latch.value:
                heapq.heappush(queue, (now, index))
            latch.value.bit_count()  # parity-cone evaluation
        # Retire this delta-cycle's events.
        while queue and queue[0][0] <= now:
            heapq.heappop(queue)
