"""The Awan hardware-emulation engine (modelled).

Awan is IBM's programmable acceleration engine: the design's VHDL is
compiled onto a network of Boolean-function processors and evaluated in a
cycle-based paradigm.  This module models the engine's *interface and
throughput characteristics*: model load, flat latch addressability,
checkpoint save/reload, cycle-batched execution, sticky/toggle fault
forcing, and an accounting of engine time versus host-communication time
(the paper notes throughput is dominated by host interaction, which the
SFI methodology minimises).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.cpu.core import CoreSnapshot, Power6Core
from repro.rtl.fault import FaultSite, InjectionMode

from repro.emulator.netlist import LatchMap

#: Modelled engine throughput (machine cycles per second of engine time).
#: Awan-class accelerators run in the 100k-1M cycle/s range.
AWAN_CYCLES_PER_SECOND = 500_000.0

#: Modelled cost of one host<->engine interaction, seconds.  Each batched
#: latch access or status poll pays this once.
HOST_INTERACTION_SECONDS = 0.002


@dataclass
class EngineStats:
    """Accounting of where emulation time goes."""

    cycles_run: int = 0
    host_interactions: int = 0
    checkpoints_saved: int = 0
    checkpoints_loaded: int = 0
    injections: int = 0
    # Checkpoint-ladder accounting (the fast path's replay cache).
    rungs_saved: int = 0
    rung_evictions: int = 0
    ladder_hits: int = 0
    ladder_misses: int = 0
    cycles_skipped: int = 0

    @property
    def engine_seconds(self) -> float:
        return self.cycles_run / AWAN_CYCLES_PER_SECOND

    @property
    def host_seconds(self) -> float:
        return self.host_interactions * HOST_INTERACTION_SECONDS

    @property
    def total_seconds(self) -> float:
        return self.engine_seconds + self.host_seconds


@dataclass
class _StickyFault:
    site: FaultSite
    level: int
    remaining: int


class AwanEmulator:
    """A loaded model plus the engine-side execution machinery."""

    def __init__(self, core: Power6Core, max_rungs: int = 256) -> None:
        self.core = core
        self.latch_map = LatchMap(core)
        self.stats = EngineStats()
        self.max_rungs = max_rungs
        self._checkpoints: dict[str, CoreSnapshot] = {}
        # Checkpoint ladder: mid-execution snapshots keyed by
        # (checkpoint name, cycle), LRU-evicted beyond ``max_rungs`` so
        # a long reference run cannot grow engine memory without bound.
        self._ladder: OrderedDict[tuple[str, int], CoreSnapshot] = OrderedDict()
        self._sticky: list[_StickyFault] = []

    # ------------------------------------------------------------------
    # Model control.

    def checkpoint(self, name: str = "default") -> None:
        """Save the full model state under ``name``."""
        self._checkpoints[name] = self.core.snapshot()
        self.stats.checkpoints_saved += 1
        self.stats.host_interactions += 1

    def reload(self, name: str = "default") -> None:
        """Reload a previously saved checkpoint (between injections)."""
        self.core.restore(self._checkpoints[name])
        self._sticky.clear()
        self.stats.checkpoints_loaded += 1
        self.stats.host_interactions += 1

    def has_checkpoint(self, name: str = "default") -> bool:
        return name in self._checkpoints

    # ------------------------------------------------------------------
    # Checkpoint ladder (fast-path replay cache).

    @property
    def sticky_pending(self) -> bool:
        """True while a sticky fault is still being re-asserted."""
        return bool(self._sticky)

    def rung_count(self, name: str | None = None) -> int:
        if name is None:
            return len(self._ladder)
        return sum(1 for key in self._ladder if key[0] == name)

    def save_rung(self, name: str) -> None:
        """Snapshot the current (mid-execution) state as a ladder rung
        for checkpoint ``name`` at the current cycle."""
        if self.max_rungs < 1:
            return
        key = (name, self.core.cycles)
        self._ladder[key] = self.core.snapshot()
        self._ladder.move_to_end(key)
        self.stats.rungs_saved += 1
        self.stats.host_interactions += 1
        while len(self._ladder) > self.max_rungs:
            self._ladder.popitem(last=False)
            self.stats.rung_evictions += 1

    def restore_nearest(self, name: str, cycle: int) -> int:
        """Restore the highest rung of ``name`` at or below ``cycle``
        (falling back to the base checkpoint); returns the restored
        cycle so the caller fast-forwards only the remainder."""
        best: tuple[str, int] | None = None
        for key in self._ladder:
            if key[0] == name and key[1] <= cycle and \
                    (best is None or key[1] > best[1]):
                best = key
        if best is None:
            self.stats.ladder_misses += 1
            self.reload(name)
            return self.core.cycles
        self._ladder.move_to_end(best)
        self.core.restore(self._ladder[best])
        self._sticky.clear()
        self.stats.ladder_hits += 1
        self.stats.cycles_skipped += best[1]
        self.stats.checkpoints_loaded += 1
        self.stats.host_interactions += 1
        return best[1]

    def drop_rungs(self, name: str | None = None) -> None:
        """Forget ladder rungs (all of them, or one checkpoint's)."""
        if name is None:
            self._ladder.clear()
            return
        for key in [k for k in self._ladder if k[0] == name]:
            del self._ladder[key]

    # ------------------------------------------------------------------
    # Clocking.

    def clock(self, cycles: int) -> int:
        """Run the engine for up to ``cycles`` machine cycles.

        Stops early when the model quiesces (halt, hang or checkstop) so
        callers don't burn engine time on a dead machine.  Returns cycles
        actually run.
        """
        core = self.core
        run = 0
        if self._sticky:
            for _ in range(cycles):
                core.cycle()
                run += 1
                self._hold_sticky()
                if core.quiesced:
                    break
        else:
            for _ in range(cycles):
                core.cycle()
                run += 1
                if core.quiesced:
                    break
        self.stats.cycles_run += run
        return run

    def _hold_sticky(self) -> None:
        still_active = []
        for fault in self._sticky:
            fault.site.hold(fault.level)
            fault.remaining -= 1
            if fault.remaining > 0:
                still_active.append(fault)
        self._sticky = still_active

    # ------------------------------------------------------------------
    # Fault forcing.

    def inject(self, site_index: int, mode: InjectionMode = InjectionMode.TOGGLE,
               sticky_cycles: int = 16) -> FaultSite:
        """Flip one latch bit at the current cycle boundary.

        TOGGLE flips once; STICKY re-asserts the flipped level for
        ``sticky_cycles`` cycles even if functional logic rewrites it.
        """
        from repro.cpu.events import EventKind
        site = self.latch_map.site(site_index)
        level = site.inject()
        self.core.event_log.record(
            self.core.cycles, EventKind.INJECTION,
            f"{site.name} -> {level} ({mode.value})")
        if mode is InjectionMode.STICKY:
            self._sticky.append(_StickyFault(site, level, sticky_cycles))
        self.stats.injections += 1
        self.stats.host_interactions += 1
        return site

    # ------------------------------------------------------------------
    # Observability (each read is one host interaction).

    def read_status(self) -> dict:
        """Poll the system/processor status registers the paper monitors."""
        core = self.core
        perv = core.pervasive
        self.stats.host_interactions += 1
        return {
            "halted": core.halted,
            "quiesced": core.quiesced,
            "checkstop": bool(perv.xstop.value),
            "hang": bool(perv.hang.value),
            "fir_rec": perv.fir_rec.value,
            "fir_xstop": perv.fir_xstop.value,
            "fir_info": perv.fir_info.value,
            "recoveries": perv.rec_count.value,
            "corrected": perv.corrected_ctr.value,
            "cycles": core.cycles,
            "committed": core.committed,
        }

    def read_latch(self, name: str) -> int:
        """Read one latch by hierarchical name (scan access)."""
        self.stats.host_interactions += 1
        index = self.latch_map.index_of(name + ".0")
        return self.latch_map.latch_of(index).value
