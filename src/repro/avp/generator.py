"""Pseudo-random AVP testcase generation.

The real AVP "executes numerous small testcases of pseudo-random
instructions"; its only published characterisation is the dynamic
instruction mix and CPI of Table 1.  This generator produces structured
pseudo-random programs (straight-line ALU/memory work, forward
conditional skips, bounded counted loops, leaf calls) whose *dynamic* mix
is steered by per-class weights, and self-checks by storing the live
register pool to a result buffer before halting.

Every generated testcase is validated on the golden ISS at generation
time; the golden end-of-run memory image is the reference the SFI
classifier compares against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.isa.encoding import encode
from repro.isa.iss import Iss
from repro.isa.opcodes import Opcode
from repro.isa.program import Program

from repro.avp.testcase import AvpTestcase

CODE_BASE = 0x1000
DATA_BASE = 0x4000
DATA_WORDS = 64
RESULT_BASE = 0x6000

# Register roles.  The pool registers carry testcase results (stored to
# the result buffer at the end); the high registers hold bases/counters.
POOL_REGS = tuple(range(1, 13))
FP_POOL_REGS = tuple(range(1, 7))
REG_DATA_BASE = 29
REG_RESULT_BASE = 30
REG_LOOP = tuple(range(24, 28))


@dataclass(frozen=True)
class MixWeights:
    """Relative generation weights per instruction class."""

    load: float = 0.31
    store: float = 0.12
    fixed: float = 0.17
    fp: float = 0.02
    compare: float = 0.06
    branch: float = 0.32

    def items(self) -> list[tuple[str, float]]:
        return [("load", self.load), ("store", self.store),
                ("fixed", self.fixed), ("fp", self.fp),
                ("compare", self.compare), ("branch", self.branch)]


#: Default weights, tuned so the measured dynamic mix lands on the AVP
#: column of Table 1 (Load 29.4, Store 23.6, FX 16.7, FP ~0, Cmp 4.9,
#: Br 14.6 — top-90% figures).
AVP_WEIGHTS = MixWeights()


@dataclass
class _Builder:
    """Accumulates instruction words with branch-patch support."""

    words: list[int] = field(default_factory=list)

    def emit(self, op: Opcode, rt: int = 0, ra: int = 0, rb: int = 0,
             imm: int = 0) -> int:
        self.words.append(encode(op, rt=rt, ra=ra, rb=rb, imm=imm))
        return len(self.words) - 1

    def reserve(self) -> int:
        """Reserve a slot for a branch to be patched later."""
        self.words.append(encode(Opcode.NOP))
        return len(self.words) - 1

    def patch_branch(self, slot: int, op: Opcode, target: int,
                     rt: int = 0, ra: int = 0) -> None:
        self.words[slot] = encode(op, rt=rt, ra=ra, imm=target - slot)

    @property
    def here(self) -> int:
        return len(self.words)


class AvpGenerator:
    """Generates self-checking pseudo-random testcases."""

    def __init__(self, weights: MixWeights = AVP_WEIGHTS,
                 blocks: tuple[int, int] = (24, 48),
                 max_instructions: int = 20_000,
                 data_words: int = DATA_WORDS) -> None:
        if not 1 <= data_words <= (RESULT_BASE - DATA_BASE) // 4:
            raise ValueError(
                f"data_words must keep the data area below the result "
                f"buffer (max {(RESULT_BASE - DATA_BASE) // 4})")
        self.weights = weights
        self.blocks = blocks
        self.max_instructions = max_instructions
        self.data_words = data_words

    def generate(self, seed: int) -> AvpTestcase:
        """Build, golden-run and package one testcase."""
        rng = random.Random(seed)
        program = self._build_program(rng)
        iss = Iss(program)
        iss.run(max_instructions=self.max_instructions)
        return AvpTestcase(
            seed=seed,
            program=program,
            golden_memory=iss.memory.nonzero_words(),
            golden_state=iss.state.copy(),
            instructions_retired=iss.retired,
            class_counts=dict(iss.class_counts),
        )

    # ------------------------------------------------------------------

    def _build_program(self, rng: random.Random) -> Program:
        builder = _Builder()
        self._prologue(builder, rng)
        picks = [name for name, _ in self.weights.items()]
        cumulative = []
        total = 0.0
        for _, weight in self.weights.items():
            total += weight
            cumulative.append(total)

        n_blocks = rng.randint(*self.blocks)
        call_targets: list[int] = []
        for _ in range(n_blocks):
            roll = rng.random() * total
            kind = picks[next(i for i, edge in enumerate(cumulative)
                              if roll <= edge)]
            if kind == "load":
                self._emit_load(builder, rng)
            elif kind == "store":
                self._emit_store(builder, rng)
            elif kind == "fixed":
                self._emit_fixed(builder, rng)
            elif kind == "fp":
                self._emit_fp(builder, rng)
            elif kind == "compare":
                self._emit_compare(builder, rng)
            else:
                self._emit_branch_structure(builder, rng, call_targets)

        self._epilogue(builder, rng)
        self._emit_functions(builder, rng, call_targets)

        data = {DATA_BASE + 4 * i: rng.getrandbits(32)
                for i in range(self.data_words)}
        return Program(words=builder.words, base=CODE_BASE, data=data)

    def _prologue(self, builder: _Builder, rng: random.Random) -> None:
        builder.emit(Opcode.ADDI, rt=REG_DATA_BASE, ra=0, imm=DATA_BASE)
        builder.emit(Opcode.ADDI, rt=REG_RESULT_BASE, ra=0, imm=RESULT_BASE)
        for reg in rng.sample(POOL_REGS, 6):
            builder.emit(Opcode.ADDI, rt=reg, ra=0,
                         imm=rng.randint(-0x4000, 0x4000))
        for reg in rng.sample(FP_POOL_REGS, 3):
            builder.emit(Opcode.LFS, rt=reg, ra=REG_DATA_BASE,
                         imm=4 * rng.randrange(self.data_words))

    def _epilogue(self, builder: _Builder, rng: random.Random) -> None:
        for i, reg in enumerate(POOL_REGS):
            builder.emit(Opcode.STW, rt=reg, ra=REG_RESULT_BASE, imm=4 * i)
        for i, reg in enumerate(FP_POOL_REGS):
            builder.emit(Opcode.STFS, rt=reg, ra=REG_RESULT_BASE,
                         imm=4 * (len(POOL_REGS) + i))
        builder.emit(Opcode.HALT)

    # ------------------------------------------------------------------
    # Block emitters.

    def _data_offset(self, rng: random.Random) -> int:
        return 4 * rng.randrange(self.data_words)

    def _emit_load(self, builder: _Builder, rng: random.Random) -> None:
        reg = rng.choice(POOL_REGS)
        roll = rng.random()
        if roll < 0.08:
            builder.emit(Opcode.LFS, rt=rng.choice(FP_POOL_REGS),
                         ra=REG_DATA_BASE, imm=self._data_offset(rng))
        elif roll < 0.22:
            builder.emit(Opcode.LBZ, rt=reg, ra=REG_DATA_BASE,
                         imm=self._data_offset(rng) + rng.randrange(4))
        else:
            builder.emit(Opcode.LWZ, rt=reg, ra=REG_DATA_BASE,
                         imm=self._data_offset(rng))

    def _emit_store(self, builder: _Builder, rng: random.Random) -> None:
        reg = rng.choice(POOL_REGS)
        roll = rng.random()
        if roll < 0.08:
            builder.emit(Opcode.STFS, rt=rng.choice(FP_POOL_REGS),
                         ra=REG_DATA_BASE, imm=self._data_offset(rng))
        elif roll < 0.22:
            builder.emit(Opcode.STB, rt=reg, ra=REG_DATA_BASE,
                         imm=self._data_offset(rng) + rng.randrange(4))
        else:
            builder.emit(Opcode.STW, rt=reg, ra=REG_DATA_BASE,
                         imm=self._data_offset(rng))

    _FIXED_XFORM = (Opcode.ADD, Opcode.SUB, Opcode.MULLW, Opcode.AND,
                    Opcode.OR, Opcode.XOR, Opcode.SLW, Opcode.SRW,
                    Opcode.SRAW)
    _FIXED_IFORM = (Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
                    Opcode.SLWI, Opcode.SRWI)

    def _emit_fixed(self, builder: _Builder, rng: random.Random,
                    pool=POOL_REGS) -> None:
        roll = rng.random()
        if roll < 0.04:
            builder.emit(Opcode.DIVW, rt=rng.choice(pool),
                         ra=rng.choice(pool), rb=rng.choice(pool))
        elif roll < 0.5:
            op = rng.choice(self._FIXED_IFORM)
            imm = rng.randint(0, 0x7FFF) if op is not Opcode.ADDI \
                else rng.randint(-0x4000, 0x4000)
            if op in (Opcode.SLWI, Opcode.SRWI):
                imm = rng.randrange(32)
            builder.emit(op, rt=rng.choice(pool), ra=rng.choice(pool), imm=imm)
        else:
            op = rng.choice(self._FIXED_XFORM)
            builder.emit(op, rt=rng.choice(pool), ra=rng.choice(pool),
                         rb=rng.choice(pool))

    _FP_OPS = (Opcode.FADD, Opcode.FADD, Opcode.FADD, Opcode.FADD,
               Opcode.FSUB, Opcode.FMUL)

    def _emit_fp(self, builder: _Builder, rng: random.Random) -> None:
        op = Opcode.FDIV if rng.random() < 0.05 else rng.choice(self._FP_OPS)
        builder.emit(op, rt=rng.choice(FP_POOL_REGS),
                     ra=rng.choice(FP_POOL_REGS), rb=rng.choice(FP_POOL_REGS))

    def _emit_compare(self, builder: _Builder, rng: random.Random,
                      pool=POOL_REGS) -> None:
        roll = rng.random()
        if roll < 0.7:
            builder.emit(Opcode.CMPWI, ra=rng.choice(pool),
                         imm=rng.randint(-100, 100))
        elif roll < 0.92:
            builder.emit(Opcode.CMPW, ra=rng.choice(pool), rb=rng.choice(pool))
        else:
            builder.emit(Opcode.CMPLW, ra=rng.choice(pool), rb=rng.choice(pool))

    def _emit_branch_structure(self, builder: _Builder, rng: random.Random,
                               call_targets: list[int]) -> None:
        # Branch-heavy workloads lean on calls/jumps (dense branches);
        # others lean on counted loops.
        dense = min(0.75, 1.3 * self.weights.branch)
        roll = rng.random()
        if roll < 0.15:
            self._emit_if_skip(builder, rng)
        elif roll < 0.15 + 0.85 * (1.0 - dense):
            self._emit_loop(builder, rng)
        elif roll < 0.15 + 0.85 * (1.0 - dense) + 0.85 * dense * 0.6:
            call_targets.append(builder.reserve())
        else:
            self._emit_jump(builder, rng)

    def _emit_jump(self, builder: _Builder, rng: random.Random) -> None:
        """Unconditional forward branch over a (statically present but
        never executed) pad of instructions."""
        slot = builder.reserve()
        for _ in range(rng.randint(1, 2)):
            self._emit_fixed(builder, rng)
        builder.patch_branch(slot, Opcode.B, builder.here)

    def _emit_if_skip(self, builder: _Builder, rng: random.Random) -> None:
        self._emit_compare(builder, rng)
        slot = builder.reserve()
        for _ in range(rng.randint(1, 3)):
            self._emit_fixed(builder, rng)
        builder.patch_branch(slot, Opcode.BC, builder.here,
                             rt=rng.randrange(3), ra=rng.randrange(2))

    def _emit_loop(self, builder: _Builder, rng: random.Random) -> None:
        scratch = rng.choice(REG_LOOP)
        iterations = rng.randint(2, 8)
        builder.emit(Opcode.ADDI, rt=scratch, ra=0, imm=iterations)
        builder.emit(Opcode.MTCTR, ra=scratch)
        top = builder.here
        # Loop-body composition follows the workload's own weights (with
        # stores boosted: streaming kernels write); the count register
        # carries the trip count so iterations cost no compare/decrement.
        w = self.weights
        total = w.load + 1.7 * w.store + w.compare + w.fp + w.fixed or 1.0
        load_edge = w.load / total
        store_edge = load_edge + 1.7 * w.store / total
        cmp_edge = store_edge + w.compare / total
        fp_edge = cmp_edge + w.fp / total
        # Branch-heavy code has short basic blocks.
        if w.branch >= 0.45:
            body_len = rng.randint(1, 3)
        elif w.branch >= 0.30:
            body_len = rng.randint(2, 5)
        else:
            body_len = rng.randint(3, 7)
        for _ in range(body_len):
            kind = rng.random()
            if kind < load_edge:
                self._emit_load(builder, rng)
            elif kind < store_edge:
                self._emit_store(builder, rng)
            elif kind < cmp_edge:
                self._emit_compare(builder, rng)
            elif kind < fp_edge:
                self._emit_fp(builder, rng)
            else:
                self._emit_fixed(builder, rng)
        slot = builder.reserve()
        builder.patch_branch(slot, Opcode.BDNZ, top)

    def _emit_functions(self, builder: _Builder, rng: random.Random,
                        call_targets: list[int]) -> None:
        """Append leaf functions after HALT and patch the reserved calls."""
        for slot in call_targets:
            entry = builder.here
            for _ in range(rng.randint(1, 3)):
                self._emit_fixed(builder, rng)
            builder.emit(Opcode.BLR)
            builder.patch_branch(slot, Opcode.BL, entry)
