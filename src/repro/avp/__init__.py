"""Architectural Verification Program: pseudo-random self-checking
testcases, the golden-model reference, and the end-of-run architected
state check that detects SDC."""

from repro.avp.generator import AVP_WEIGHTS, AvpGenerator, MixWeights
from repro.avp.runner import (
    AvpBaselineError,
    ReferenceRun,
    establish_reference,
    memory_matches_golden,
)
from repro.avp.suite import make_suite
from repro.avp.testcase import AvpTestcase

__all__ = [
    "AVP_WEIGHTS",
    "AvpBaselineError",
    "AvpGenerator",
    "AvpTestcase",
    "MixWeights",
    "ReferenceRun",
    "establish_reference",
    "make_suite",
    "memory_matches_golden",
]
