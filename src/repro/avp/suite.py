"""AVP suites: pools of testcases used by injection campaigns.

The real AVP executes "numerous small testcases"; a campaign cycles
through a pool so that injections sample many program behaviours rather
than one fixed trace.
"""

from __future__ import annotations

from repro.avp.generator import AvpGenerator, MixWeights
from repro.avp.testcase import AvpTestcase


def make_suite(count: int, seed: int = 2008,
               weights: MixWeights | None = None) -> list[AvpTestcase]:
    """Generate ``count`` testcases deterministically from ``seed``."""
    if count < 1:
        raise ValueError("suite needs at least one testcase")
    generator = AvpGenerator(weights) if weights else AvpGenerator()
    return [generator.generate(seed * 1_000_003 + i) for i in range(count)]
