"""AVP testcase container."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.iss import ArchState
from repro.isa.opcodes import InstrClass
from repro.isa.program import Program


@dataclass
class AvpTestcase:
    """One self-checking pseudo-random testcase.

    The golden results are computed at generation time on the ISS; after a
    (possibly fault-injected) run, the final memory image is compared
    against ``golden_memory`` to detect incorrect architected state — the
    paper's "BAD ARCH STATE" category.
    """

    seed: int
    program: Program
    golden_memory: dict[int, int]
    golden_state: ArchState
    instructions_retired: int
    class_counts: dict[InstrClass, int] = field(default_factory=dict)

    @property
    def static_size(self) -> int:
        return len(self.program.words)

    def dynamic_mix(self) -> dict[InstrClass, float]:
        """Dynamic instruction-class fractions (of all retired)."""
        total = sum(self.class_counts.values())
        if not total:
            return {c: 0.0 for c in InstrClass}
        return {c: self.class_counts.get(c, 0) / total for c in InstrClass}
