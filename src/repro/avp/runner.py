"""Running AVP testcases on the modelled core.

The runner establishes the fault-free reference execution (cycle count and
final state) for a testcase on a given machine, and provides the
architected-state check the AVP performs at the end of a run: the final
memory image (which contains the stored-out live registers) must match the
golden ISS image.  A mismatch is the paper's "incorrect architected state"
/ SDC category.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.core import Power6Core

from repro.avp.testcase import AvpTestcase


class AvpBaselineError(RuntimeError):
    """The fault-free reference run misbehaved (a model bug, not a fault)."""


@dataclass
class ReferenceRun:
    """Fault-free execution record for one testcase on one core config."""

    testcase: AvpTestcase
    cycles: int
    committed: int

    @property
    def cpi(self) -> float:
        return self.cycles / max(1, self.committed)


def establish_reference(core: Power6Core, testcase: AvpTestcase,
                        max_cycles: int = 200_000) -> ReferenceRun:
    """Run ``testcase`` fault-free and validate the machine against the
    golden model.  Raises :class:`AvpBaselineError` on any deviation."""
    core.load_program(testcase.program)
    cycles = core.run(max_cycles=max_cycles)
    if not core.halted:
        raise AvpBaselineError(
            f"testcase seed={testcase.seed} did not halt in {max_cycles} cycles")
    if not core.error_free():
        raise AvpBaselineError(
            f"testcase seed={testcase.seed}: checkers fired on fault-free run")
    if core.memory.nonzero_words() != testcase.golden_memory:
        raise AvpBaselineError(
            f"testcase seed={testcase.seed}: fault-free memory image mismatch")
    if core.committed != testcase.instructions_retired:
        raise AvpBaselineError(
            f"testcase seed={testcase.seed}: committed {core.committed} != "
            f"golden {testcase.instructions_retired}")
    return ReferenceRun(testcase=testcase, cycles=cycles, committed=core.committed)


def memory_matches_golden(core: Power6Core, testcase: AvpTestcase) -> bool:
    """AVP end-of-run architected-state check (memory image compare)."""
    return core.memory.nonzero_words() == testcase.golden_memory
