"""The performance-estimation tool: CPI estimation.

CPI is measured by executing the workload's programs on the latch-level
core model and dividing cycles by committed instructions — with the
paper's caveat that "CPI numbers are approximations and are not truly
representative of POWER6 performance" applying doubly to a scaled model.
An analytic latency-weighted estimate is also provided for cross-checks.
"""

from __future__ import annotations

from repro.cpu.core import Power6Core
from repro.cpu.params import CoreParams
from repro.isa.opcodes import InstrClass, all_opinfo
from repro.isa.program import Program


def measure_cpi(programs: list[Program], params: CoreParams | None = None,
                max_cycles_per_program: int = 500_000) -> float:
    """Cycles per instruction, measured on the pipeline model."""
    core = Power6Core(params)
    cycles = 0
    committed = 0
    for program in programs:
        core.load_program(program)
        core.run(max_cycles=max_cycles_per_program)
        if not core.halted:
            raise RuntimeError("workload program did not halt during CPI run")
        cycles += core.cycles
        committed += core.committed
    return cycles / max(1, committed)


def estimate_cpi_analytic(mix: dict[InstrClass, float],
                          base_overhead: float = 1.6,
                          memory_penalty: float = 0.8) -> float:
    """Latency-weighted analytic CPI estimate.

    ``base_overhead`` models pipeline fill/hazard overhead per instruction
    and ``memory_penalty`` the average cache-miss cost per memory access.
    Useful as a sanity check against :func:`measure_cpi`.
    """
    latency_by_class: dict[InstrClass, float] = {}
    counts: dict[InstrClass, int] = {}
    for info in all_opinfo():
        latency_by_class[info.iclass] = (
            latency_by_class.get(info.iclass, 0.0) + info.latency)
        counts[info.iclass] = counts.get(info.iclass, 0) + 1
    mean_latency = {cls: latency_by_class[cls] / counts[cls] for cls in counts}
    cpi = base_overhead
    for cls, share in mix.items():
        cpi += share * mean_latency.get(cls, 1.0)
        if cls in (InstrClass.LOAD, InstrClass.STORE):
            cpi += share * memory_penalty
    return cpi
