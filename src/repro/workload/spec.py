"""Synthetic SPECInt 2000 workload components.

The paper compares the AVP against the 11 components of SPECInt 2000 it
characterised.  SPEC sources and inputs are not redistributable, so each
component here is a synthetic workload: a pseudo-random program family
whose generation weights and data footprint are chosen to land its
*measured* dynamic mix and memory behaviour where that benchmark
plausibly sits (mcf memory-bound and load-heavy, gcc/parser/crafty
branch- and compare-heavy, bzip2/gzip store-heavy with integer kernels,
eon carrying SPECInt's only noticeable floating-point fraction, ...).
The Low/High/Average columns of Table 1 are computed from these eleven
measured mixes, exactly as the original tool computed them from traces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.avp.generator import AvpGenerator, MixWeights
from repro.isa.program import Program


@dataclass(frozen=True)
class SpecComponent:
    """One synthetic SPECInt 2000 component."""

    name: str
    weights: MixWeights
    data_words: int
    blocks: tuple[int, int] = (28, 52)

    def programs(self, count: int = 3, seed: int = 1234) -> list[Program]:
        generator = AvpGenerator(self.weights, blocks=self.blocks,
                                 data_words=self.data_words)
        return [generator.generate(seed + 7919 * i).program
                for i in range(count)]


#: The 11 components, with weights shaping each one's published character.
SPEC_COMPONENTS: tuple[SpecComponent, ...] = (
    SpecComponent("gzip", MixWeights(load=0.30, store=0.20, fixed=0.32,
                                     fp=0.0, compare=0.03, branch=0.15), 256),
    SpecComponent("vpr", MixWeights(load=0.34, store=0.08, fixed=0.26,
                                    fp=0.03, compare=0.12, branch=0.17), 512),
    SpecComponent("gcc", MixWeights(load=0.20, store=0.02, fixed=0.06,
                                    fp=0.0, compare=0.10, branch=0.62), 384),
    SpecComponent("mcf", MixWeights(load=0.50, store=0.04, fixed=0.12,
                                    fp=0.0, compare=0.12, branch=0.22), 1024),
    SpecComponent("crafty", MixWeights(load=0.18, store=0.02, fixed=0.42,
                                       fp=0.0, compare=0.16, branch=0.22), 128),
    SpecComponent("parser", MixWeights(load=0.28, store=0.05, fixed=0.14,
                                       fp=0.0, compare=0.10, branch=0.43), 256),
    SpecComponent("eon", MixWeights(load=0.24, store=0.12, fixed=0.22,
                                    fp=0.09, compare=0.05, branch=0.18), 256),
    SpecComponent("perlbmk", MixWeights(load=0.28, store=0.14, fixed=0.12,
                                        fp=0.0, compare=0.10, branch=0.36), 384),
    SpecComponent("gap", MixWeights(load=0.26, store=0.10, fixed=0.38,
                                    fp=0.02, compare=0.04, branch=0.20), 512),
    SpecComponent("vortex", MixWeights(load=0.34, store=0.22, fixed=0.12,
                                       fp=0.0, compare=0.04, branch=0.28), 512),
    SpecComponent("bzip2", MixWeights(load=0.26, store=0.26, fixed=0.36,
                                      fp=0.0, compare=0.04, branch=0.08), 768),
)


def component_by_name(name: str) -> SpecComponent:
    for component in SPEC_COMPONENTS:
        if component.name == name:
            return component
    raise KeyError(f"unknown SPEC component {name!r}")
