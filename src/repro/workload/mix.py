"""The performance-estimation tool: instruction mix analysis.

Table 1 was produced by running each workload through "a performance
estimation tool ... to derive the instruction mix and Cycles Per
Instruction", considering "only the top 90% of the instruction mix".
This module measures dynamic class mixes on the golden ISS and applies
the same top-90% truncation.
"""

from __future__ import annotations

from collections import Counter

from repro.isa.iss import Iss
from repro.isa.opcodes import InstrClass
from repro.isa.program import Program

#: The classes Table 1 tabulates, in row order.
TABLE1_CLASSES = (InstrClass.LOAD, InstrClass.STORE, InstrClass.FIXED_POINT,
                  InstrClass.FLOATING_POINT, InstrClass.COMPARISON,
                  InstrClass.BRANCH)


def measure_mix(programs: list[Program],
                max_instructions: int = 100_000) -> dict[InstrClass, float]:
    """Dynamic instruction-class mix across a list of programs."""
    counts: Counter = Counter()
    for program in programs:
        iss = Iss(program)
        iss.run(max_instructions=max_instructions)
        counts.update(iss.class_counts)
    total = sum(counts.values())
    if total == 0:
        return {cls: 0.0 for cls in InstrClass}
    return {cls: counts.get(cls, 0) / total for cls in InstrClass}


def measure_opcode_mix(programs: list[Program],
                       max_instructions: int = 100_000) -> Counter:
    """Dynamic per-opcode execution counts across a list of programs."""
    counts: Counter = Counter()
    for program in programs:
        iss = Iss(program)
        pc_trace = _opcode_counts(iss, max_instructions)
        counts.update(pc_trace)
    return counts


def _opcode_counts(iss: Iss, max_instructions: int) -> Counter:
    counts: Counter = Counter()
    executed = 0
    while not iss.state.halted:
        if executed >= max_instructions:
            raise RuntimeError("program did not halt during mix measurement")
        counts[iss.step()] += 1
        executed += 1
    return counts


def top90_class_mix(opcode_counts: Counter) -> dict[InstrClass, float]:
    """Class mix from the top 90% of *individual opcodes* — how the
    paper's performance-estimation tool truncates.

    Opcodes are ranked by dynamic frequency and accumulated until they
    cover 90% of all executed instructions; the rest are dropped.  Class
    fractions stay relative to the *full* instruction count, which is why
    Table 1's reported categories sum to ~90% and the AVP's small
    floating-point component shows as exactly 0%.
    """
    from repro.isa.opcodes import op_info

    total = sum(opcode_counts.values())
    mix: dict[InstrClass, float] = {cls: 0.0 for cls in InstrClass}
    if not total:
        return mix
    cumulative = 0
    for opcode, count in opcode_counts.most_common():
        if cumulative >= 0.90 * total:
            break
        mix[op_info(opcode).iclass] += count / total
        cumulative += count
    return mix


def top90_mix(mix: dict[InstrClass, float]) -> dict[InstrClass, float]:
    """Truncate a mix to the classes covering the top 90% of instructions.

    Classes are taken in decreasing order of share until the cumulative
    share reaches 90%; the rest report 0 (this is why the AVP's small
    floating-point fraction shows as 0% in Table 1).
    """
    ordered = sorted(mix.items(), key=lambda item: item[1], reverse=True)
    kept: dict[InstrClass, float] = {cls: 0.0 for cls in mix}
    cumulative = 0.0
    for cls, share in ordered:
        if cumulative >= 0.90:
            break
        kept[cls] = share
        cumulative += share
    return kept


def mix_bounds(mixes: dict[str, dict[InstrClass, float]]) -> dict[InstrClass, tuple]:
    """Low/high/average per class across a set of workload mixes —
    the Low/High/Average columns of Table 1."""
    bounds: dict[InstrClass, tuple] = {}
    for cls in TABLE1_CLASSES:
        values = [mix.get(cls, 0.0) for mix in mixes.values()]
        bounds[cls] = (min(values), max(values), sum(values) / len(values))
    return bounds
