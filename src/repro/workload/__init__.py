"""Workload characterisation: the performance-estimation tool (mix + CPI)
and the synthetic SPECInt 2000 components used by Table 1."""

from repro.workload.cpi import estimate_cpi_analytic, measure_cpi
from repro.workload.mix import (
    TABLE1_CLASSES,
    measure_mix,
    measure_opcode_mix,
    mix_bounds,
    top90_class_mix,
    top90_mix,
)
from repro.workload.spec import SPEC_COMPONENTS, SpecComponent, component_by_name

__all__ = [
    "SPEC_COMPONENTS",
    "SpecComponent",
    "TABLE1_CLASSES",
    "component_by_name",
    "estimate_cpi_analytic",
    "measure_cpi",
    "measure_mix",
    "measure_opcode_mix",
    "mix_bounds",
    "top90_class_mix",
    "top90_mix",
]
