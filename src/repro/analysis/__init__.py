"""Analysis and reporting: derating, per-unit contribution normalisation,
and text renderers for every table and figure in the paper."""

from repro.analysis.contribution import contribution_table, unit_contributions
from repro.analysis.derating import (
    derating_factor,
    effective_ser_reduction,
    per_unit_derating,
    unmasked_rate,
)
from repro.analysis.tracing import (
    TraceSummary,
    detection_event,
    detection_latency,
    render_cause_effect,
    render_trace_summary,
    summarize_traces,
)
from repro.analysis.vulnerability import (
    LatchVulnerability,
    latch_vulnerabilities,
    render_vulnerabilities,
)
from repro.analysis.ser import (
    SerBudget,
    budget_from_campaign,
    mtbf_hours,
    render_budgets,
    unit_budgets,
)
from repro.analysis.provenance import (
    ProvenanceFormatError,
    propagation_chain,
    read_provenance_jsonl,
    render_propagation_story,
    render_provenance_report,
    write_provenance_jsonl,
)
from repro.analysis.static_bounds import (
    ReconcileReport,
    StaticBounds,
    compute_bounds,
    load_sidecar,
    reconcile,
    render_bounds,
    render_cone_browser,
    write_sidecar,
)
from repro.analysis.report import (
    render_fig2,
    render_fig3,
    render_fig4,
    render_fig5,
    render_kind_results,
    render_table1,
    render_table2,
    render_table3,
)

__all__ = [
    "LatchVulnerability",
    "latch_vulnerabilities",
    "render_vulnerabilities",
    "SerBudget",
    "budget_from_campaign",
    "mtbf_hours",
    "render_budgets",
    "unit_budgets",
    "TraceSummary",
    "detection_event",
    "detection_latency",
    "render_cause_effect",
    "render_trace_summary",
    "summarize_traces",
    "contribution_table",
    "derating_factor",
    "effective_ser_reduction",
    "per_unit_derating",
    "ReconcileReport",
    "StaticBounds",
    "compute_bounds",
    "load_sidecar",
    "reconcile",
    "render_bounds",
    "render_cone_browser",
    "write_sidecar",
    "ProvenanceFormatError",
    "propagation_chain",
    "read_provenance_jsonl",
    "render_propagation_story",
    "render_provenance_report",
    "write_provenance_jsonl",
    "render_fig2",
    "render_fig3",
    "render_fig4",
    "render_fig5",
    "render_kind_results",
    "render_table1",
    "render_table2",
    "render_table3",
    "unit_contributions",
    "unmasked_rate",
]
