"""Per-unit contribution normalisation (Figure 4).

Figure 3's per-unit outcome *rates* cannot be compared directly because
"each unit has a different number of latches"; Figure 4 weights each
unit's rate by its latch-bit count to obtain the unit's share of the
total recoveries, hangs and checkstops the whole core would see.
"""

from __future__ import annotations

from repro.sfi.outcomes import Outcome
from repro.sfi.results import CampaignResult
from repro.stats.sampling_theory import Stratum, stratum_contributions


def unit_contributions(results_by_unit: dict[str, CampaignResult],
                       unit_bits: dict[str, int],
                       outcome: Outcome) -> dict[str, float]:
    """Each unit's share of the expected total events of ``outcome``."""
    strata = []
    for unit, result in results_by_unit.items():
        if unit not in unit_bits:
            raise KeyError(f"no latch-bit count for unit {unit!r}")
        strata.append(Stratum(
            name=unit,
            population=unit_bits[unit],
            sample_size=result.total,
            proportion=result.fractions()[outcome],
        ))
    return stratum_contributions(strata)


def contribution_table(results_by_unit: dict[str, CampaignResult],
                       unit_bits: dict[str, int],
                       outcomes: tuple = (Outcome.CORRECTED, Outcome.HANG,
                                          Outcome.CHECKSTOP)) -> dict:
    """Figure 4's full data: contribution per outcome per unit."""
    return {outcome: unit_contributions(results_by_unit, unit_bits, outcome)
            for outcome in outcomes}
