"""Text renderers that regenerate the paper's tables and figures.

Every bench prints through these, so the reproduced artefacts share one
format: rows/series matching the published table or figure, with the
paper's values alongside where they are known.
"""

from __future__ import annotations

from repro.isa.opcodes import InstrClass
from repro.rtl.latch import LatchKind
from repro.sfi.experiments import SampleSizePoint
from repro.sfi.outcomes import OUTCOME_ORDER, Outcome
from repro.sfi.results import CampaignResult
from repro.workload.mix import TABLE1_CLASSES

#: Published values for comparison columns.
PAPER_TABLE1_AVP = {
    InstrClass.LOAD: 0.294, InstrClass.STORE: 0.236,
    InstrClass.FIXED_POINT: 0.167, InstrClass.FLOATING_POINT: 0.0,
    InstrClass.COMPARISON: 0.049, InstrClass.BRANCH: 0.146,
}
PAPER_TABLE1_SPEC = {  # (low, high, average)
    InstrClass.LOAD: (0.189, 0.356, 0.278),
    InstrClass.STORE: (0.064, 0.317, 0.141),
    InstrClass.FIXED_POINT: (0.062, 0.359, 0.222),
    InstrClass.FLOATING_POINT: (0.0, 0.091, 0.012),
    InstrClass.COMPARISON: (0.048, 0.151, 0.088),
    InstrClass.BRANCH: (0.069, 0.288, 0.154),
}
PAPER_TABLE2 = {"SFI": {Outcome.VANISHED: 0.9548, Outcome.CORRECTED: 0.0362,
                        Outcome.CHECKSTOP: 0.0090},
                "Proton Beam": {Outcome.VANISHED: 0.9589,
                                Outcome.CORRECTED: 0.0351,
                                Outcome.CHECKSTOP: 0.0060}}
PAPER_TABLE3 = {"Raw": {Outcome.VANISHED: 0.988, Outcome.CORRECTED: 0.0,
                        Outcome.HANG: 0.012, Outcome.CHECKSTOP: 0.0},
                "Check": {Outcome.VANISHED: 0.959, Outcome.CORRECTED: 0.015,
                          Outcome.HANG: 0.011, Outcome.CHECKSTOP: 0.015}}


def _pct(value: float) -> str:
    return f"{100 * value:6.2f}%"


def render_table1(avp_mix: dict, avp_cpi: float,
                  spec_mixes: dict[str, dict], spec_cpis: dict[str, float]) -> str:
    """Table 1: AVP vs SPECInt2000 instruction mix (top 90%) and CPI."""
    lines = ["Table 1: Comparison of the AVP to SPECInt 2000 (measured)",
             f"{'Class':<16}{'SPEC Low':>10}{'SPEC High':>10}{'SPEC Avg':>10}"
             f"{'AVP':>10}   {'paper AVP':>10}"]
    for cls in TABLE1_CLASSES:
        values = [mix.get(cls, 0.0) for mix in spec_mixes.values()]
        low, high = min(values), max(values)
        avg = sum(values) / len(values)
        lines.append(
            f"{cls.value:<16}{_pct(low):>10}{_pct(high):>10}{_pct(avg):>10}"
            f"{_pct(avp_mix.get(cls, 0.0)):>10}   "
            f"{_pct(PAPER_TABLE1_AVP[cls]):>10}")
    cpis = list(spec_cpis.values())
    lines.append(
        f"{'CPI':<16}{min(cpis):>10.2f}{max(cpis):>10.2f}"
        f"{sum(cpis) / len(cpis):>10.2f}{avp_cpi:>10.2f}   {'(n/a)':>10}")
    return "\n".join(lines)


def render_table2(sfi: CampaignResult, beam: CampaignResult) -> str:
    """Table 2: error-state proportions for SFI and the proton beam."""
    lines = ["Table 2: Error state proportions, SFI vs Proton Beam",
             f"{'Category':<14}{'SFI':>10}{'Beam':>10}   "
             f"{'paper SFI':>10}{'paper Beam':>11}"]
    lines.append(f"{'Total flips':<14}{sfi.total:>10}{beam.total:>10}   "
                 f"{'10014':>10}{'5679':>11}")
    sfi_fracs, beam_fracs = sfi.fractions(), beam.fractions()
    for outcome in (Outcome.VANISHED, Outcome.CORRECTED, Outcome.CHECKSTOP):
        lines.append(
            f"{outcome.value:<14}{_pct(sfi_fracs[outcome]):>10}"
            f"{_pct(beam_fracs[outcome]):>10}   "
            f"{_pct(PAPER_TABLE2['SFI'][outcome]):>10}"
            f"{_pct(PAPER_TABLE2['Proton Beam'][outcome]):>11}")
    for outcome in (Outcome.HANG, Outcome.SDC):
        lines.append(
            f"{outcome.value:<14}{_pct(sfi_fracs[outcome]):>10}"
            f"{_pct(beam_fracs[outcome]):>10}   "
            f"{'-':>10}{'-':>11}")
    return "\n".join(lines)


def render_table3(raw: CampaignResult, check: CampaignResult) -> str:
    """Table 3: effect of low-level hardware checkers (Raw vs Check)."""
    lines = ["Table 3: Effect of hardware checkers",
             f"{'Type':<8}{'Vanish':>9}{'Rec':>9}{'Hangs':>9}{'Chk':>9}"
             f"{'SDC':>9}"]
    for label, result in (("Raw", raw), ("Check", check)):
        fracs = result.fractions()
        lines.append(
            f"{label:<8}{_pct(fracs[Outcome.VANISHED]):>9}"
            f"{_pct(fracs[Outcome.CORRECTED]):>9}"
            f"{_pct(fracs[Outcome.HANG]):>9}"
            f"{_pct(fracs[Outcome.CHECKSTOP]):>9}"
            f"{_pct(fracs[Outcome.SDC]):>9}")
    lines.append("paper:  Raw   98.8% / 0% / 1.2% / 0%    "
                 "Check 95.9% / 1.5% / 1.1% / 1.5%")
    return "\n".join(lines)


def render_fig2(points: list[SampleSizePoint]) -> str:
    """Figure 2: stdev as a fraction of the mean vs number of flips."""
    lines = ["Figure 2: Accuracy of SFI with increasing number of flips",
             f"{'flips':>8}" + "".join(f"{o.value:>14}" for o in OUTCOME_ORDER)]
    for point in points:
        row = f"{point.flips:>8}"
        for outcome in OUTCOME_ORDER:
            row += f"{point.stdev_over_mean[outcome]:>14.3f}"
        lines.append(row)
    return "\n".join(lines)


def render_fig3(results_by_unit: dict[str, CampaignResult],
                unit_order: tuple = ("IFU", "IDU", "FXU", "FPU", "LSU",
                                     "RUT", "CORE")) -> str:
    """Figure 3: SER outcome percentages per micro-architectural unit."""
    lines = ["Figure 3: SER of different micro-architecture units",
             f"{'Unit':<7}" + "".join(f"{o.value:>15}" for o in OUTCOME_ORDER)]
    for unit in unit_order:
        if unit not in results_by_unit:
            continue
        fracs = results_by_unit[unit].fractions()
        lines.append(f"{unit:<7}"
                     + "".join(f"{_pct(fracs[o]):>15}" for o in OUTCOME_ORDER))
    return "\n".join(lines)


def render_fig4(contributions: dict, unit_order: tuple = ("IFU", "IDU", "FXU",
                                                          "FPU", "LSU", "RUT",
                                                          "CORE")) -> str:
    """Figure 4: per-unit contribution to recoveries/hangs/checkstops."""
    outcomes = list(contributions)
    lines = ["Figure 4: Contribution of each unit to total outcome events",
             f"{'Unit':<7}" + "".join(f"{o.value:>15}" for o in outcomes)]
    for unit in unit_order:
        row = f"{unit:<7}"
        for outcome in outcomes:
            row += f"{_pct(contributions[outcome].get(unit, 0.0)):>15}"
        lines.append(row)
    return "\n".join(lines)


def render_fig5(results_by_ring: dict[str, CampaignResult],
                ring_order: tuple = ("MODE", "GPTR", "REGFILE", "FUNC")) -> str:
    """Figure 5: SER of the different latch types (scan rings)."""
    lines = ["Figure 5: SER of different types of latches",
             f"{'Ring':<9}" + "".join(f"{o.value:>15}" for o in OUTCOME_ORDER)]
    for ring in ring_order:
        if ring not in results_by_ring:
            continue
        fracs = results_by_ring[ring].fractions()
        lines.append(f"{ring:<9}"
                     + "".join(f"{_pct(fracs[o]):>15}" for o in OUTCOME_ORDER))
    return "\n".join(lines)


def render_kind_results(results_by_kind: dict[LatchKind, CampaignResult]) -> str:
    """Equal-count per-latch-type view (Figure 5 companion)."""
    lines = [f"{'Kind':<9}" + "".join(f"{o.value:>15}" for o in OUTCOME_ORDER)]
    for kind in (LatchKind.MODE, LatchKind.GPTR, LatchKind.REGFILE,
                 LatchKind.FUNC):
        if kind not in results_by_kind:
            continue
        fracs = results_by_kind[kind].fractions()
        lines.append(f"{kind.value:<9}"
                     + "".join(f"{_pct(fracs[o]):>15}" for o in OUTCOME_ORDER))
    return "\n".join(lines)
