"""Static masking bounds and the static-vs-SFI reconciliation gate.

Built on the structural graph (:mod:`repro.emulator.structural`), this
module turns read-set evidence into *provable* per-unit masking lower
bounds and cross-checks them against what journaled campaigns actually
measured.

Latch classes (mutually exclusive, in precedence order):

``sink``
    Architected state or the detection network — the analyzer makes no
    masking claim about these; a flip here is *supposed* to matter.
``proven-masked``
    Value never read (nor parity shadow consulted) during any traced
    golden run.  Injections into such a latch provably classify
    VANISHED for every suite testcase: the faulty run stays
    bit-identical to the fault-free run everywhere else until some
    cycle reads the flipped latch, and none does (classification reads
    only detection latches, halt flags and memory).  This is the sound
    class; its bits form the per-unit masking lower bound.
``dead``
    Proven-masked *and* no outgoing dataflow edge anywhere in the
    traced suite — structurally inert storage (spares, debug chains).
``unreachable``
    Read at some point, but the BFS cone of influence reaches neither
    architected state nor the detection network nor any array/memory.
    Sound up to the consume-on-write window's known under-tainting of
    control-only dependencies, so it feeds the *structural* (advisory)
    bound and the reconciliation gate, not the proven bound.
``reaches``
    Everything else — the latch can influence an outcome.

The reconciliation gate (`reconcile`) is the CI tripwire: a journaled
record whose site the analyzer proves masked for that record's testcase
seed, yet whose outcome is not VANISHED, is a model bug (or an analyzer
soundness bug) and fails the build.  The per-unit check additionally
requires the proven bound never to exceed the campaign's measured
derating on units with enough trials for the comparison to be exact.
"""

from __future__ import annotations

import html as _html
from dataclasses import dataclass, field

from repro.emulator.structural import (
    LatchGraph,
    ensure_seeds,
    latch_name_of_site,
)
from repro.sfi.outcomes import Outcome

__all__ = [
    "StaticBounds",
    "ReconcileReport",
    "compute_bounds",
    "load_sidecar",
    "reconcile",
    "render_bounds",
    "render_cone_browser",
    "write_sidecar",
]

#: Latch classification labels, in precedence order.
CLASS_SINK = "sink"
CLASS_PROVEN = "proven-masked"
CLASS_DEAD = "dead"
CLASS_UNREACHABLE = "unreachable"
CLASS_REACHES = "reaches"


@dataclass
class StaticBounds:
    """Per-latch classes and per-unit masking lower bounds."""

    classes: dict[str, str]
    unit_bounds: dict[str, dict]
    model_digest: str = ""

    def proven_latches(self) -> list[str]:
        return sorted(name for name, cls in self.classes.items()
                      if cls in (CLASS_PROVEN, CLASS_DEAD))

    def gate_latches(self) -> list[str]:
        """Latches the reconciliation gate holds to VANISHED."""
        return sorted(name for name, cls in self.classes.items()
                      if cls in (CLASS_PROVEN, CLASS_DEAD,
                                 CLASS_UNREACHABLE))

    def to_payload(self) -> dict:
        return {
            "model_digest": self.model_digest,
            "classes": {name: self.classes[name]
                        for name in sorted(self.classes)},
            "unit_bounds": {unit: self.unit_bounds[unit]
                            for unit in sorted(self.unit_bounds)},
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "StaticBounds":
        return cls(classes=dict(payload["classes"]),
                   unit_bounds=dict(payload["unit_bounds"]),
                   model_digest=payload.get("model_digest", ""))


def compute_bounds(graph: LatchGraph) -> StaticBounds:
    """Classify every latch and fold the classes into per-unit bounds."""
    adjacency = graph.out_adjacency()
    sinks = graph.sink_names()
    read_union = graph.read_union()
    par_union = graph.par_read_union()

    classes: dict[str, str] = {}
    unit_bounds: dict[str, dict] = {}
    for name in graph.latch_names():
        node = graph.nodes[name]
        unit = node["unit"]
        totals = unit_bounds.setdefault(unit, {
            "total_bits": 0, "proven_bits": 0, "structural_bits": 0,
            "latches": 0, "proven_latches": 0})
        totals["total_bits"] += node["bits"]
        totals["latches"] += 1

        if node["arch"] or node["detect"]:
            classes[name] = CLASS_SINK
            continue

        value_silent = name not in read_union
        par_silent = (not node["protected"]) or name not in par_union
        proven = value_silent and par_silent
        # A consulted parity shadow IS a path to the detection network:
        # any value read of the latch runs the checker, which can raise
        # Corrected/Checkstop without a single dataflow edge to a sink.
        # Dataflow-cone reachability alone would misclass such latches
        # as unreachable — unsound, the reconciliation gate trips on the
        # first parity-corrected record.
        reaches_sink = (bool(graph.cone(name, adjacency) & sinks)
                        or not par_silent)

        if proven and not adjacency.get(name):
            classes[name] = CLASS_DEAD
        elif proven:
            classes[name] = CLASS_PROVEN
        elif not reaches_sink:
            classes[name] = CLASS_UNREACHABLE
        else:
            classes[name] = CLASS_REACHES

        proven_bits = 0
        if proven:
            proven_bits = node["bits"]
            totals["proven_latches"] += 1
        elif value_silent:
            proven_bits = node["width"]
        elif node["protected"] and par_silent:
            proven_bits = 1
        totals["proven_bits"] += proven_bits
        if classes[name] in (CLASS_DEAD, CLASS_PROVEN, CLASS_UNREACHABLE):
            totals["structural_bits"] += node["bits"]
        else:
            totals["structural_bits"] += proven_bits

    for totals in unit_bounds.values():
        total = totals["total_bits"] or 1
        totals["bound"] = round(totals["proven_bits"] / total, 6)
        totals["structural_bound"] = round(
            totals["structural_bits"] / total, 6)
    return StaticBounds(classes=classes, unit_bounds=unit_bounds,
                        model_digest=graph.model_digest)


@dataclass
class ReconcileReport:
    """What the static-vs-SFI gate decided for one campaign."""

    records_checked: int = 0
    records_gated: int = 0
    violations: list[dict] = field(default_factory=list)
    unit_checks: list[dict] = field(default_factory=list)
    seeds_traced: list[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and all(
            check["ok"] for check in self.unit_checks)

    def to_payload(self) -> dict:
        return {
            "ok": self.ok,
            "records_checked": self.records_checked,
            "records_gated": self.records_gated,
            "violations": list(self.violations),
            "unit_checks": list(self.unit_checks),
            "seeds_traced": list(self.seeds_traced),
        }


def _site_is_silent(graph: LatchGraph, latch_name: str, is_par: bool,
                    seed: int) -> bool:
    """Was this site provably dormant during ``seed``'s golden run?"""
    if is_par:
        return latch_name not in graph.par_reads[seed]
    # A value flip desyncs the stored parity, so any parity
    # consultation detects it even if the value is never consumed.
    return (latch_name not in graph.reads[seed]
            and latch_name not in graph.par_reads[seed])


def reconcile(graph: LatchGraph, bounds: StaticBounds, records,
              *, core=None, extend: bool = True,
              min_unit_trials: int = 1) -> ReconcileReport:
    """Cross-check journaled outcomes against the static analysis.

    ``records`` is any iterable of injection records (journal replay or
    :class:`repro.sfi.results.CampaignResult` rows).  Seeds the graph
    has not traced are regenerated and traced on the fly when ``extend``
    is True (default AVP weights assumed); otherwise they are reported
    as violations of kind ``untraced-seed``.
    """
    records = list(records)
    report = ReconcileReport()
    wanted = sorted({record.testcase_seed for record in records})
    if extend:
        report.seeds_traced = ensure_seeds(graph, wanted, core=core)

    unreachable = {name for name, cls in bounds.classes.items()
                   if cls == CLASS_UNREACHABLE}
    per_unit: dict[str, list[int]] = {}
    for record in records:
        report.records_checked += 1
        outcome = record.outcome
        vanished = outcome is Outcome.VANISHED or outcome == Outcome.VANISHED
        per_unit.setdefault(record.unit, []).append(int(vanished))

        latch_name, is_par = latch_name_of_site(record.site_name)
        node = graph.nodes.get(latch_name)
        if node is None:
            report.violations.append({
                "kind": "unknown-latch", "site": record.site_name,
                "seed": record.testcase_seed, "outcome": str(outcome),
                "detail": f"site {record.site_name!r} resolves to no "
                          f"latch in the structural graph"})
            continue
        if node["arch"] or node["detect"]:
            continue
        if record.testcase_seed not in graph.reads:
            report.violations.append({
                "kind": "untraced-seed", "site": record.site_name,
                "seed": record.testcase_seed, "outcome": str(outcome),
                "detail": "testcase seed has no traced golden run and "
                          "extension was disabled"})
            continue

        silent = _site_is_silent(graph, latch_name, is_par,
                                 record.testcase_seed)
        gated = silent or latch_name in unreachable
        if gated:
            report.records_gated += 1
        if gated and not vanished:
            why = ("never read during this testcase's fault-free run"
                   if silent else
                   "cone of influence reaches no architected or "
                   "detection state")
            report.violations.append({
                "kind": "proven-masked-but-observed",
                "site": record.site_name, "seed": record.testcase_seed,
                "outcome": str(getattr(outcome, "value", outcome)),
                "detail": f"latch {latch_name!r} {why}, yet the journal "
                          f"records {getattr(outcome, 'value', outcome)!r}"})

    for unit, flags in sorted(per_unit.items()):
        trials = len(flags)
        bound = bounds.unit_bounds.get(unit, {}).get("bound", 0.0)
        measured = sum(flags) / trials
        check = {"unit": unit, "trials": trials, "bound": bound,
                 "measured_derating": round(measured, 6),
                 "ok": trials < min_unit_trials or bound <= measured}
        report.unit_checks.append(check)
    return report


# ----------------------------------------------------------------------
# Sidecar: graph + bounds in one versioned file the warehouse can join.


def write_sidecar(path, graph: LatchGraph, bounds: StaticBounds):
    """Persist graph + bounds as one versioned JSON sidecar."""
    import json
    from pathlib import Path

    payload = graph.to_payload()
    payload["bounds"] = bounds.to_payload()
    path = Path(path)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_sidecar(path) -> tuple[LatchGraph, StaticBounds]:
    """Load a sidecar written by :func:`write_sidecar`.

    Sidecars written by :meth:`LatchGraph.save` (graph only) load too:
    the bounds are recomputed from the graph.
    """
    import json
    from pathlib import Path

    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    graph = LatchGraph.from_payload(payload)
    if "bounds" in payload:
        bounds = StaticBounds.from_payload(payload["bounds"])
    else:
        bounds = compute_bounds(graph)
    return graph, bounds


# ----------------------------------------------------------------------
# Renderers.


def render_bounds(bounds: StaticBounds) -> str:
    """Fixed-width per-unit bounds table for the CLI."""
    lines = [f"{'unit':<6} {'bits':>6} {'proven':>7} {'bound':>7} "
             f"{'struct':>7}  latches (proven/total)"]
    for unit in sorted(bounds.unit_bounds):
        row = bounds.unit_bounds[unit]
        lines.append(
            f"{unit:<6} {row['total_bits']:>6} {row['proven_bits']:>7} "
            f"{row['bound']:>7.3f} {row['structural_bound']:>7.3f}  "
            f"{row['proven_latches']}/{row['latches']}")
    counts: dict[str, int] = {}
    for cls in bounds.classes.values():
        counts[cls] = counts.get(cls, 0) + 1
    summary = ", ".join(f"{cls}={counts[cls]}" for cls in sorted(counts))
    lines.append(f"latch classes: {summary}")
    return "\n".join(lines)


_CONE_LIMIT = 40  # nodes listed per cone in the HTML browser


def render_cone_browser(graph: LatchGraph, bounds: StaticBounds) -> str:
    """Self-contained HTML cone browser (no scripts, no external fetches).

    One ``<details>`` element per latch, grouped by unit, listing its
    class and the first :data:`_CONE_LIMIT` nodes of its cone of
    influence.  Kept dependency-free so CI can publish it as an artifact
    next to the warehouse report.
    """
    adjacency = graph.out_adjacency()
    sinks = graph.sink_names()
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        "<title>Structural cone browser</title>",
        "<style>body{font-family:monospace;margin:1.5em}"
        "details{margin:.15em 0}summary{cursor:pointer}"
        ".cls{color:#555}.sink{color:#a00}"
        "table{border-collapse:collapse;margin:1em 0}"
        "td,th{border:1px solid #999;padding:.2em .6em;text-align:right}"
        "th:first-child,td:first-child{text-align:left}</style>",
        "</head><body>",
        "<h1>Structural cone browser</h1>",
        f"<p>model {_html.escape(graph.model_digest)} &middot; "
        f"{len(graph.latch_names())} latches &middot; "
        f"{len(graph.edges)} edges &middot; suite seed "
        f"{graph.suite_seed} &times; {graph.suite_size}</p>",
        "<table><tr><th>unit</th><th>bits</th><th>proven bits</th>"
        "<th>bound</th><th>structural</th></tr>",
    ]
    for unit in sorted(bounds.unit_bounds):
        row = bounds.unit_bounds[unit]
        parts.append(
            f"<tr><td>{_html.escape(unit)}</td><td>{row['total_bits']}</td>"
            f"<td>{row['proven_bits']}</td><td>{row['bound']:.3f}</td>"
            f"<td>{row['structural_bound']:.3f}</td></tr>")
    parts.append("</table>")

    by_unit: dict[str, list[str]] = {}
    for name in graph.latch_names():
        by_unit.setdefault(graph.nodes[name]["unit"], []).append(name)
    for unit in sorted(by_unit):
        parts.append(f"<h2>{_html.escape(unit)}</h2>")
        for name in sorted(by_unit[unit]):
            cls = bounds.classes.get(name, CLASS_REACHES)
            cone = sorted(graph.cone(name, adjacency))
            reach = cone[:_CONE_LIMIT]
            more = len(cone) - len(reach)
            touch = len(set(cone) & sinks)
            body = ("(empty cone)" if not cone else
                    ", ".join(_html.escape(n) for n in reach)
                    + (f" &hellip; +{more} more" if more > 0 else ""))
            parts.append(
                f"<details><summary>{_html.escape(name)} "
                f"<span class='cls'>[{cls}, cone={len(cone)}, "
                f"sinks={touch}]</span></summary><p>{body}</p></details>")
    parts.append("</body></html>")
    return "\n".join(parts)
