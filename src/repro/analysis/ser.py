"""SER / FIT budgeting from measured derating.

The conclusions' designer workflow: "understand the derating of these
errors by various layers ... and use this derating to their advantage"
when apportioning soft-error protection.  Given a raw per-latch-bit
upset rate (from technology data or beam flux) and campaign-measured
derating, these helpers produce the effective failure-rate budget per
unit and per failure class — the numbers an RAS architect actually signs
off on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sfi.outcomes import Outcome
from repro.sfi.results import CampaignResult

#: 1 FIT = one failure per 1e9 device-hours.
HOURS_PER_BILLION = 1e9


@dataclass(frozen=True)
class SerBudget:
    """Effective failure rates (FIT) for one latch population."""

    name: str
    latch_bits: int
    raw_fit: float              # upsets/1e9h for the whole population
    corrected_fit: float        # detected-and-corrected events
    hang_fit: float
    checkstop_fit: float
    sdc_fit: float

    @property
    def unrecoverable_fit(self) -> float:
        """Events a system operator would see as an outage or corruption."""
        return self.hang_fit + self.checkstop_fit + self.sdc_fit

    @property
    def derating(self) -> float:
        if self.raw_fit == 0:
            return 1.0
        visible = (self.corrected_fit + self.hang_fit + self.checkstop_fit
                   + self.sdc_fit)
        return 1.0 - visible / self.raw_fit


def budget_from_campaign(name: str, result: CampaignResult,
                         latch_bits: int,
                         fit_per_bit: float) -> SerBudget:
    """Convert campaign outcome fractions into a FIT budget.

    ``fit_per_bit`` is the raw per-bit upset rate (FIT/bit) — e.g. from
    accelerated-beam cross-sections at the deployment altitude.
    """
    if latch_bits < 0 or fit_per_bit < 0:
        raise ValueError("latch_bits and fit_per_bit must be non-negative")
    raw = latch_bits * fit_per_bit
    fractions = result.fractions()
    return SerBudget(
        name=name,
        latch_bits=latch_bits,
        raw_fit=raw,
        corrected_fit=raw * fractions[Outcome.CORRECTED],
        hang_fit=raw * fractions[Outcome.HANG],
        checkstop_fit=raw * fractions[Outcome.CHECKSTOP],
        sdc_fit=raw * fractions[Outcome.SDC],
    )


def unit_budgets(results_by_unit: dict[str, CampaignResult],
                 unit_bits: dict[str, int],
                 fit_per_bit: float) -> list[SerBudget]:
    """Per-unit FIT budgets from targeted campaigns (Figure 3 data)."""
    budgets = []
    for unit, result in results_by_unit.items():
        budgets.append(budget_from_campaign(unit, result,
                                            unit_bits[unit], fit_per_bit))
    return sorted(budgets, key=lambda b: b.unrecoverable_fit, reverse=True)


def mtbf_hours(fit: float) -> float:
    """Mean time between failures (hours) for a FIT rate."""
    if fit <= 0:
        return float("inf")
    return HOURS_PER_BILLION / fit


def render_budgets(budgets: list[SerBudget]) -> str:
    """Designer-facing FIT budget table."""
    lines = [f"{'population':<12}{'bits':>8}{'raw FIT':>10}{'corr FIT':>10}"
             f"{'unrec FIT':>11}{'derating':>10}  {'MTBF(unrec)':>18}"]
    for budget in budgets:
        mtbf = mtbf_hours(budget.unrecoverable_fit)
        mtbf_text = "inf" if mtbf == float("inf") else f"{mtbf:,.0f}h"
        lines.append(
            f"{budget.name:<12}{budget.latch_bits:>8}{budget.raw_fit:>10.1f}"
            f"{budget.corrected_fit:>10.2f}{budget.unrecoverable_fit:>11.3f}"
            f"{budget.derating:>10.1%}  {mtbf_text:>18}")
    return "\n".join(lines)
