"""Fault-provenance rendering: propagation stories and campaign reports.

The taint tracker (``repro.cpu.tainttrace``) emits one provenance payload
per injection — a propagation DAG plus detection and masking ledgers
(see ``repro.obs.provenance``).  This module turns them into the
designer-facing artefacts: a per-injection *propagation story* (the
chain of storage the flip infected, ending where it was caught, masked,
or architecturally visible), the campaign-level per-unit propagation
matrix, and a JSONL sidecar format for offline analysis.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

from repro.obs.provenance import ProvenanceReport

_PROVENANCE_FORMAT = 1
_PROVENANCE_KIND = "sfi-provenance"


class ProvenanceFormatError(ValueError):
    """A provenance sidecar file is malformed or from an unknown format."""


# ----------------------------------------------------------------------
# Per-injection story.

def propagation_chain(payload: dict) -> list[tuple[int, int, int]]:
    """Shortest propagation chain from the injected node, as
    ``(src, dst, cycle)`` node-index hops.

    Prefers the shortest chain reaching architected state (an ``arch``
    node other than the root); with no architected sink it returns the
    deepest chain the taint reached; with no edges at all, ``[]``.
    """
    nodes = payload.get("nodes", [])
    adjacency: dict[int, list[tuple[int, int]]] = {}
    for src, dst, cycle, _count in payload.get("edges", []):
        adjacency.setdefault(src, []).append((dst, cycle))
    hop_to: dict[int, tuple[int, int, int]] = {}  # dst -> (src, dst, cycle)
    queue = deque([0])
    seen = {0}
    target = None
    last = 0
    while queue and target is None:
        node = queue.popleft()
        for dst, cycle in adjacency.get(node, ()):
            if dst in seen:
                continue
            seen.add(dst)
            hop_to[dst] = (node, dst, cycle)
            last = dst  # BFS order: the latest discovery is a deepest node
            if dst != 0 and nodes[dst].get("arch"):
                target = dst
                break
            queue.append(dst)
    end = target if target is not None else last
    chain: list[tuple[int, int, int]] = []
    while end in hop_to:
        hop = hop_to[end]
        chain.append(hop)
        end = hop[0]
    chain.reverse()
    return chain


def render_propagation_story(payload: dict) -> str:
    """Human-readable provenance narrative for one injection."""
    nodes = payload.get("nodes", [])

    def describe(index: int) -> str:
        node = nodes[index]
        marker = ", architected" if node.get("arch") else ""
        return f"{node['name']} ({node['unit']}{marker})"

    site = payload.get("site") or (nodes[0]["name"] if nodes else "?")
    unit = payload.get("unit") or (nodes[0]["unit"] if nodes else "?")
    lines = [f"Injection into {site} ({unit}) "
             f"at cycle {payload.get('inject_cycle', '?')}"
             + (f" [testcase seed {payload['testcase_seed']}]"
                if "testcase_seed" in payload else "")]
    chain = propagation_chain(payload)
    edge_total = sum(count for *_ignored, count in payload.get("edges", []))
    if chain:
        lines.append(f"  propagation ({len(payload.get('edges', []))} distinct "
                     f"edges, {edge_total} traversals"
                     + (f", {payload['edges_dropped']} dropped"
                        if payload.get("edges_dropped") else "") + "):")
        for src, dst, cycle in chain:
            lines.append(f"    cycle {cycle}: {describe(src)} "
                         f"-> {describe(dst)}")
        last = nodes[chain[-1][1]]
        if last.get("arch"):
            lines.append("    => reached architected state")
    else:
        lines.append("  no propagation: the taint never left the "
                     "injected node")
    detection = payload.get("detection")
    if detection is not None:
        lines.append(f"  detected by {detection['detector']} at cycle "
                     f"{detection['cycle']} "
                     f"(latency {detection['latency']} cycles)")
    else:
        lines.append("  never detected by a checker")
    footprint = payload.get("footprint", [])
    peak = payload.get("peak_bits", 0)
    residual = payload.get("residual_tainted", 0)
    lines.append(f"  infection footprint: peak {peak} bits"
                 f"{' (truncated series)' if payload.get('footprint_truncated') else ''}"
                 f" over {len(footprint)} change points, "
                 f"{residual} bits still tainted at quiesce")
    masking = payload.get("masking_counts", {})
    if masking:
        lines.append("  masking attribution:")
        for cause, count in sorted(masking.items()):
            lines.append(f"    {cause:<22} {count} bits")
    if "outcome" in payload:
        lines.append(f"  => outcome: {payload['outcome']}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Campaign-level report.

def render_provenance_report(report: ProvenanceReport) -> str:
    """Campaign-level provenance summary with the per-unit edge matrix."""
    lines = [f"Fault-provenance report ({report.injections} injections)"]
    if report.outcomes:
        outcomes = ", ".join(f"{name}: {count}" for name, count
                             in sorted(report.outcomes.items()))
        lines.append(f"  outcomes: {outcomes}")
    if report.detections:
        lines.append(
            f"  detections: {report.detections} "
            f"(latency mean {report.mean_detection_latency:.0f}, "
            f"min {report.detection_latency_min}, "
            f"max {report.detection_latency_max} cycles)")
        for detector, count in report.detected_by.most_common():
            lines.append(f"    {detector:<24} {count}")
    else:
        lines.append("  detections: none")
    lines.append(f"  infection: mean peak {report.mean_peak_bits:.1f} bits, "
                 f"max {report.peak_bits_max}; "
                 f"{report.residual_bits_sum} residual bits total")
    if report.masking:
        lines.append("  masking attribution (bits):")
        for cause, count in sorted(report.masking.items()):
            lines.append(f"    {cause:<22} {count}")
    if report.cross_core_edges:
        lines.append(f"  cross-core edge traversals: "
                     f"{report.cross_core_edges}")
    units = report.units()
    if units:
        width = max(6, max(len(unit) for unit in units) + 1)
        lines.append(f"  propagation matrix (edge traversals, row=src, "
                     f"col=dst"
                     + (f"; {report.edges_dropped} edges dropped"
                        if report.edges_dropped else "") + "):")
        header = " " * (width + 4) + "".join(f"{unit:>{width}}"
                                             for unit in units)
        lines.append(header)
        for src in units:
            cells = "".join(
                f"{report.unit_edges.get((src, dst), 0) or '.':>{width}}"
                for dst in units)
            lines.append(f"    {src:<{width}}{cells}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# JSONL sidecars.

def write_provenance_jsonl(payloads: dict[int, dict],
                           path: str | Path) -> None:
    """Write per-injection payloads as a JSONL sidecar (header line +
    one ``{"pos", "payload"}`` line per injection, in position order)."""
    path = Path(path)
    with path.open("w") as handle:
        handle.write(json.dumps({"format": _PROVENANCE_FORMAT,
                                 "kind": _PROVENANCE_KIND,
                                 "payloads": len(payloads)}) + "\n")
        for position in sorted(payloads):
            handle.write(json.dumps({"pos": position,
                                     "payload": payloads[position]}) + "\n")


def read_provenance_jsonl(path: str | Path) -> dict[int, dict]:
    """Read a sidecar written by :func:`write_provenance_jsonl`."""
    path = Path(path)
    with path.open() as handle:
        lines = [line for line in handle if line.strip()]
    if not lines:
        raise ProvenanceFormatError(f"{path}: empty provenance file")
    header = json.loads(lines[0])
    if not isinstance(header, dict) \
            or header.get("format") != _PROVENANCE_FORMAT \
            or header.get("kind") != _PROVENANCE_KIND:
        raise ProvenanceFormatError(
            f"{path}: not a provenance sidecar this build can read "
            f"(header {header!r})")
    payloads: dict[int, dict] = {}
    for number, line in enumerate(lines[1:], start=2):
        entry = json.loads(line)
        if "pos" not in entry or "payload" not in entry:
            raise ProvenanceFormatError(
                f"{path}:{number}: sidecar line missing pos/payload")
        payloads[entry["pos"]] = entry["payload"]
    return payloads
