"""Derating analysis.

"Microarchitectural derating" is the fraction of raw bit flips that the
architecture masks — the headline quantity SFI makes measurable at scale
(§3.1: "On an average, 95% of the injected faults are masked").
"""

from __future__ import annotations

from repro.sfi.outcomes import Outcome
from repro.sfi.results import CampaignResult


def derating_factor(result: CampaignResult) -> float:
    """Fraction of injected flips masked by the architecture."""
    return result.fractions()[Outcome.VANISHED]


def unmasked_rate(result: CampaignResult) -> float:
    """Fraction of flips with any architecturally visible effect."""
    return 1.0 - derating_factor(result)


def per_unit_derating(results_by_unit: dict[str, CampaignResult]) -> dict[str, float]:
    """Derating per micro-architectural unit (Figure 3's masked row)."""
    return {unit: derating_factor(result)
            for unit, result in results_by_unit.items()}


def effective_ser_reduction(raw_failure_rate: float,
                            derating: float) -> float:
    """Apply an architectural derating factor to a raw per-bit SER.

    The designers' use-case from the conclusions: "use this derating to
    their advantage" when budgeting protection.
    """
    if not 0 <= derating <= 1:
        raise ValueError("derating must be within [0, 1]")
    return raw_failure_rate * (1.0 - derating)
