"""Cause-and-effect tracing analysis.

The third of the paper's headline capabilities: tracing a system-level
error (effect) back to the originating bit flip (cause).  Each
:class:`~repro.sfi.results.InjectionRecord` carries the machine's event
trace; this module renders the causal narrative for one injection and
aggregates detection-latency / detection-point statistics over a
campaign — the designer-facing feedback loop §4 describes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.cpu.events import EventKind
from repro.sfi.outcomes import Outcome
from repro.sfi.results import CampaignResult, InjectionRecord


def render_cause_effect(record: InjectionRecord) -> str:
    """Human-readable causal narrative for one injection."""
    lines = [f"Injection into {record.site_name} "
             f"({record.unit}, {record.kind.value} latch) "
             f"at cycle {record.inject_cycle} "
             f"[testcase seed {record.testcase_seed}]"]
    for event in record.trace:
        lines.append(f"  {event}")
    lines.append(f"  => outcome: {record.outcome.value}")
    return "\n".join(lines)


def detection_event(record: InjectionRecord):
    """First detection-class event after the injection, or None."""
    seen_injection = False
    for event in record.trace:
        if event.kind is EventKind.INJECTION:
            seen_injection = True
            continue
        if not seen_injection:
            continue
        if event.kind in (EventKind.ERROR_DETECTED,
                          EventKind.CORRECTED_LOCAL,
                          EventKind.HANG_DETECTED,
                          EventKind.CHECKSTOP):
            return event
    return None


def detection_latency(record: InjectionRecord) -> int | None:
    """Cycles from the flip to its first detection (None if undetected)."""
    event = detection_event(record)
    if event is None:
        return None
    return event.cycle - record.inject_cycle


@dataclass
class TraceSummary:
    """Aggregate cause-and-effect statistics for one campaign."""

    detected: int
    undetected_visible: int  # non-vanished outcome with no detection event
    latencies: list[int]
    detection_points: Counter

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def max_latency(self) -> int:
        return max(self.latencies) if self.latencies else 0


def summarize_traces(result: CampaignResult) -> TraceSummary:
    """Detection statistics over every non-vanished injection."""
    detected = 0
    undetected = 0
    latencies: list[int] = []
    points: Counter = Counter()
    for record in result.records:
        if record.outcome is Outcome.VANISHED:
            continue
        event = detection_event(record)
        if event is None:
            undetected += 1
            continue
        detected += 1
        latencies.append(event.cycle - record.inject_cycle)
        points[event.detail.split(" ")[0]] += 1
    return TraceSummary(detected=detected, undetected_visible=undetected,
                        latencies=latencies, detection_points=points)


def render_trace_summary(summary: TraceSummary) -> str:
    """Campaign-level cause-and-effect report."""
    lines = ["Cause-and-effect tracing summary (non-vanished flips)",
             f"  detected by a checker:      {summary.detected}",
             f"  visible but never detected: {summary.undetected_visible} "
             f"(silent corruption / timeout paths)"]
    if summary.latencies:
        lines.append(f"  detection latency: mean {summary.mean_latency:.0f} "
                     f"cycles, max {summary.max_latency}")
    if summary.detection_points:
        lines.append("  detection points:")
        for checker, count in summary.detection_points.most_common():
            lines.append(f"    {checker:<24} {count}")
    return "\n".join(lines)
