"""SQLite-backed result store with idempotent, fencing-aware ingest.

The warehouse consumes campaign journals (and their ``.leases`` /
``.provenance`` sidecars) into one queryable SQLite file.  Three
invariants, in descending order of importance:

* **Read-only toward journals.**  Ingest opens journals with a
  read-only cursor and never holds an append handle — it can run beside
  a live coordinator without perturbing the run, and a warehouse bug
  can corrupt at most the warehouse.
* **Verified-tail fencing.**  Only bytes below the journal's last
  newline are consumed (``scan_journal``): a torn tail — a crash or an
  append caught mid-``write`` — is re-examined next poll, never
  committed, so live streaming is byte-exact versus an offline ingest
  of the finished journal.
* **Idempotence.**  Rows key on ``(campaign_id, pos)`` and inserts are
  ``OR IGNORE``; re-ingesting a journal (or racing two tailers) adds
  nothing.  Line-level validation mirrors ``verify_journal``: exactly
  the lines it would flag (malformed interior JSON, missing
  ``pos``/``record``, undecodable records, out-of-range or duplicate
  positions) are skipped and counted, never stored.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path

from repro.obs.fleet import read_span_log
from repro.sfi.storage import (
    CampaignStorageError,
    JournalCursor,
    record_from_dict,
    record_to_row,
    scan_journal,
)
from repro.warehouse.schema import (
    SCHEMA_DDL,
    SCHEMA_FINGERPRINT,
    SCHEMA_VERSION,
    compute_fingerprint,
)

__all__ = [
    "IngestStats",
    "JournalTailer",
    "Warehouse",
    "WarehouseError",
]


class WarehouseError(ValueError):
    """The warehouse file is unusable (schema mismatch, bad path) or an
    ingest request is malformed."""


@dataclass
class IngestStats:
    """What one ingest pass (offline call or tailer poll) did."""

    name: str
    campaign_id: int
    added: int = 0            # records newly inserted this pass
    skipped: int = 0          # lines rejected this pass (verify-parity)
    lease_events: int = 0     # sidecar events newly inserted this pass
    provenance_rows: int = 0  # provenance payloads newly inserted
    span_rows: int = 0        # fleet spans newly inserted this pass
    records: int = 0          # cumulative records now in the store
    total_sites: int = 0
    complete: bool = False
    rewound: bool = False     # journal shrank; campaign was re-ingested

    @property
    def lag(self) -> int:
        """Records the journal plans that the store does not yet hold."""
        return max(0, self.total_sites - self.records)


class Warehouse:
    """One SQLite file holding many campaigns' results.

    Opens (creating and initializing if absent) the store at ``path``.
    A store initialized by a different ``SCHEMA_VERSION`` is refused
    with :class:`WarehouseError` — there are no silent migrations.
    Usable as a context manager.
    """

    def __init__(self, path: str | Path, *, metrics=None) -> None:
        self.path = Path(path)
        self._conn = sqlite3.connect(os.fspath(self.path), timeout=5.0)
        self._conn.isolation_level = None  # explicit BEGIN/COMMIT below
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._init_schema()
        self._ingest_counter = None
        self._lag_gauge = None
        if metrics is not None:
            self._ingest_counter = metrics.counter(
                "sfi_ingest_records_total",
                "Journal records ingested into the warehouse",
                labelnames=("campaign",))
            self._lag_gauge = metrics.gauge(
                "sfi_ingest_lag_records",
                "Journal records not yet ingested (planned - stored)",
                labelnames=("campaign",))

    # -- lifecycle -----------------------------------------------------

    def _init_schema(self) -> None:
        fingerprint = compute_fingerprint()
        if fingerprint != SCHEMA_FINGERPRINT:
            raise WarehouseError(
                f"warehouse schema DDL does not match its declared "
                f"fingerprint ({fingerprint} != {SCHEMA_FINGERPRINT}); "
                f"bump SCHEMA_VERSION and refresh SCHEMA_FINGERPRINT "
                f"(lint rule REPRO-S01)")
        conn = self._conn
        have = conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table' "
            "AND name='warehouse_meta'").fetchone()
        if have is None:
            conn.execute("BEGIN IMMEDIATE")
            try:
                for statement in SCHEMA_DDL:
                    conn.execute(statement)
                conn.execute(
                    "INSERT INTO warehouse_meta (key, value) VALUES "
                    "('schema_version', ?), ('schema_fingerprint', ?)",
                    (str(SCHEMA_VERSION), SCHEMA_FINGERPRINT))
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            return
        row = conn.execute(
            "SELECT value FROM warehouse_meta WHERE key='schema_version'"
        ).fetchone()
        stored = row["value"] if row is not None else None
        if stored != str(SCHEMA_VERSION):
            raise WarehouseError(
                f"{self.path}: warehouse schema version {stored!r} is not "
                f"{SCHEMA_VERSION} (this build does not migrate; ingest "
                f"the journals into a fresh store)")

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "Warehouse":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying connection (queries layer; read-mostly)."""
        return self._conn

    # -- campaign directory --------------------------------------------

    def campaigns(self) -> list[sqlite3.Row]:
        """Every campaign row, in ingest (= campaign_id) order."""
        return list(self._conn.execute(
            "SELECT * FROM campaigns ORDER BY campaign_id"))

    def campaign_id(self, name: str) -> int | None:
        row = self._conn.execute(
            "SELECT campaign_id FROM campaigns WHERE name=?",
            (name,)).fetchone()
        return None if row is None else row["campaign_id"]

    # -- ingest --------------------------------------------------------

    def ingest_journal(self, journal: str | Path, *, name: str | None = None,
                       leases: bool = True,
                       provenance: str | Path | None = None) -> IngestStats:
        """Consume journal bytes appended since the last ingest of it.

        ``name`` is the campaign's warehouse identity (defaults to the
        journal's resolved path); re-ingesting under the same name
        resumes from the stored byte cursor and adds nothing that is
        already present.  ``leases`` also folds the ``.leases`` sidecar
        in; ``provenance`` names a provenance JSONL sidecar to join
        (defaults to ``<journal>.provenance`` when that file exists).
        Raises :class:`CampaignStorageError` while the journal does not
        exist yet (the tailer turns that into a wait).
        """
        journal = Path(journal)
        name = name or str(journal.resolve())
        conn = self._conn
        row = conn.execute("SELECT * FROM campaigns WHERE name=?",
                           (name,)).fetchone()
        cursor = JournalCursor()
        if row is not None:
            cursor.offset = row["journal_offset"]
            cursor.line = row["journal_line"]
            cursor.check = row["journal_check"]
            if cursor.line:
                cursor.header = {"kind": row["kind"], "seed": row["seed"],
                                 "total_sites": row["total_sites"]}
        delta = scan_journal(journal, cursor)
        conn.execute("BEGIN IMMEDIATE")
        try:
            stats = self._apply_delta(journal, name, row, cursor, delta)
            if leases:
                stats.lease_events = self._ingest_leases(
                    journal.with_name(journal.name + ".leases"),
                    stats.campaign_id)
            sidecar = Path(provenance) if provenance is not None else \
                journal.with_name(journal.name + ".provenance")
            if provenance is not None or sidecar.exists():
                stats.provenance_rows = self._ingest_provenance(
                    sidecar, stats.campaign_id)
            spans = journal.with_name(journal.name + ".spans")
            if spans.exists():
                stats.span_rows = self._ingest_spans(
                    spans, stats.campaign_id)
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        if self._ingest_counter is not None and stats.added:
            self._ingest_counter.inc(stats.added, campaign=name)
        if self._lag_gauge is not None:
            self._lag_gauge.set(stats.lag, campaign=name)
        return stats

    def _apply_delta(self, journal: Path, name: str, row, cursor, delta):
        """Insert one scan delta's validated records (in a transaction
        the caller owns)."""
        conn = self._conn
        if row is not None and delta.rewound:
            # Torn-tail recovery rewrote the journal shorter: derived
            # rows may describe dropped bytes, so re-ingest from zero.
            for table in ("records", "lease_events", "provenance", "spans"):
                conn.execute(f"DELETE FROM {table} WHERE campaign_id=?",
                             (row["campaign_id"],))
            conn.execute(
                "UPDATE campaigns SET journal_offset=0, journal_line=0, "
                "journal_check='', ingested_records=0, skipped_lines=0, "
                "complete=0 WHERE campaign_id=?", (row["campaign_id"],))
            row = conn.execute("SELECT * FROM campaigns WHERE name=?",
                               (name,)).fetchone()
        header = cursor.header
        if row is None:
            if header is None:
                raise CampaignStorageError(
                    f"{journal}: journal has no complete header line yet")
            conn.execute(
                "INSERT INTO campaigns (name, journal_path, kind, seed, "
                "total_sites, population_bits, meta_json) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (name, str(journal), header.get("kind", ""),
                 header.get("seed"), int(header.get("total_sites", 0)),
                 int(header.get("population_bits", 0)),
                 json.dumps(header["meta"]) if header.get("meta") else None))
            row = conn.execute("SELECT * FROM campaigns WHERE name=?",
                               (name,)).fetchone()
        campaign_id = row["campaign_id"]
        total = row["total_sites"] or None
        stats = IngestStats(name=name, campaign_id=campaign_id,
                            total_sites=row["total_sites"],
                            rewound=delta.rewound)
        stats.skipped = len(delta.skipped)
        rows = []
        for _number, payload in delta.entries:
            position = payload.get("pos")
            if "record" not in payload or not isinstance(position, int) \
                    or position < 0 or (total and position >= total):
                stats.skipped += 1
                continue
            try:
                record = record_from_dict(payload["record"])
            except CampaignStorageError:
                stats.skipped += 1
                continue
            sidecar = payload.get("fastpath")
            sidecar = sidecar if isinstance(sidecar, dict) else None
            rows.append((campaign_id, position, *record_to_row(record),
                         1 if sidecar else 0,
                         sidecar.get("exit") if sidecar else None,
                         int(sidecar.get("saved_cycles", 0)) if sidecar
                         else 0))
        before = conn.total_changes
        conn.executemany(
            "INSERT OR IGNORE INTO records VALUES "
            "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)", rows)
        stats.added = conn.total_changes - before
        # Duplicate positions within/across passes land in OR IGNORE:
        # count them as skipped, like verify_journal flags them.
        stats.skipped += len(rows) - stats.added
        stats.records = row["ingested_records"] + stats.added
        stats.complete = bool(stats.total_sites) \
            and stats.records >= stats.total_sites
        conn.execute(
            "UPDATE campaigns SET journal_offset=?, journal_line=?, "
            "journal_check=?, ingested_records=?, "
            "skipped_lines=skipped_lines+?, complete=? WHERE campaign_id=?",
            (cursor.offset, cursor.line, cursor.check, stats.records,
             stats.skipped, int(stats.complete), campaign_id))
        return stats

    def _ingest_leases(self, path: Path, campaign_id: int) -> int:
        """Fold the ``.leases`` sidecar in (idempotent by line number).

        The sidecar is append-only and rarely more than a few hundred
        lines, so it is re-read whole; a torn final line is ignored
        until a later poll sees it complete.
        """
        try:
            lines = path.read_text().splitlines()
        except OSError:
            return 0
        rows = []
        for seq, line in enumerate(lines, 1):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail (or garbage verify_journal flags)
            if not isinstance(event, dict) or "event" not in event:
                continue
            rows.append((campaign_id, seq, event["event"],
                         event.get("token"), event.get("shard"),
                         event.get("worker"), json.dumps(event)))
        conn = self._conn
        before = conn.total_changes
        conn.executemany(
            "INSERT OR IGNORE INTO lease_events VALUES (?, ?, ?, ?, ?, ?, ?)",
            rows)
        return conn.total_changes - before

    def _ingest_spans(self, path: Path, campaign_id: int) -> int:
        """Fold the ``.spans`` sidecar (merged fleet span tree) in,
        idempotently by span id.

        Written once post-campaign and at most a few thousand lines, so
        it is re-read whole like the leases sidecar; torn or malformed
        lines are skipped by the reader.
        """
        rows = [(campaign_id, span.span_id, span.parent_id, span.phase,
                 span.start, span.end, span.worker, span.shard_id,
                 span.token) for span in read_span_log(path)]
        conn = self._conn
        before = conn.total_changes
        conn.executemany(
            "INSERT OR IGNORE INTO spans VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            rows)
        return conn.total_changes - before

    def _ingest_provenance(self, path: Path, campaign_id: int) -> int:
        """Join a provenance JSONL sidecar (``repro-sfi propagation
        --jsonl``) onto the campaign's records, idempotently by pos."""
        try:
            lines = path.read_text().splitlines()
        except OSError:
            return 0
        rows = []
        for line in lines[1:]:  # line 1 is the sidecar header
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(entry, dict) or "pos" not in entry:
                continue
            payload = entry.get("payload") or {}
            detection = payload.get("detection") or {}
            rows.append((campaign_id, entry["pos"],
                         detection.get("detector"),
                         detection.get("latency"),
                         int(payload.get("peak_bits", 0)),
                         int(payload.get("residual_tainted", 0)),
                         len(payload.get("nodes", ())),
                         len(payload.get("edges", ()))))
        conn = self._conn
        before = conn.total_changes
        conn.executemany(
            "INSERT OR IGNORE INTO provenance VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            rows)
        return conn.total_changes - before

    # -- structural sidecars -------------------------------------------

    def ingest_structural(self, graph, bounds) -> int:
        """Store a structural graph + its static bounds, returning the
        ``sidecar_id``.

        ``graph`` is a :class:`repro.emulator.structural.LatchGraph`,
        ``bounds`` its :class:`repro.analysis.static_bounds.StaticBounds`.
        Keyed on ``(model_digest, suite_seed, suite_size)``: re-ingesting
        the same extraction replaces its payload and per-unit bound rows
        (the graph may have traced additional journal seeds since), so
        the store never holds two generations of one sidecar.
        """
        payload = graph.to_payload()
        payload["bounds"] = bounds.to_payload()
        conn = self._conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                "SELECT sidecar_id FROM structural_sidecars WHERE "
                "model_digest=? AND suite_seed=? AND suite_size=?",
                (graph.model_digest, graph.suite_seed,
                 graph.suite_size)).fetchone()
            latches = len(graph.latch_names())
            if row is not None:
                sidecar_id = row["sidecar_id"]
                conn.execute(
                    "UPDATE structural_sidecars SET settle_cycles=?, "
                    "latches=?, edges=?, payload=? WHERE sidecar_id=?",
                    (graph.settle_cycles, latches, len(graph.edges),
                     json.dumps(payload, sort_keys=True), sidecar_id))
                conn.execute(
                    "DELETE FROM structural_bounds WHERE sidecar_id=?",
                    (sidecar_id,))
            else:
                sidecar_id = conn.execute(
                    "INSERT INTO structural_sidecars (model_digest, "
                    "suite_seed, suite_size, settle_cycles, latches, "
                    "edges, payload) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (graph.model_digest, graph.suite_seed,
                     graph.suite_size, graph.settle_cycles, latches,
                     len(graph.edges),
                     json.dumps(payload, sort_keys=True))).lastrowid
            conn.executemany(
                "INSERT INTO structural_bounds VALUES "
                "(?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [(sidecar_id, unit, totals["total_bits"],
                  totals["proven_bits"], totals["structural_bits"],
                  totals["latches"], totals["proven_latches"],
                  totals["bound"], totals["structural_bound"])
                 for unit, totals in sorted(bounds.unit_bounds.items())])
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        return sidecar_id


class JournalTailer:
    """Follow a live campaign's journal into the warehouse.

    Each :meth:`poll` commits exactly the new verified-tail bytes (one
    transaction per poll); :meth:`follow` loops until the campaign's
    journal covers its plan.  Strictly read-only toward the journal —
    SIGKILL the tailer at any point and a later offline ingest of the
    finished journal converges to the identical store contents.
    """

    def __init__(self, warehouse: Warehouse, journal: str | Path, *,
                 name: str | None = None,
                 provenance: str | Path | None = None,
                 leases: bool = True) -> None:
        self.warehouse = warehouse
        self.journal = Path(journal)
        self.name = name
        self.provenance = provenance
        self.leases = leases
        self.last: IngestStats | None = None

    def poll(self) -> IngestStats | None:
        """One incremental pass; None while the journal does not exist
        (or has no complete header line yet)."""
        try:
            self.last = self.warehouse.ingest_journal(
                self.journal, name=self.name, leases=self.leases,
                provenance=self.provenance)
        except CampaignStorageError:
            return None
        return self.last

    def follow(self, *, interval: float = 1.0,
               max_polls: int | None = None,
               sleep=time.sleep) -> IngestStats | None:
        """Poll until the campaign completes (or ``max_polls`` passes).

        Returns the final stats (None if the journal never appeared).
        """
        polls = 0
        while True:
            stats = self.poll()
            polls += 1
            if stats is not None and stats.complete:
                return stats
            if max_polls is not None and polls >= max_polls:
                return stats
            sleep(interval)
