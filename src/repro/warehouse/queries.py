"""The warehouse's question-answering layer.

Every aggregate the paper's analysis chapters keep asking for — per-unit
outcome mixes, SDC (soft-error-rate) fractions with Wilson confidence
intervals across campaigns, detection-latency percentiles, fast-path
hit rates, lease/retry health — phrased so SQLite answers each from a
covering index: the million-record acceptance budget (<1s per query)
holds only if none of them touch the base ``records`` table.
:func:`query_plans` EXPLAIN-checks exactly that, and the warehouse
benchmark asserts it.

Campaign arguments accept a warehouse name or a ``campaign_id``; omit
them to aggregate across every campaign in the store.
"""

from __future__ import annotations

import json
import math

from repro.obs.convergence import ConvergenceTracker
from repro.obs.fleet import Span, critical_path
from repro.sfi.outcomes import OUTCOME_ORDER, Outcome
from repro.stats import wilson_interval
from repro.warehouse.store import Warehouse, WarehouseError

__all__ = [
    "bounds_vs_measured",
    "campaign_critical_path",
    "campaign_spans",
    "convergence",
    "detection_latency_percentiles",
    "fastpath_stats",
    "lease_health",
    "outcome_totals",
    "query_plans",
    "render_bounds_vs_measured",
    "render_campaigns",
    "render_critical_path",
    "render_fastpath",
    "render_latency",
    "render_leases",
    "render_ser_trend",
    "render_span_phases",
    "render_unit_outcomes",
    "ser_trend",
    "span_phases",
    "unit_outcomes",
]


def _campaign_clause(warehouse: Warehouse, campaign) -> tuple[str, tuple]:
    """``campaign`` (name, id or None) -> SQL filter + params."""
    if campaign is None:
        return "", ()
    if isinstance(campaign, int):
        return " WHERE campaign_id=?", (campaign,)
    campaign_id = warehouse.campaign_id(str(campaign))
    if campaign_id is None and str(campaign).isdigit():
        # CLI hands ids through as strings ("--campaign 2").
        row = warehouse.connection.execute(
            "SELECT campaign_id FROM campaigns WHERE campaign_id=?",
            (int(campaign),)).fetchone()
        campaign_id = row["campaign_id"] if row is not None else None
    if campaign_id is None:
        raise WarehouseError(f"no campaign named {campaign!r} in "
                             f"{warehouse.path}")
    return " WHERE campaign_id=?", (campaign_id,)


def outcome_totals(warehouse: Warehouse, campaign=None) -> dict[str, int]:
    """Outcome -> record count (one campaign, or the whole store)."""
    where, params = _campaign_clause(warehouse, campaign)
    rows = warehouse.connection.execute(
        f"SELECT outcome, COUNT(*) AS n FROM records{where} "
        f"GROUP BY outcome", params)
    return {row["outcome"]: row["n"] for row in rows}


def unit_outcomes(warehouse: Warehouse,
                  campaign=None) -> dict[str, dict[str, int]]:
    """Unit -> outcome -> count: the per-unit vulnerability breakdown."""
    where, params = _campaign_clause(warehouse, campaign)
    rows = warehouse.connection.execute(
        f"SELECT unit, outcome, COUNT(*) AS n FROM records{where} "
        f"GROUP BY unit, outcome", params)
    breakdown: dict[str, dict[str, int]] = {}
    for row in rows:
        breakdown.setdefault(row["unit"], {})[row["outcome"]] = row["n"]
    return breakdown


def ser_trend(warehouse: Warehouse, *,
              confidence: float = 0.95) -> list[dict]:
    """Per-campaign SDC fraction with a Wilson interval, in ingest order.

    This is the cross-campaign view of the paper's headline number: the
    fraction of injections that corrupt architected state (SER), with
    the repeated-sampling confidence interval §3 argues for.
    """
    counts: dict[int, dict[str, int]] = {}
    for row in warehouse.connection.execute(
            "SELECT campaign_id, outcome, COUNT(*) AS n FROM records "
            "GROUP BY campaign_id, outcome"):
        counts.setdefault(row["campaign_id"], {})[row["outcome"]] = row["n"]
    trend = []
    for campaign in warehouse.campaigns():
        outcomes = counts.get(campaign["campaign_id"], {})
        total = sum(outcomes.values())
        sdc = outcomes.get(Outcome.SDC.value, 0)
        low, high = wilson_interval(sdc, total, confidence=confidence) \
            if total else (0.0, 0.0)
        trend.append({
            "campaign_id": campaign["campaign_id"],
            "name": campaign["name"],
            "seed": campaign["seed"],
            "records": total,
            "sdc": sdc,
            "ser": sdc / total if total else 0.0,
            "low": low,
            "high": high,
        })
    return trend


def detection_latency_percentiles(
        warehouse: Warehouse, campaign=None,
        quantiles: tuple = (0.5, 0.9, 0.99)) -> dict:
    """Nearest-rank detection-latency percentiles, in cycles.

    Served by the partial index over ``detect_latency IS NOT NULL``:
    one COUNT plus one ``ORDER BY … LIMIT 1 OFFSET k`` probe per
    quantile, so a million-row store answers without a sort.
    """
    where, params = _campaign_clause(warehouse, campaign)
    where = f"{where} AND " if where else " WHERE "
    where += "detect_latency IS NOT NULL"
    conn = warehouse.connection
    total = conn.execute(
        f"SELECT COUNT(*) AS n FROM records{where}", params).fetchone()["n"]
    result = {"detected": total, "percentiles": {}}
    for quantile in quantiles:
        if not total:
            result["percentiles"][quantile] = None
            continue
        offset = min(total - 1, max(0, math.ceil(quantile * total) - 1))
        row = conn.execute(
            f"SELECT detect_latency FROM records{where} "
            f"ORDER BY detect_latency LIMIT 1 OFFSET ?",
            (*params, offset)).fetchone()
        result["percentiles"][quantile] = row["detect_latency"]
    return result


def fastpath_stats(warehouse: Warehouse) -> list[dict]:
    """Per-campaign fast-path hit rate, cycles saved and exit mix."""
    conn = warehouse.connection
    rows = {row["campaign_id"]: row for row in conn.execute(
        "SELECT campaign_id, COUNT(*) AS n, SUM(fastpath) AS hits, "
        "SUM(saved_cycles) AS saved FROM records GROUP BY campaign_id")}
    exits: dict[int, dict[str, int]] = {}
    for row in conn.execute(
            "SELECT campaign_id, fastpath_exit, COUNT(*) AS n FROM records "
            "WHERE fastpath_exit IS NOT NULL "
            "GROUP BY campaign_id, fastpath_exit"):
        exits.setdefault(row["campaign_id"], {})[row["fastpath_exit"]] = \
            row["n"]
    stats = []
    for campaign in warehouse.campaigns():
        row = rows.get(campaign["campaign_id"])
        if row is None:
            continue
        hits = row["hits"] or 0
        stats.append({
            "campaign_id": campaign["campaign_id"],
            "name": campaign["name"],
            "records": row["n"],
            "fastpath": hits,
            "hit_rate": hits / row["n"] if row["n"] else 0.0,
            "saved_cycles": row["saved"] or 0,
            "exits": exits.get(campaign["campaign_id"], {}),
        })
    return stats


def lease_health(warehouse: Warehouse) -> list[dict]:
    """Per-campaign lease/retry accounting from the ``.leases`` events."""
    counts: dict[int, dict[str, int]] = {}
    for row in warehouse.connection.execute(
            "SELECT campaign_id, event, COUNT(*) AS n FROM lease_events "
            "GROUP BY campaign_id, event"):
        counts.setdefault(row["campaign_id"], {})[row["event"]] = row["n"]
    health = []
    for campaign in warehouse.campaigns():
        events = counts.get(campaign["campaign_id"])
        if not events:
            continue
        health.append({
            "campaign_id": campaign["campaign_id"],
            "name": campaign["name"],
            "sessions": events.get("session", 0),
            "grants": events.get("grant", 0),
            "done": events.get("done", 0),
            "reclaims": events.get("reclaim", 0),
            "splits": events.get("split", 0),
            "fenced": events.get("fenced", 0),
        })
    return health


def convergence(warehouse: Warehouse, campaign=None, *,
                target_width: float = 0.02,
                confidence: float = 0.95) -> ConvergenceTracker:
    """Statistical convergence of the stored trials (§3 of the paper).

    Folds the (covering-index) per-unit outcome breakdown into a
    :class:`ConvergenceTracker`: per-(unit, outcome) Wilson interval
    widths and the trials still needed to reach ``target_width``.
    Because the tracker is a pure fold over counts, this matches the
    coordinator's live view exactly once the journal is fully ingested.
    """
    return ConvergenceTracker.from_counts(
        unit_outcomes(warehouse, campaign),
        target_width=target_width, confidence=confidence)


def span_phases(warehouse: Warehouse, campaign=None) -> list[dict]:
    """Per-phase span totals, answered from ``idx_spans_phase``.

    Wall-clock seconds here sum *span durations*, so nested phases
    overlap; :func:`campaign_critical_path` is the non-overlapping
    attribution.
    """
    where, params = _campaign_clause(warehouse, campaign)
    rows = warehouse.connection.execute(
        f"SELECT phase, COUNT(*) AS n, SUM(t1 - t0) AS seconds "
        f"FROM spans{where} GROUP BY phase ORDER BY seconds DESC", params)
    return [{"phase": row["phase"], "spans": row["n"],
             "seconds": row["seconds"] or 0.0} for row in rows]


def campaign_spans(warehouse: Warehouse, campaign) -> list[Span]:
    """One campaign's merged span tree, reconstructed from the store.

    ``spans`` is WITHOUT ROWID keyed on ``(campaign_id, span_id)``, so
    this is a primary-key range probe, never a full-table scan.
    """
    where, params = _campaign_clause(warehouse, campaign)
    if not where:
        raise WarehouseError("span trees are per-campaign; name one "
                             "(--campaign)")
    return [Span(span_id=row["span_id"], phase=row["phase"],
                 start=row["t0"], end=row["t1"],
                 parent_id=row["parent_id"], worker=row["worker"],
                 shard_id=row["shard_id"], token=row["token"])
            for row in warehouse.connection.execute(
                f"SELECT * FROM spans{where}", params)]


def campaign_critical_path(warehouse: Warehouse, campaign) -> dict:
    """Critical-path attribution of one campaign's wall-clock.

    Loads the stored span tree and charges each instant of the root
    ``campaign`` span to the deepest active phase
    (:func:`repro.obs.fleet.critical_path`); ``coverage`` is the
    fraction attributed to a named non-root phase — the acceptance
    bar keeps it at or above 0.95 for telemetry-enabled campaigns.
    """
    return critical_path(campaign_spans(warehouse, campaign))


def bounds_vs_measured(warehouse: Warehouse, campaign=None) -> list[dict]:
    """Static per-unit masking bounds joined against measured derating.

    Uses the most recently ingested structural sidecar
    (:meth:`Warehouse.ingest_structural`) and compares each unit's
    *proven* bound — the fraction of bits the analyzer guarantees mask —
    with the VANISHED fraction the store's records actually measured.
    ``ok`` is False exactly when the bound exceeds the measurement on a
    unit with trials, which is the warehouse-side restatement of the
    reconciliation gate's per-unit check.  Empty when no sidecar has
    been ingested.
    """
    conn = warehouse.connection
    sidecar = conn.execute(
        "SELECT sidecar_id, model_digest FROM structural_sidecars "
        "ORDER BY sidecar_id DESC LIMIT 1").fetchone()
    if sidecar is None:
        return []
    measured = unit_outcomes(warehouse, campaign)
    vanished = Outcome.VANISHED.value
    rows = []
    for bound in conn.execute(
            "SELECT * FROM structural_bounds WHERE sidecar_id=? "
            "ORDER BY unit", (sidecar["sidecar_id"],)):
        counts = measured.get(bound["unit"], {})
        trials = sum(counts.values())
        derating = counts.get(vanished, 0) / trials if trials else None
        rows.append({
            "sidecar_id": sidecar["sidecar_id"],
            "model_digest": sidecar["model_digest"],
            "unit": bound["unit"],
            "total_bits": bound["total_bits"],
            "proven_bits": bound["proven_bits"],
            "bound": bound["bound"],
            "structural_bound": bound["structural_bound"],
            "trials": trials,
            "measured_derating": round(derating, 6)
            if derating is not None else None,
            "ok": derating is None or bound["bound"] <= derating,
        })
    return rows


# ----------------------------------------------------------------------
# Plan hygiene: the latency budget rests on covering indexes.

#: Query name -> (SQL, must-cover).  ``must-cover`` queries fail
#: :func:`query_plans` strict mode unless SQLite reports a COVERING
#: INDEX (the latency probes may use the partial index non-covering —
#: they fetch one row — but must not scan the table).
_PLAN_QUERIES = {
    "unit_outcomes": (
        "SELECT unit, outcome, COUNT(*) FROM records GROUP BY unit, outcome",
        True),
    "unit_outcomes_campaign": (
        "SELECT unit, outcome, COUNT(*) FROM records WHERE campaign_id=1 "
        "GROUP BY unit, outcome", True),
    "ser_trend": (
        "SELECT campaign_id, outcome, COUNT(*) FROM records "
        "GROUP BY campaign_id, outcome", True),
    "latency_count": (
        "SELECT COUNT(*) FROM records WHERE detect_latency IS NOT NULL",
        True),
    "latency_probe": (
        "SELECT detect_latency FROM records WHERE detect_latency IS NOT "
        "NULL ORDER BY detect_latency LIMIT 1 OFFSET 10", True),
    "span_phases": (
        "SELECT phase, COUNT(*), SUM(t1 - t0) FROM spans "
        "WHERE campaign_id=1 GROUP BY phase", True),
}


def query_plans(warehouse: Warehouse) -> list[dict]:
    """EXPLAIN QUERY PLAN for each budgeted query.

    Returns ``{"name", "plan", "covering", "ok"}`` per query; ``ok`` is
    False when a must-cover query is not answered from a covering index
    (someone changed the schema or the SQL without keeping the indexes
    honest — the warehouse benchmark and CI both assert all-ok).
    """
    results = []
    for name, (sql, must_cover) in _PLAN_QUERIES.items():
        plan_rows = warehouse.connection.execute(
            f"EXPLAIN QUERY PLAN {sql}").fetchall()
        plan = "; ".join(row["detail"] for row in plan_rows)
        covering = "USING COVERING INDEX" in plan
        results.append({"name": name, "plan": plan, "covering": covering,
                        "ok": covering or not must_cover})
    return results


# ----------------------------------------------------------------------
# Text renderers (`repro-sfi query …`).

def render_campaigns(warehouse: Warehouse) -> str:
    lines = ["campaigns in the warehouse:"]
    for row in warehouse.campaigns():
        state = "complete" if row["complete"] else \
            f"{row['ingested_records']}/{row['total_sites'] or '?'}"
        lines.append(
            f"  [{row['campaign_id']}] {row['name']}  seed={row['seed']}  "
            f"records={row['ingested_records']}  {state}"
            + (f"  skipped={row['skipped_lines']}" if row["skipped_lines"]
               else ""))
    if len(lines) == 1:
        lines.append("  (none — `repro-sfi ingest <journal>` to add one)")
    return "\n".join(lines)


def render_unit_outcomes(breakdown: dict[str, dict[str, int]]) -> str:
    order = [outcome.value for outcome in OUTCOME_ORDER]
    header = f"{'unit':<10}" + "".join(f"{name:>16}" for name in order) \
        + f"{'total':>10}"
    lines = ["per-unit outcome breakdown:", header]
    for unit in sorted(breakdown):
        counts = breakdown[unit]
        total = sum(counts.values())
        lines.append(f"{unit:<10}"
                     + "".join(f"{counts.get(name, 0):>16}" for name in order)
                     + f"{total:>10}")
    return "\n".join(lines)


def render_ser_trend(trend: list[dict]) -> str:
    lines = ["cross-campaign SER (SDC fraction, 95% Wilson interval):"]
    for point in trend:
        lines.append(
            f"  [{point['campaign_id']}] {point['name']:<28} "
            f"{point['sdc']:>6}/{point['records']:<7} "
            f"SER {point['ser']:.4f}  "
            f"[{point['low']:.4f}, {point['high']:.4f}]")
    return "\n".join(lines)


def render_latency(result: dict) -> str:
    lines = [f"detection latency over {result['detected']} detected "
             f"injections:"]
    for quantile, value in result["percentiles"].items():
        shown = "n/a" if value is None else f"{value} cycles"
        lines.append(f"  p{int(quantile * 100):<3} {shown}")
    return "\n".join(lines)


def render_fastpath(stats: list[dict]) -> str:
    lines = ["fast-path hit rates:"]
    for point in stats:
        exits = "  ".join(f"{reason}: {count}" for reason, count
                          in sorted(point["exits"].items()))
        lines.append(
            f"  [{point['campaign_id']}] {point['name']:<28} "
            f"{point['fastpath']}/{point['records']} "
            f"({100 * point['hit_rate']:.1f}%)  "
            f"{point['saved_cycles']:,} cycles saved"
            + (f"  ({exits})" if exits else ""))
    return "\n".join(lines)


def render_bounds_vs_measured(rows: list[dict]) -> str:
    if not rows:
        return ("no structural sidecar in the warehouse "
                "(`repro-sfi bounds --db <store>` to ingest one)")
    lines = [f"static bound vs measured derating "
             f"(sidecar {rows[0]['sidecar_id']}, model "
             f"{rows[0]['model_digest']}):",
             f"{'unit':<6} {'bound':>7} {'struct':>7} {'measured':>9} "
             f"{'trials':>7}  verdict"]
    for row in rows:
        measured = ("n/a" if row["measured_derating"] is None
                    else f"{row['measured_derating']:.4f}")
        lines.append(
            f"{row['unit']:<6} {row['bound']:>7.3f} "
            f"{row['structural_bound']:>7.3f} {measured:>9} "
            f"{row['trials']:>7}  "
            f"{'ok' if row['ok'] else 'BOUND EXCEEDS MEASUREMENT'}")
    return "\n".join(lines)


def render_span_phases(phases: list[dict]) -> str:
    if not phases:
        return ("no spans in the warehouse (campaign ran without "
                "telemetry, or the .spans sidecar was not ingested)")
    lines = ["span totals by phase (durations overlap across depth):",
             f"{'phase':<16} {'spans':>7} {'seconds':>10}"]
    for row in phases:
        lines.append(f"{row['phase']:<16} {row['spans']:>7} "
                     f"{row['seconds']:>10.3f}")
    return "\n".join(lines)


def render_critical_path(result: dict) -> str:
    total = result.get("total", 0.0)
    if not total:
        return ("no campaign span tree stored for this campaign "
                "(run it with --telemetry and re-ingest)")
    lines = [f"critical path over {total:.3f}s wall-clock "
             f"({100 * result['coverage']:.1f}% attributed to named "
             f"phases):"]
    for phase, seconds in sorted(result["phases"].items(),
                                 key=lambda item: -item[1]):
        lines.append(f"  {phase:<16} {seconds:>10.3f}s  "
                     f"{100 * seconds / total:>5.1f}%")
    lines.append(f"  ({len(result['segments'])} timeline segments)")
    return "\n".join(lines)


def render_leases(health: list[dict]) -> str:
    if not health:
        return "no lease events in the warehouse (serial campaigns)"
    lines = ["lease/retry health:"]
    for point in health:
        lines.append(
            f"  [{point['campaign_id']}] {point['name']:<28} "
            f"sessions={point['sessions']} grants={point['grants']} "
            f"done={point['done']} reclaims={point['reclaims']} "
            f"splits={point['splits']} fenced={point['fenced']}")
    return "\n".join(lines)


def to_json(value) -> str:
    """Stable JSON for the CLI's ``--json`` paths."""
    return json.dumps(value, indent=2, sort_keys=True)
