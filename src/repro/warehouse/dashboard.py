"""`repro-sfi report`: a self-contained static HTML dashboard.

One HTML file, zero network fetches: styles are an inline ``<style>``
block (CSS custom properties, light and dark via
``prefers-color-scheme``), charts are inline SVG, there is no
JavaScript.  Output is deterministic for a given warehouse — no
timestamps, no randomness — so reports diff cleanly in CI artifacts.

Chart conventions follow the repo's dataviz ground rules: categorical
hues are assigned to the five outcome classes in one fixed slot order
(never cycled, never re-ranked), the SER trend reuses the SDC slot so
the entity keeps its color across charts, marks are thin with 2px
surface gaps between stacked segments, text always wears ink tokens,
and every series-colored chart is backed by a plain table so color
never carries meaning alone.
"""

from __future__ import annotations

import html

from repro.sfi.outcomes import OUTCOME_ORDER
from repro.warehouse.queries import (
    campaign_critical_path,
    convergence,
    detection_latency_percentiles,
    fastpath_stats,
    lease_health,
    ser_trend,
    unit_outcomes,
)

__all__ = ["render_dashboard"]

# Fixed categorical slot per outcome class (palette order, never cycled).
_OUTCOME_SLOT = {outcome.value: index + 1
                 for index, outcome in enumerate(OUTCOME_ORDER)}
_SDC_SLOT = _OUTCOME_SLOT["Bad Arch State"]

_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 24px;
  background: var(--page); color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  font-size: 14px; line-height: 1.45;
}
.viz-root {
  max-width: 960px; margin: 0 auto;
  --page:           #f9f9f7;
  --surface-1:      #fcfcfb;
  --text-primary:   #0b0b0b;
  --text-secondary: #52514e;
  --text-muted:     #898781;
  --grid:           #e1e0d9;
  --axis:           #c3c2b7;
  --border:         rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --series-4: #eda100; --series-5: #e87ba4;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    --page:           #0d0d0d;
    --surface-1:      #1a1a19;
    --text-primary:   #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted:     #898781;
    --grid:           #2c2c2a;
    --axis:           #383835;
    --border:         rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --series-4: #c98500; --series-5: #d55181;
  }
}
:root[data-theme="dark"] .viz-root {
  --page:           #0d0d0d;
  --surface-1:      #1a1a19;
  --text-primary:   #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted:     #898781;
  --grid:           #2c2c2a;
  --axis:           #383835;
  --border:         rgba(255,255,255,0.10);
  --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
  --series-4: #c98500; --series-5: #d55181;
}
body { background: var(--page); }
h1 { font-size: 20px; font-weight: 600; margin: 0 0 4px; }
h2 { font-size: 15px; font-weight: 600; margin: 0 0 2px; }
h3 { font-size: 13px; font-weight: 600; margin: 16px 0 4px; }
.subtitle { color: var(--text-secondary); margin: 0 0 20px; }
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 18px; margin: 0 0 16px;
}
.card .note { color: var(--text-secondary); margin: 0 0 10px; }
.tiles { display: flex; gap: 16px; flex-wrap: wrap; margin: 0 0 16px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 130px;
}
.tile .value { font-size: 26px; font-weight: 600; }
.tile .label { color: var(--text-secondary); font-size: 12px; }
.legend {
  display: flex; gap: 14px; flex-wrap: wrap;
  color: var(--text-secondary); font-size: 12px; margin: 8px 0 2px;
}
.legend .swatch {
  display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 5px; vertical-align: -1px;
}
svg text { font-family: inherit; }
table { border-collapse: collapse; width: 100%; }
th {
  text-align: left; color: var(--text-secondary); font-weight: 600;
  font-size: 12px; border-bottom: 1px solid var(--axis);
  padding: 4px 10px 4px 0;
}
td {
  border-bottom: 1px solid var(--grid); padding: 4px 10px 4px 0;
  font-variant-numeric: tabular-nums;
}
td.name { color: var(--text-primary); }
td.num { text-align: right; }
th.num { text-align: right; }
.muted { color: var(--text-muted); }
a { color: inherit; }
"""


def _fmt(value: float, digits: int = 4) -> str:
    return f"{value:.{digits}f}"


def _svg_text(x: float, y: float, content: str, *, fill: str,
              size: int = 11, anchor: str = "start",
              tabular: bool = False) -> str:
    style = "font-variant-numeric:tabular-nums;" if tabular else ""
    return (f'<text x="{x:.1f}" y="{y:.1f}" fill="{fill}" '
            f'font-size="{size}" text-anchor="{anchor}" '
            f'style="{style}">{html.escape(content)}</text>')


def _ser_trend_svg(trend: list[dict]) -> str:
    """SER per campaign with Wilson-interval whiskers (one series: the
    SDC entity keeps its categorical slot; points carry value labels)."""
    width, height = 920, 240
    left, right, top, bottom = 54, 16, 14, 38
    plot_w = width - left - right
    plot_h = height - top - bottom
    peak = max((point["high"] for point in trend), default=0.0)
    peak = max(peak, 0.01) * 1.15
    count = len(trend)

    def x_of(index: int) -> float:
        if count == 1:
            return left + plot_w / 2
        return left + plot_w * index / (count - 1)

    def y_of(value: float) -> float:
        return top + plot_h * (1 - value / peak)

    parts = [f'<svg viewBox="0 0 {width} {height}" role="img" '
             f'aria-label="SER per campaign with confidence intervals" '
             f'width="100%">']
    ticks = 4
    for tick in range(ticks + 1):
        value = peak * tick / ticks
        y = y_of(value)
        parts.append(f'<line x1="{left}" y1="{y:.1f}" x2="{width - right}" '
                     f'y2="{y:.1f}" stroke="var(--grid)" '
                     f'stroke-width="1"/>')
        parts.append(_svg_text(left - 8, y + 4, _fmt(value, 3),
                               fill="var(--text-muted)", size=10,
                               anchor="end", tabular=True))
    parts.append(f'<line x1="{left}" y1="{top + plot_h}" '
                 f'x2="{width - right}" y2="{top + plot_h}" '
                 f'stroke="var(--axis)" stroke-width="1"/>')
    points = []
    for index, point in enumerate(trend):
        x = x_of(index)
        y = y_of(point["ser"])
        y_low, y_high = y_of(point["low"]), y_of(point["high"])
        label = (f"{point['name']}: SER {_fmt(point['ser'])} "
                 f"[{_fmt(point['low'])}, {_fmt(point['high'])}] "
                 f"({point['sdc']}/{point['records']})")
        parts.append(
            f'<g><title>{html.escape(label)}</title>'
            f'<line x1="{x:.1f}" y1="{y_low:.1f}" x2="{x:.1f}" '
            f'y2="{y_high:.1f}" stroke="var(--series-{_SDC_SLOT})" '
            f'stroke-width="1.5" opacity="0.55"/>'
            f'<line x1="{x - 4:.1f}" y1="{y_high:.1f}" x2="{x + 4:.1f}" '
            f'y2="{y_high:.1f}" stroke="var(--series-{_SDC_SLOT})" '
            f'stroke-width="1.5" opacity="0.55"/>'
            f'<line x1="{x - 4:.1f}" y1="{y_low:.1f}" x2="{x + 4:.1f}" '
            f'y2="{y_low:.1f}" stroke="var(--series-{_SDC_SLOT})" '
            f'stroke-width="1.5" opacity="0.55"/>'
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" '
            f'fill="var(--series-{_SDC_SLOT})" stroke="var(--surface-1)" '
            f'stroke-width="2"/></g>')
        parts.append(_svg_text(x, y - 10, _fmt(point["ser"], 3),
                               fill="var(--text-secondary)", size=10,
                               anchor="middle", tabular=True))
        parts.append(_svg_text(x, top + plot_h + 16,
                               f"[{point['campaign_id']}]",
                               fill="var(--text-muted)", size=10,
                               anchor="middle"))
        points.append((x, y))
    if len(points) > 1:
        path = " ".join(f"{'M' if i == 0 else 'L'}{x:.1f},{y:.1f}"
                        for i, (x, y) in enumerate(points))
        parts.insert(len(parts) - 3 * len(points),
                     f'<path d="{path}" fill="none" '
                     f'stroke="var(--series-{_SDC_SLOT})" '
                     f'stroke-width="2"/>')
    parts.append(_svg_text(left, height - 6,
                           "campaign (ingest order) — hover a point for "
                           "the campaign name",
                           fill="var(--text-muted)", size=10))
    parts.append("</svg>")
    return "".join(parts)


def _unit_bars_svg(breakdown: dict[str, dict[str, int]]) -> str:
    """100%-stacked outcome mix per unit (2px surface gaps between
    segments; counts in the tooltip and in the drill-down table)."""
    order = [outcome.value for outcome in OUTCOME_ORDER]
    units = sorted(breakdown)
    width = 920
    row_h, gap = 22, 8
    left, right, top = 64, 70, 8
    height = top + len(units) * (row_h + gap) + 22
    plot_w = width - left - right
    parts = [f'<svg viewBox="0 0 {width} {height}" role="img" '
             f'aria-label="Per-unit outcome mix" width="100%">']
    for row, unit in enumerate(units):
        counts = breakdown[unit]
        total = sum(counts.values()) or 1
        y = top + row * (row_h + gap)
        parts.append(_svg_text(left - 8, y + row_h / 2 + 4, unit,
                               fill="var(--text-secondary)", size=11,
                               anchor="end"))
        x = float(left)
        for name in order:
            count = counts.get(name, 0)
            if not count:
                continue
            span = plot_w * count / total
            slot = _OUTCOME_SLOT[name]
            label = f"{unit} — {name}: {count} ({100 * count / total:.1f}%)"
            parts.append(
                f'<g><title>{html.escape(label)}</title>'
                f'<rect x="{x:.1f}" y="{y}" '
                f'width="{max(span - 2, 1):.1f}" height="{row_h}" rx="2" '
                f'fill="var(--series-{slot})"/></g>')
            x += span
        parts.append(_svg_text(left + plot_w + 8, y + row_h / 2 + 4,
                               f"{sum(counts.values()):,}",
                               fill="var(--text-muted)", size=10,
                               tabular=True))
    parts.append(_svg_text(left, height - 6,
                           "share of injections per unit; right column is "
                           "the unit total",
                           fill="var(--text-muted)", size=10))
    parts.append("</svg>")
    return "".join(parts)


def _legend(order: list[str]) -> str:
    items = "".join(
        f'<span><span class="swatch" '
        f'style="background:var(--series-{_OUTCOME_SLOT[name]})"></span>'
        f'{html.escape(name)}</span>' for name in order)
    return f'<div class="legend">{items}</div>'


def _unit_table(warehouse, breakdown: dict[str, dict[str, int]]) -> str:
    """Drill-down: one row per unit, linking to its provenance sample."""
    rows = []
    for unit in sorted(breakdown):
        counts = breakdown[unit]
        total = sum(counts.values())
        sdc = counts.get("Bad Arch State", 0)
        detail = warehouse.connection.execute(
            "SELECT detector, COUNT(*) AS n FROM records "
            "WHERE unit=? AND detector IS NOT NULL "
            "GROUP BY detector ORDER BY n DESC, detector LIMIT 1",
            (unit,)).fetchone()
        top_detector = detail["detector"] if detail else "—"
        chains = warehouse.connection.execute(
            "SELECT COUNT(*) AS n FROM provenance p JOIN records r "
            "ON r.campaign_id = p.campaign_id AND r.pos = p.pos "
            "WHERE r.unit=?", (unit,)).fetchone()["n"]
        link = (f'<a href="#prov-{html.escape(unit)}">{chains} chains</a>'
                if chains else '<span class="muted">none</span>')
        rows.append(
            f'<tr><td class="name">{html.escape(unit)}</td>'
            f'<td class="num">{total:,}</td>'
            f'<td class="num">{sdc:,}</td>'
            f'<td class="num">{_fmt(sdc / total if total else 0.0)}</td>'
            f'<td>{html.escape(top_detector)}</td>'
            f'<td class="num">{link}</td></tr>')
    return ('<table><thead><tr><th>unit</th><th class="num">records</th>'
            '<th class="num">SDC</th><th class="num">SER</th>'
            '<th>top detector</th><th class="num">provenance</th></tr>'
            '</thead><tbody>' + "".join(rows) + "</tbody></table>")


def _provenance_sections(warehouse, breakdown) -> str:
    """Per-unit provenance chain samples (anchors for the drill-down)."""
    sections = []
    for unit in sorted(breakdown):
        rows = warehouse.connection.execute(
            "SELECT r.campaign_id, r.pos, p.detector, p.detection_latency, "
            "p.peak_bits, p.edges FROM provenance p JOIN records r "
            "ON r.campaign_id = p.campaign_id AND r.pos = p.pos "
            "WHERE r.unit=? ORDER BY p.peak_bits DESC, r.campaign_id, "
            "r.pos LIMIT 5", (unit,)).fetchall()
        if not rows:
            continue
        body = "".join(
            f'<tr><td class="num">{row["campaign_id"]}</td>'
            f'<td class="num">{row["pos"]}</td>'
            f'<td>{html.escape(row["detector"] or "undetected")}</td>'
            f'<td class="num">{row["detection_latency"] if row["detection_latency"] is not None else "—"}</td>'
            f'<td class="num">{row["peak_bits"]}</td>'
            f'<td class="num">{row["edges"]}</td></tr>'
            for row in rows)
        sections.append(
            f'<h3 id="prov-{html.escape(unit)}">{html.escape(unit)} — '
            f'widest infections</h3>'
            f'<table><thead><tr><th class="num">campaign</th>'
            f'<th class="num">pos</th><th>detector</th>'
            f'<th class="num">latency (cyc)</th>'
            f'<th class="num">peak bits</th><th class="num">edges</th>'
            f'</tr></thead><tbody>{body}</tbody></table>')
    if not sections:
        return ""
    hint = ('<p class="note">replay any row with <code>repro-sfi explain '
            '&lt;pos&gt; --journal &lt;campaign journal&gt;</code> for the '
            'full propagation story.</p>')
    return f'<div class="card"><h2>Provenance chains</h2>{hint}' \
           + "".join(sections) + "</div>"


def _fastpath_table(stats: list[dict]) -> str:
    if not stats:
        return '<p class="note">no campaigns ingested yet.</p>'
    rows = "".join(
        f'<tr><td class="num">{point["campaign_id"]}</td>'
        f'<td class="name">{html.escape(point["name"])}</td>'
        f'<td class="num">{point["fastpath"]:,}/{point["records"]:,}</td>'
        f'<td class="num">{100 * point["hit_rate"]:.1f}%</td>'
        f'<td class="num">{point["saved_cycles"]:,}</td>'
        f'<td>{html.escape("  ".join(f"{k}: {v}" for k, v in sorted(point["exits"].items())) or "—")}</td></tr>'
        for point in stats)
    return ('<table><thead><tr><th class="num">id</th><th>campaign</th>'
            '<th class="num">fast-path hits</th><th class="num">hit rate'
            '</th><th class="num">cycles saved</th><th>early exits</th>'
            '</tr></thead><tbody>' + rows + "</tbody></table>")


def _lease_table(health: list[dict]) -> str:
    if not health:
        return ('<p class="note">no lease events — every ingested '
                'campaign ran serially.</p>')
    rows = "".join(
        f'<tr><td class="num">{point["campaign_id"]}</td>'
        f'<td class="name">{html.escape(point["name"])}</td>'
        f'<td class="num">{point["sessions"]}</td>'
        f'<td class="num">{point["grants"]}</td>'
        f'<td class="num">{point["done"]}</td>'
        f'<td class="num">{point["reclaims"]}</td>'
        f'<td class="num">{point["splits"]}</td>'
        f'<td class="num">{point["fenced"]}</td></tr>'
        for point in health)
    return ('<table><thead><tr><th class="num">id</th><th>campaign</th>'
            '<th class="num">sessions</th><th class="num">grants</th>'
            '<th class="num">done</th><th class="num">reclaims</th>'
            '<th class="num">splits</th><th class="num">fenced</th>'
            '</tr></thead><tbody>' + rows + "</tbody></table>")


def _convergence_table(tracker) -> str:
    rows_data = tracker.rows()
    if not rows_data:
        return '<p class="note">no records yet.</p>'
    rows = "".join(
        f'<tr><td class="name">{html.escape(row.unit)}</td>'
        f'<td>{html.escape(row.outcome)}</td>'
        f'<td class="num">{row.count:,}/{row.trials:,}</td>'
        f'<td class="num">{_fmt(row.proportion)}</td>'
        f'<td class="num">±{_fmt(row.width / 2)}</td>'
        f'<td class="num">{"—" if row.converged else f"{row.trials_needed:,}"}'
        f"</td></tr>"
        for row in rows_data)
    remaining = tracker.remaining_trials()
    summary = ("every tracked estimate is inside the target interval"
               if not remaining else
               f"≈{remaining:,} more trials to bring every estimate "
               f"inside ±{tracker.target_width / 2:.3f}")
    return ('<table><thead><tr><th>unit</th><th>outcome</th>'
            '<th class="num">count/trials</th><th class="num">p̂</th>'
            '<th class="num">CI half-width</th>'
            '<th class="num">trials needed</th></tr></thead><tbody>'
            + rows + "</tbody></table>"
            + f'<p class="note">{html.escape(summary)}.</p>')


def _critical_path_sections(warehouse) -> str:
    """Per-campaign wall-clock attribution from the stored span trees."""
    sections = []
    for campaign in warehouse.campaigns():
        result = campaign_critical_path(warehouse,
                                        campaign["campaign_id"])
        if not result["total"]:
            continue
        body = "".join(
            f'<tr><td class="name">{html.escape(phase)}</td>'
            f'<td class="num">{seconds:.3f}s</td>'
            f'<td class="num">{100 * seconds / result["total"]:.1f}%</td>'
            f"</tr>"
            for phase, seconds in sorted(result["phases"].items(),
                                         key=lambda item: -item[1]))
        sections.append(
            f'<h3>[{campaign["campaign_id"]}] '
            f'{html.escape(campaign["name"])} — '
            f'{result["total"]:.3f}s, '
            f'{100 * result["coverage"]:.1f}% attributed</h3>'
            f'<table><thead><tr><th>phase</th>'
            f'<th class="num">seconds</th><th class="num">share</th>'
            f"</tr></thead><tbody>{body}</tbody></table>")
    if not sections:
        return ""
    return ('<div class="card"><h2>Critical path</h2>'
            '<p class="note">campaign wall-clock charged to the deepest '
            'active fleet span (telemetry-enabled campaigns only).</p>'
            + "".join(sections) + "</div>")


def render_dashboard(warehouse, *, title: str = "SFI result warehouse") \
        -> str:
    """Render the whole store as one self-contained HTML page."""
    trend = ser_trend(warehouse)
    breakdown = unit_outcomes(warehouse)
    latency = detection_latency_percentiles(warehouse)
    fastpath = fastpath_stats(warehouse)
    leases = lease_health(warehouse)
    tracker = convergence(warehouse)
    records = sum(point["records"] for point in trend)
    sdc = sum(point["sdc"] for point in trend)
    outcome_order = [outcome.value for outcome in OUTCOME_ORDER]
    p50 = latency["percentiles"].get(0.5)
    tiles = [
        (f"{len(trend)}", "campaigns"),
        (f"{records:,}", "injection records"),
        (_fmt(sdc / records) if records else "—", "overall SER"),
        (f"{latency['detected']:,}", "detected faults"),
        (f"{p50}" if p50 is not None else "—", "p50 latency (cycles)"),
    ]
    tiles_html = "".join(
        f'<div class="tile"><div class="value">{value}</div>'
        f'<div class="label">{label}</div></div>'
        for value, label in tiles)
    doc = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style>",
        '</head><body><div class="viz-root">',
        f"<h1>{html.escape(title)}</h1>",
        f'<p class="subtitle">{html.escape(str(warehouse.path))} — '
        f"schema-checked, rendered offline; no external resources.</p>",
        f'<div class="tiles">{tiles_html}</div>',
        '<div class="card"><h2>Cross-campaign SER trend</h2>'
        '<p class="note">SDC fraction per campaign with 95% Wilson '
        "intervals — the paper's repeated-sampling confidence "
        "argument, across the fleet.</p>"
        + (_ser_trend_svg(trend) if trend else
           '<p class="note">ingest a journal to populate this chart.</p>')
        + "</div>",
        '<div class="card"><h2>Per-unit outcome mix</h2>'
        + _legend(outcome_order)
        + (_unit_bars_svg(breakdown) if breakdown else
           '<p class="note">no records yet.</p>'),
        "<h3>Drill-down</h3>"
        + (_unit_table(warehouse, breakdown) if breakdown else "")
        + "</div>",
        '<div class="card"><h2>Statistical convergence</h2>'
        '<p class="note">95% Wilson interval half-widths per '
        '(unit, outcome) estimate, and the trials still needed to reach '
        f'the ±{tracker.target_width / 2:.3f} target — the paper\'s '
        'stopping criterion, fleet-wide.</p>'
        + _convergence_table(tracker) + "</div>",
        _provenance_sections(warehouse, breakdown),
        _critical_path_sections(warehouse),
        '<div class="card"><h2>Fast-path hit rates</h2>'
        + _fastpath_table(fastpath) + "</div>",
        '<div class="card"><h2>Lease / retry health</h2>'
        + _lease_table(leases) + "</div>",
        "</div></body></html>",
    ]
    return "\n".join(part for part in doc if part)
