"""Synthetic campaign fixtures for warehouse tests, CI and benchmarks.

Two generators at two scales:

* :func:`write_fixture_journal` writes a real on-disk journal (plus
  optional ``.leases`` / ``.provenance`` sidecars and a torn tail) via
  the production :class:`CampaignJournal` writer — CI ingests a few of
  these and cross-checks the warehouse against a pure-Python fold over
  the same files.
* :func:`populate_synthetic_campaigns` bulk-inserts rows straight into
  a warehouse — the only practical way to stand up the million-record
  store the <1s query budget is asserted against.

Both are deterministic in ``seed``.  Outcome mixes drift with the
campaign index so the SER trend chart has a visible shape; unit and
latch-kind names match the real POWER6-style model.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

from repro.cpu.events import EventKind, MachineEvent
from repro.rtl.latch import LatchKind
from repro.sfi.outcomes import Outcome
from repro.sfi.results import InjectionRecord
from repro.sfi.storage import CampaignJournal, record_to_row

__all__ = [
    "populate_synthetic_campaigns",
    "synthetic_record",
    "write_fixture_journal",
]

_UNITS = ("IFU", "IDU", "FXU", "LSU", "FPU", "RUT", "CORE")
_RINGS = ("func", "regfile", "mode")
_KINDS = (LatchKind.FUNC, LatchKind.REGFILE, LatchKind.MODE, LatchKind.GPTR)
_DETECTORS = ("fxu_parity", "lsu_parity", "ifu_parity", "ecc_scrub",
              "hang_counter", "checkstop_collector")

# Base outcome weights; the SDC share is scaled per campaign so the
# cross-campaign SER trend is not flat.
_BASE_WEIGHTS = {
    Outcome.VANISHED: 58,
    Outcome.CORRECTED: 22,
    Outcome.HANG: 4,
    Outcome.CHECKSTOP: 6,
    Outcome.SDC: 10,
}


def _outcome_weights(campaign_index: int) -> tuple[list, list]:
    weights = dict(_BASE_WEIGHTS)
    # Hardening narrative: later campaigns mask more and corrupt less.
    weights[Outcome.SDC] = max(2, weights[Outcome.SDC] - 2 * campaign_index)
    weights[Outcome.VANISHED] += 2 * campaign_index
    return list(weights), list(weights.values())


def synthetic_record(rng: random.Random, site_index: int,
                     campaign_index: int = 0) -> InjectionRecord:
    """One plausible injection record (trace included)."""
    outcomes, weights = _outcome_weights(campaign_index)
    outcome = rng.choices(outcomes, weights)[0]
    unit = rng.choice(_UNITS)
    inject_cycle = rng.randrange(50, 1000)
    trace = [MachineEvent(inject_cycle, EventKind.INJECTION,
                          f"{unit}.lat{site_index} bit flip")]
    if outcome is Outcome.CORRECTED:
        latency = rng.randrange(1, 64)
        trace.append(MachineEvent(inject_cycle + latency,
                                  EventKind.CORRECTED_LOCAL,
                                  f"{rng.choice(_DETECTORS)} corrected"))
    elif outcome is Outcome.HANG:
        latency = rng.randrange(100, 400)
        trace.append(MachineEvent(inject_cycle + latency,
                                  EventKind.HANG_DETECTED,
                                  "hang_counter expired"))
    elif outcome is Outcome.CHECKSTOP:
        latency = rng.randrange(2, 120)
        trace.append(MachineEvent(inject_cycle + latency,
                                  EventKind.ERROR_DETECTED,
                                  f"{rng.choice(_DETECTORS)} mismatch"))
        trace.append(MachineEvent(inject_cycle + latency + 1,
                                  EventKind.CHECKSTOP,
                                  "checkstop_collector fired"))
    return InjectionRecord(
        site_index=site_index,
        site_name=f"{unit}.lat{site_index}",
        unit=unit,
        kind=rng.choice(_KINDS),
        ring=rng.choice(_RINGS),
        testcase_seed=rng.randrange(1 << 16),
        inject_cycle=inject_cycle,
        outcome=outcome,
        trace=tuple(trace),
    )


def write_fixture_journal(path: str | Path, *, seed: int, records: int,
                          campaign_index: int = 0,
                          population_bits: int = 25330,
                          fastpath: bool = True,
                          leases: bool = False,
                          provenance: bool = False,
                          torn_tail: bool = False) -> Path:
    """Write a complete synthetic campaign journal (and sidecars)."""
    path = Path(path)
    rng = random.Random(seed)
    journal = CampaignJournal.create(
        path, seed=seed, total_sites=records,
        population_bits=population_bits,
        meta={"fixture": True, "campaign_index": campaign_index})
    payloads = []
    with journal:
        for position in range(records):
            record = synthetic_record(rng, position, campaign_index)
            extra = None
            if fastpath and rng.random() < 0.5:
                extra = {"fastpath": {
                    "saved_cycles": rng.randrange(100, 1200),
                    "exit": rng.choice(("golden", "masked"))}}
            journal.append(position, record, extra=extra)
            if provenance and record.outcome is not Outcome.VANISHED:
                payloads.append((position, _provenance_payload(rng, record)))
    if torn_tail:
        with path.open("a") as handle:
            handle.write('{"pos": 999999, "rec')  # no newline: torn
    if leases:
        _write_fixture_leases(path.with_name(path.name + ".leases"),
                              rng, records)
    if provenance:
        _write_fixture_provenance(
            path.with_name(path.name + ".provenance"), payloads)
    return path


def _provenance_payload(rng: random.Random,
                        record: InjectionRecord) -> dict:
    detected = len(record.trace) > 1
    nodes = [f"latch:{record.site_name}"]
    edges = []
    for hop in range(rng.randrange(1, 5)):
        target = f"latch:{rng.choice(_UNITS)}.lat{rng.randrange(200)}"
        edges.append([nodes[-1], target])
        nodes.append(target)
    payload = {
        "pos_site": record.site_index,
        "nodes": nodes,
        "edges": edges,
        "peak_bits": rng.randrange(1, 12),
        "residual_tainted": 0 if detected else rng.randrange(0, 4),
        "detection": None,
    }
    if detected:
        event = record.trace[1]
        payload["detection"] = {
            "detector": event.detail.split(" ")[0],
            "cycle": event.cycle,
            "latency": event.cycle - record.inject_cycle,
        }
    return payload


def _write_fixture_leases(path: Path, rng: random.Random,
                          records: int) -> None:
    """A plausible coordinator lease log: grants covering the plan, one
    reclaim + re-grant, one fenced stale append."""
    events: list[dict] = [{"event": "session"}]
    token = 0
    shard = 0
    for start in range(0, records, max(1, records // 4)):
        token += 1
        shard += 1
        events.append({"event": "grant", "token": token, "shard": shard,
                       "worker": f"w{1 + shard % 2}", "attempt": 0,
                       "items": min(records - start, max(1, records // 4))})
        events.append({"event": "done", "token": token, "shard": shard})
    events.append({"event": "reclaim", "token": token, "shard": shard,
                   "worker": "w1", "reason": "heartbeat lost"})
    token += 1
    events.append({"event": "grant", "token": token, "shard": shard,
                   "worker": "w2", "attempt": 1, "items": 1})
    events.append({"event": "fenced", "token": token - 1,
                   "pos": rng.randrange(records)})
    events.append({"event": "done", "token": token, "shard": shard})
    with path.open("w") as handle:
        for event in events:
            handle.write(json.dumps(event, separators=(",", ":")) + "\n")


def _write_fixture_provenance(path: Path, payloads: list) -> None:
    header = {"format": 1, "kind": "sfi-provenance",
              "payloads": len(payloads)}
    with path.open("w") as handle:
        handle.write(json.dumps(header) + "\n")
        for position, payload in payloads:
            handle.write(json.dumps({"pos": position, "payload": payload})
                         + "\n")


def populate_synthetic_campaigns(warehouse, *, campaigns: int,
                                 records_per_campaign: int,
                                 seed: int = 0) -> int:
    """Bulk-insert synthetic rows for scale benchmarks.

    Bypasses JSON and journal files entirely (constructing a
    million-record journal just to parse it again would make the bench
    measure the generator); rows still go through the production
    :func:`record_to_row` flattening so column semantics cannot drift.
    Returns the number of rows inserted.
    """
    conn = warehouse.connection
    inserted = 0
    for index in range(campaigns):
        rng = random.Random(seed * 1000003 + index)
        name = f"synthetic-{seed}-{index}"
        conn.execute("BEGIN IMMEDIATE")
        conn.execute(
            "INSERT INTO campaigns (name, journal_path, kind, seed, "
            "total_sites, population_bits, ingested_records, complete) "
            "VALUES (?, ?, 'sfi-journal', ?, ?, 25330, ?, 1)",
            (name, f"<synthetic:{name}>", seed + index,
             records_per_campaign, records_per_campaign))
        campaign_id = conn.execute(
            "SELECT campaign_id FROM campaigns WHERE name=?",
            (name,)).fetchone()["campaign_id"]
        rows = []
        for position in range(records_per_campaign):
            record = synthetic_record(rng, position, index)
            fast = rng.random() < 0.5
            rows.append((campaign_id, position, *record_to_row(record),
                         1 if fast else 0,
                         rng.choice(("golden", "masked")) if fast else None,
                         rng.randrange(100, 1200) if fast else 0))
            if len(rows) >= 20000:
                conn.executemany(
                    "INSERT INTO records VALUES "
                    "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)", rows)
                inserted += len(rows)
                rows.clear()
        if rows:
            conn.executemany(
                "INSERT INTO records VALUES "
                "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)", rows)
            inserted += len(rows)
        conn.execute("COMMIT")
    return inserted
