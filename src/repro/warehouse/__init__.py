"""Result warehouse: a queryable cross-campaign store.

Campaign journals are append-only evidence; the warehouse is the
queryable view over a fleet of them (see DESIGN.md "Result warehouse").
`repro-sfi ingest` loads finished journals, `JournalTailer` streams a
live one by byte offset, `repro-sfi query` answers the paper's
aggregate questions in constant-ish time at millions of records, and
`repro-sfi report` renders the self-contained HTML dashboard.

Dependency-free by construction: SQLite via the standard library, no
ORM, no external JS/CSS in the report.
"""

from repro.warehouse.dashboard import render_dashboard
from repro.warehouse.fixture import (
    populate_synthetic_campaigns,
    write_fixture_journal,
)
from repro.warehouse.queries import (
    bounds_vs_measured,
    detection_latency_percentiles,
    fastpath_stats,
    lease_health,
    outcome_totals,
    query_plans,
    ser_trend,
    unit_outcomes,
)
from repro.warehouse.schema import (
    SCHEMA_FINGERPRINT,
    SCHEMA_VERSION,
    compute_fingerprint,
)
from repro.warehouse.store import (
    IngestStats,
    JournalTailer,
    Warehouse,
    WarehouseError,
)

__all__ = [
    "SCHEMA_FINGERPRINT",
    "SCHEMA_VERSION",
    "IngestStats",
    "JournalTailer",
    "Warehouse",
    "WarehouseError",
    "bounds_vs_measured",
    "compute_fingerprint",
    "detection_latency_percentiles",
    "fastpath_stats",
    "lease_health",
    "outcome_totals",
    "populate_synthetic_campaigns",
    "query_plans",
    "render_dashboard",
    "ser_trend",
    "unit_outcomes",
    "write_fixture_journal",
]
