"""Warehouse schema: versioned DDL plus its integrity fingerprint.

One SQLite file holds many campaigns.  The schema is deliberately
denormalized around the two questions the paper asks at scale — per-unit
outcome mixes and SDC (SER) fractions with confidence intervals — so
both answer from covering indexes without touching the base table.
Version 2 adds the structural-analysis side: ``structural_sidecars`` /
``structural_bounds`` hold the latch-graph sidecar and its per-unit
static masking bounds (joinable against measured outcomes), and
campaigns carry the journal cursor's tail checksum (``journal_check``)
so shrink-then-grow rewrites are detected across warehouse restarts.
Version 3 adds the ``spans`` table for fleet telemetry (the merged
cross-host span tree written to ``<journal>.spans``), with a covering
index over ``(campaign_id, phase, t0, t1)`` so the critical-path and
phase-total queries never touch the base table.  Span times are stored
as ``t0``/``t1`` seconds in the coordinator's monotonic domain — only
differences are meaningful, never absolute values.

Versioning contract: ``SCHEMA_VERSION`` names the on-disk layout and is
stored in ``warehouse_meta``; a store created by a different version is
refused (no silent migration).  ``SCHEMA_FINGERPRINT`` binds the version
to the exact DDL text — lint rule REPRO-S01 recomputes it from source,
so any DDL edit that forgets to bump the version (and refresh the
fingerprint) fails `repro-sfi lint`.
"""

from __future__ import annotations

import hashlib

__all__ = [
    "SCHEMA_DDL",
    "SCHEMA_FINGERPRINT",
    "SCHEMA_VERSION",
    "compute_fingerprint",
]

SCHEMA_VERSION = 3

# One statement per entry, executed in order on an empty store.  The
# ``records`` table carries the columns of
# ``repro.sfi.storage.RECORD_ROW_FIELDS`` in that order (between the
# ``campaign_id``/``pos`` key and the fast-path sidecar columns);
# changing either side is a SCHEMA_VERSION bump.
SCHEMA_DDL = (
    """
    CREATE TABLE warehouse_meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    ) WITHOUT ROWID
    """,
    """
    CREATE TABLE campaigns (
        campaign_id      INTEGER PRIMARY KEY,
        name             TEXT NOT NULL UNIQUE,
        journal_path     TEXT NOT NULL,
        kind             TEXT NOT NULL,
        seed             INTEGER,
        total_sites      INTEGER NOT NULL DEFAULT 0,
        population_bits  INTEGER NOT NULL DEFAULT 0,
        meta_json        TEXT,
        journal_offset   INTEGER NOT NULL DEFAULT 0,
        journal_line     INTEGER NOT NULL DEFAULT 0,
        journal_check    TEXT NOT NULL DEFAULT '',
        ingested_records INTEGER NOT NULL DEFAULT 0,
        skipped_lines    INTEGER NOT NULL DEFAULT 0,
        complete         INTEGER NOT NULL DEFAULT 0
    )
    """,
    """
    CREATE TABLE records (
        campaign_id    INTEGER NOT NULL,
        pos            INTEGER NOT NULL,
        site_index     INTEGER NOT NULL,
        site_name      TEXT NOT NULL,
        unit           TEXT NOT NULL,
        kind           TEXT NOT NULL,
        ring           TEXT NOT NULL,
        testcase_seed  INTEGER NOT NULL,
        inject_cycle   INTEGER NOT NULL,
        outcome        TEXT NOT NULL,
        trace_events   INTEGER NOT NULL,
        detector       TEXT,
        detect_latency INTEGER,
        fastpath       INTEGER NOT NULL DEFAULT 0,
        fastpath_exit  TEXT,
        saved_cycles   INTEGER NOT NULL DEFAULT 0,
        PRIMARY KEY (campaign_id, pos)
    ) WITHOUT ROWID
    """,
    """
    CREATE INDEX idx_records_campaign_unit_outcome
        ON records (campaign_id, unit, outcome)
    """,
    """
    CREATE INDEX idx_records_unit_outcome
        ON records (unit, outcome)
    """,
    """
    CREATE INDEX idx_records_campaign_outcome
        ON records (campaign_id, outcome)
    """,
    """
    CREATE INDEX idx_records_campaign_latency
        ON records (campaign_id, detect_latency)
        WHERE detect_latency IS NOT NULL
    """,
    """
    CREATE INDEX idx_records_latency
        ON records (detect_latency)
        WHERE detect_latency IS NOT NULL
    """,
    """
    CREATE TABLE lease_events (
        campaign_id INTEGER NOT NULL,
        seq         INTEGER NOT NULL,
        event       TEXT NOT NULL,
        token       INTEGER,
        shard       INTEGER,
        worker      TEXT,
        payload     TEXT NOT NULL,
        PRIMARY KEY (campaign_id, seq)
    ) WITHOUT ROWID
    """,
    """
    CREATE INDEX idx_lease_events_kind
        ON lease_events (campaign_id, event)
    """,
    """
    CREATE TABLE structural_sidecars (
        sidecar_id    INTEGER PRIMARY KEY,
        model_digest  TEXT NOT NULL,
        suite_seed    INTEGER NOT NULL,
        suite_size    INTEGER NOT NULL,
        settle_cycles INTEGER NOT NULL DEFAULT 0,
        latches       INTEGER NOT NULL DEFAULT 0,
        edges         INTEGER NOT NULL DEFAULT 0,
        payload       TEXT NOT NULL,
        UNIQUE (model_digest, suite_seed, suite_size)
    )
    """,
    """
    CREATE TABLE structural_bounds (
        sidecar_id       INTEGER NOT NULL,
        unit             TEXT NOT NULL,
        total_bits       INTEGER NOT NULL,
        proven_bits      INTEGER NOT NULL,
        structural_bits  INTEGER NOT NULL,
        latches          INTEGER NOT NULL,
        proven_latches   INTEGER NOT NULL,
        bound            REAL NOT NULL,
        structural_bound REAL NOT NULL,
        PRIMARY KEY (sidecar_id, unit)
    ) WITHOUT ROWID
    """,
    """
    CREATE TABLE spans (
        campaign_id INTEGER NOT NULL,
        span_id     TEXT NOT NULL,
        parent_id   TEXT,
        phase       TEXT NOT NULL,
        t0          REAL NOT NULL,
        t1          REAL NOT NULL,
        worker      TEXT NOT NULL DEFAULT '',
        shard_id    INTEGER NOT NULL DEFAULT -1,
        token       INTEGER NOT NULL DEFAULT -1,
        PRIMARY KEY (campaign_id, span_id)
    ) WITHOUT ROWID
    """,
    """
    CREATE INDEX idx_spans_phase
        ON spans (campaign_id, phase, t0, t1)
    """,
    """
    CREATE TABLE provenance (
        campaign_id       INTEGER NOT NULL,
        pos               INTEGER NOT NULL,
        detector          TEXT,
        detection_latency INTEGER,
        peak_bits         INTEGER NOT NULL DEFAULT 0,
        residual_tainted  INTEGER NOT NULL DEFAULT 0,
        nodes             INTEGER NOT NULL DEFAULT 0,
        edges             INTEGER NOT NULL DEFAULT 0,
        PRIMARY KEY (campaign_id, pos)
    ) WITHOUT ROWID
    """,
)


def compute_fingerprint(version: int = SCHEMA_VERSION,
                        ddl: tuple = SCHEMA_DDL) -> str:
    """Whitespace-insensitive digest binding a version to its DDL.

    Mirrored verbatim by lint rule REPRO-S01 (repro/lint/rules_ast.py),
    which recomputes it from the AST of this file — keep the two in
    sync, or rather: don't change this algorithm.
    """
    blob = "\n".join([str(version), *(" ".join(s.split()) for s in ddl)])
    return "sha256:" + hashlib.sha256(blob.encode()).hexdigest()[:16]


# Refreshing this constant is deliberate friction: REPRO-S01 fails when
# it is stale, and the paired test asserts SCHEMA_VERSION moved with it.
SCHEMA_FINGERPRINT = "sha256:117bcb47ec18bf5c"
