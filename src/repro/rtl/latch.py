"""Latch primitives.

Every storage bit in the modelled core lives in a :class:`Latch`.  Latches
are typed the way the paper's Figure 5 classifies them:

* ``FUNC``    - pipeline / control latches, written by functional logic,
* ``REGFILE`` - register-file latches,
* ``MODE``    - scan-only configuration latches (persistent mode settings),
* ``GPTR``    - scan-only general-purpose test register latches.

Parity-protected latches maintain a parity shadow that legitimate writes
keep consistent; a fault injection flips value bits *without* updating the
shadow, which is exactly how a particle strike breaks an implemented parity
scheme.  Checkers compare the shadow against the value when (and only when)
the latch is consumed, so faults that are overwritten before use vanish.
"""

from __future__ import annotations

import enum


class LatchKind(enum.Enum):
    """Latch categories from the paper's Figure 5."""

    FUNC = "FUNC"
    REGFILE = "REGFILE"
    MODE = "MODE"
    GPTR = "GPTR"


class Latch:
    """A multi-bit latch (a hardware register of ``width`` bits)."""

    __slots__ = ("name", "width", "kind", "protected", "ring", "value", "par",
                 "mask", "reset_value")

    def __init__(self, name: str, width: int, kind: LatchKind = LatchKind.FUNC,
                 protected: bool = False, ring: str = "", reset_value: int = 0) -> None:
        if width < 1:
            raise ValueError(f"latch {name!r}: width must be >= 1, got {width}")
        self.name = name
        self.width = width
        self.kind = kind
        self.protected = protected
        self.ring = ring or kind.value
        self.mask = (1 << width) - 1
        self.reset_value = reset_value & self.mask
        self.value = self.reset_value
        self.par = self.reset_value.bit_count() & 1

    def write(self, value: int) -> None:
        """Functional write: updates the value and its parity shadow."""
        value &= self.mask
        self.value = value
        if self.protected:
            self.par = value.bit_count() & 1

    def read(self) -> int:
        """Functional read (no checking; checkers call :meth:`parity_ok`)."""
        return self.value

    def parity_ok(self) -> bool:
        """True when the parity shadow matches the current value.

        Unprotected latches always report OK (no checker hardware exists).
        """
        if not self.protected:
            return True
        return (self.value.bit_count() & 1) == self.par

    def flip(self, bit: int) -> None:
        """Fault injection: flip one bit without touching the shadow."""
        if not 0 <= bit < self.width:
            raise ValueError(f"latch {self.name!r}: bit {bit} out of range")
        self.value ^= 1 << bit

    def force_bit(self, bit: int, level: int) -> None:
        """Fault injection (sticky mode): drive one bit to ``level``."""
        if level:
            self.value |= 1 << bit
        else:
            self.value &= ~(1 << bit) & self.mask

    def bit(self, bit: int) -> int:
        """Current level of one bit."""
        return (self.value >> bit) & 1

    def write_bit(self, bit: int, level: int) -> None:
        """Functional write of one bit (parity shadow kept consistent).

        Consumers that own a bit-indexed latch (scoreboards, valid masks)
        write through here instead of a read-modify-write of ``value``,
        which lets tracing subclasses account the access to the single
        bit actually driven rather than the whole latch.  The base
        implementation routes through the ``value`` attribute, so plain
        touch tracing still sees a conservative whole-latch access.
        """
        value = self.value
        if level:
            value |= 1 << bit
        else:
            value &= ~(1 << bit) & self.mask
        self.value = value
        if self.protected:
            self.par = value.bit_count() & 1

    def reset(self) -> None:
        """Hardware reset: restore the reset value with consistent parity."""
        self.value = self.reset_value
        self.par = self.reset_value.bit_count() & 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Latch({self.name!r}, width={self.width}, kind={self.kind.value}, "
                f"value=0x{self.value:x})")


def make_bank(name: str, count: int, width: int, kind: LatchKind = LatchKind.FUNC,
              protected: bool = False, ring: str = "") -> list[Latch]:
    """Create ``count`` identically shaped latches named ``name[i]``."""
    return [Latch(f"{name}[{i}]", width, kind, protected, ring) for i in range(count)]
