"""Scan-ring bookkeeping.

POWER-class designs organise latches into scan rings that test equipment
(and the emulator's communication host) shifts through for access.  The
paper's Figure 5 samples "approximately 10% of the latches in each scan
chain"; this module groups the design's latches into those rings.
"""

from __future__ import annotations

from collections import defaultdict

from repro.rtl.latch import Latch


class ScanRing:
    """A named ring of latches, accessible in shift order."""

    def __init__(self, name: str, latches: list[Latch] | None = None) -> None:
        self.name = name
        self.latches: list[Latch] = list(latches) if latches else []

    def add(self, latch: Latch) -> None:
        self.latches.append(latch)

    def bit_count(self) -> int:
        return sum(latch.width for latch in self.latches)

    def shift_out(self) -> list[int]:
        """Read the whole ring as a bit vector (LSB of each latch first)."""
        bits = []
        for latch in self.latches:
            value = latch.value
            bits.extend((value >> i) & 1 for i in range(latch.width))
        return bits

    def shift_in(self, bits: list[int]) -> None:
        """Load the whole ring from a bit vector produced by shift_out."""
        if len(bits) != self.bit_count():
            raise ValueError(
                f"ring {self.name!r}: expected {self.bit_count()} bits, got {len(bits)}")
        pos = 0
        for latch in self.latches:
            value = 0
            for i in range(latch.width):
                value |= bits[pos] << i
                pos += 1
            latch.write(value)

    def __len__(self) -> int:
        return len(self.latches)


def build_rings(latches: list[Latch]) -> dict[str, ScanRing]:
    """Group latches into scan rings by their declared ring name."""
    grouped: dict[str, list[Latch]] = defaultdict(list)
    for latch in latches:
        grouped[latch.ring].append(latch)
    return {name: ScanRing(name, members) for name, members in grouped.items()}
