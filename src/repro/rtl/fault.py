"""Fault-site addressing and injection modes.

A *fault site* is one bit of one latch — the granularity at which the paper
flips state ("fault injection into arbitrary latches ... the fault may
exist for the duration of a cycle (toggle mode) or for a larger number of
cycles (sticky mode)").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.rtl.latch import Latch


class InjectionMode(enum.Enum):
    """How long the injected fault is driven.

    TOGGLE flips the bit once and lets the logic evolve it; STICKY forces
    the flipped level for a number of cycles (modelling e.g. a stuck node),
    re-asserting it even if functional logic rewrites the latch.
    """

    TOGGLE = "toggle"
    STICKY = "sticky"


@dataclass(frozen=True)
class FaultSite:
    """One injectable bit: ``latch`` plus a bit index within it.

    ``bit == latch.width`` addresses the latch's *parity bit* (protected
    latches physically carry one more storage bit; it upsets like any
    other, producing a detected-but-harmless error when consumed).
    """

    latch: Latch
    bit: int

    def __post_init__(self) -> None:
        limit = self.latch.width + (1 if self.latch.protected else 0)
        if not 0 <= self.bit < limit:
            raise ValueError(
                f"bit {self.bit} out of range for latch {self.latch.name!r}")

    @property
    def is_parity_bit(self) -> bool:
        return self.bit == self.latch.width

    @property
    def name(self) -> str:
        suffix = "p" if self.is_parity_bit else str(self.bit)
        return f"{self.latch.name}.{suffix}"

    def inject(self) -> int:
        """Flip the bit; returns the *new* level (used to hold sticky faults)."""
        if self.is_parity_bit:
            self.latch.par ^= 1
            return self.latch.par
        self.latch.flip(self.bit)
        return self.latch.bit(self.bit)

    def hold(self, level: int) -> None:
        """Re-assert ``level`` on the bit (sticky mode)."""
        if self.is_parity_bit:
            self.latch.par = level
        else:
            self.latch.force_bit(self.bit, level)

    def current(self) -> int:
        if self.is_parity_bit:
            return self.latch.par
        return self.latch.bit(self.bit)


def expand_sites(latches: list[Latch], include_parity: bool = True) -> list[FaultSite]:
    """Every injectable (latch, bit) pair, declaration order.

    Protected latches contribute one extra site for their parity bit when
    ``include_parity`` is set.
    """
    sites = []
    for latch in latches:
        for bit in range(latch.width):
            sites.append(FaultSite(latch, bit))
        if include_parity and latch.protected:
            sites.append(FaultSite(latch, latch.width))
    return sites
