"""Hardware module hierarchy.

Units of the core subclass :class:`HwModule`; every latch they declare is
registered so that the emulator can build a flat latch map (the "netlist")
covering the whole design — the population the paper samples from.
"""

from __future__ import annotations

from repro.rtl.latch import Latch, LatchKind


class HwModule:
    """Base class for hardware units; owns a set of named latches."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._latches: list[Latch] = []
        self._children: list[HwModule] = []

    def add_latch(self, local_name: str, width: int,
                  kind: LatchKind = LatchKind.FUNC, protected: bool = False,
                  ring: str = "", reset_value: int = 0) -> Latch:
        """Declare and register one latch owned by this module."""
        latch = Latch(f"{self.name}.{local_name}", width, kind, protected,
                      ring, reset_value)
        self._latches.append(latch)
        return latch

    def add_bank(self, local_name: str, count: int, width: int,
                 kind: LatchKind = LatchKind.FUNC, protected: bool = False,
                 ring: str = "") -> list[Latch]:
        """Declare a bank of ``count`` identically shaped latches."""
        bank = []
        for i in range(count):
            bank.append(self.add_latch(f"{local_name}[{i}]", width, kind,
                                       protected, ring))
        return bank

    def add_child(self, child: "HwModule") -> "HwModule":
        """Attach a sub-module; its latches are included in iteration."""
        self._children.append(child)
        return child

    def local_latches(self) -> list[Latch]:
        """Latches declared directly on this module."""
        return list(self._latches)

    def all_latches(self) -> list[Latch]:
        """All latches in this module and its children, declaration order."""
        result = list(self._latches)
        for child in self._children:
            result.extend(child.all_latches())
        return result

    def latch_bits(self) -> int:
        """Total number of latch *bits* owned by this subtree."""
        return sum(latch.width for latch in self.all_latches())

    def reset_latches(self) -> None:
        """Reset every latch in the subtree to its declared reset value."""
        for latch in self.all_latches():
            latch.reset()
