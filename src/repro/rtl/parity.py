"""Parity and SEC-DED ECC codecs.

The pipeline and register-file latches of the modelled core are parity
protected (as on POWER6); the recovery unit's architected-state checkpoint
is protected by a real Hamming SEC-DED code so that single-bit upsets in
the checkpoint are correctable while double-bit upsets force a checkstop.
"""

from __future__ import annotations

import enum

_DATA_BITS = 32
_CHECK_BITS = 6  # Hamming check bits for 32 data bits (positions 1..38)
_OVERALL_BIT = 1 << _CHECK_BITS  # extended parity bit for DED


def parity(value: int) -> int:
    """Even parity of an arbitrary-width integer (0 or 1)."""
    return value.bit_count() & 1


def _build_positions() -> list[int]:
    """Codeword positions (1-based) used for the 32 data bits.

    Powers of two are reserved for check bits; everything else carries data.
    """
    positions = []
    pos = 1
    while len(positions) < _DATA_BITS:
        if pos & (pos - 1):  # not a power of two
            positions.append(pos)
        pos += 1
    return positions


_DATA_POSITIONS = _build_positions()

# _CHECK_MASKS[i] = mask over *data bits* covered by check bit i.
_CHECK_MASKS = []
for _i in range(_CHECK_BITS):
    _mask = 0
    for _bit, _pos in enumerate(_DATA_POSITIONS):
        if _pos & (1 << _i):
            _mask |= 1 << _bit
    _CHECK_MASKS.append(_mask)

# Map from syndrome value -> data-bit index (for single-bit correction).
_SYNDROME_TO_DATA_BIT = {pos: bit for bit, pos in enumerate(_DATA_POSITIONS)}


class EccStatus(enum.Enum):
    """Result of an ECC decode."""

    OK = "ok"
    CORRECTED = "corrected"
    UNCORRECTABLE = "uncorrectable"


def ecc_encode(data: int) -> int:
    """Compute the 7-bit check field (6 Hamming bits + overall parity)."""
    data &= (1 << _DATA_BITS) - 1
    check = 0
    for i, mask in enumerate(_CHECK_MASKS):
        check |= parity(data & mask) << i
    overall = parity(data) ^ parity(check)
    return check | (overall << _CHECK_BITS)


def ecc_decode(data: int, check: int) -> tuple[int, int, EccStatus]:
    """Decode a (data, check) pair.

    Returns ``(corrected_data, corrected_check, status)``.  Single-bit
    errors anywhere in the codeword are corrected; double-bit errors are
    flagged uncorrectable.
    """
    data &= (1 << _DATA_BITS) - 1
    check &= (1 << (_CHECK_BITS + 1)) - 1
    syndrome = 0
    for i, mask in enumerate(_CHECK_MASKS):
        if parity(data & mask) != ((check >> i) & 1):
            syndrome |= 1 << i
    overall_ok = (parity(data) ^ parity(check & (_OVERALL_BIT - 1))
                  ^ ((check >> _CHECK_BITS) & 1)) == 0

    if syndrome == 0 and overall_ok:
        return data, check, EccStatus.OK
    if syndrome == 0 and not overall_ok:
        # Error in the overall parity bit itself: correctable.
        return data, check ^ _OVERALL_BIT, EccStatus.CORRECTED
    if not overall_ok:
        # Odd number of flipped bits with a nonzero syndrome: single-bit.
        if syndrome in _SYNDROME_TO_DATA_BIT:
            return data ^ (1 << _SYNDROME_TO_DATA_BIT[syndrome]), check, EccStatus.CORRECTED
        if syndrome & (syndrome - 1) == 0:
            # Syndrome is a power of two: the flipped bit is a check bit.
            check_bit = syndrome.bit_length() - 1
            return data, check ^ (1 << check_bit), EccStatus.CORRECTED
        return data, check, EccStatus.UNCORRECTABLE
    # Even number of errors with nonzero syndrome: uncorrectable double.
    return data, check, EccStatus.UNCORRECTABLE
