"""Latch-level RTL modelling framework: typed latches with parity shadows,
module hierarchy, scan rings, SEC-DED ECC, and fault-site addressing."""

from repro.rtl.fault import FaultSite, InjectionMode, expand_sites
from repro.rtl.latch import Latch, LatchKind, make_bank
from repro.rtl.module import HwModule
from repro.rtl.parity import EccStatus, ecc_decode, ecc_encode, parity
from repro.rtl.scanchain import ScanRing, build_rings

__all__ = [
    "EccStatus",
    "FaultSite",
    "HwModule",
    "InjectionMode",
    "Latch",
    "LatchKind",
    "ScanRing",
    "build_rings",
    "ecc_decode",
    "ecc_encode",
    "expand_sites",
    "make_bank",
    "parity",
]
