"""Targeted injection studies.

The "what-if" modes §3 of the paper demonstrates: focused injection into
one micro-architectural unit (Figure 3), into each latch type / scan ring
(Figure 5), and checker-masking studies (Table 3).
"""

from __future__ import annotations

import random

from repro.rtl.latch import LatchKind

from repro.sfi.campaign import SfiExperiment
from repro.sfi.results import CampaignResult
from repro.sfi.sampling import kind_sample, ring_fraction_sample, unit_sample


def per_unit_campaigns(experiment: SfiExperiment, flips_per_unit: int,
                       seed: int = 0,
                       units: list[str] | None = None) -> dict[str, CampaignResult]:
    """Figure 3: inject ``flips_per_unit`` bit flips into each unit."""
    latch_map = experiment.latch_map
    results: dict[str, CampaignResult] = {}
    for unit in units or latch_map.units():
        rng = random.Random(f"{seed}:{unit}")
        sites = unit_sample(latch_map, unit, flips_per_unit, rng)
        results[unit] = experiment.run_campaign(sites, seed=rng.randrange(1 << 30))
    return results


def per_kind_campaigns(experiment: SfiExperiment, flips_per_kind: int,
                       seed: int = 0) -> dict[LatchKind, CampaignResult]:
    """Figure 5 variant: equal-count samples of each latch type."""
    latch_map = experiment.latch_map
    results: dict[LatchKind, CampaignResult] = {}
    for kind in LatchKind:
        rng = random.Random(f"{seed}:{kind.value}")
        sites = kind_sample(latch_map, kind, flips_per_kind, rng)
        results[kind] = experiment.run_campaign(sites, seed=rng.randrange(1 << 30))
    return results


def macro_campaign(experiment: SfiExperiment, name_prefix: str,
                   trials_per_site: int = 3, seed: int = 0,
                   max_sites: int | None = None) -> CampaignResult:
    """What-if resilience of one specific circuit/macro.

    "The calculation speed allows what-if questions concerning the
    resilience of specific circuits, macros, or units within a design."
    Every injectable bit whose hierarchical name starts with
    ``name_prefix`` (e.g. ``"rut.cmt"`` for the commit datapath, or
    ``"lsu.derat"``) is injected ``trials_per_site`` times at independent
    random cycles, giving per-macro outcome statistics far denser than a
    whole-core sample could.
    """
    latch_map = experiment.latch_map
    sites = [index for index in latch_map.all_indices()
             if latch_map.site(index).name.startswith(name_prefix)]
    if not sites:
        raise KeyError(f"no latch bits match prefix {name_prefix!r}")
    if max_sites is not None:
        sites = sites[:max_sites]
    rng = random.Random(f"macro:{seed}:{name_prefix}")
    plan = [site for site in sites for _ in range(trials_per_site)]
    rng.shuffle(plan)
    return experiment.run_campaign(plan, seed=rng.randrange(1 << 30))


def per_ring_campaigns(experiment: SfiExperiment, fraction: float = 0.10,
                       seed: int = 0,
                       rings: list[str] | None = None) -> dict[str, CampaignResult]:
    """Figure 5 as published: inject ~``fraction`` of each scan ring."""
    latch_map = experiment.latch_map
    results: dict[str, CampaignResult] = {}
    for ring in rings or latch_map.rings():
        rng = random.Random(f"{seed}:{ring}")
        sites = ring_fraction_sample(latch_map, ring, fraction, rng)
        results[ring] = experiment.run_campaign(sites, seed=rng.randrange(1 << 30))
    return results
