"""Hardening what-if analysis.

§3.2 concludes that the results "motivate the hardening of scan-only
latches in the core".  Given campaign results, this module answers the
what-if: if a set of latches (a ring, a type, a unit) were hardened —
i.e. their upsets suppressed — how do the whole-core outcome rates and
the unmasked-fault rate change?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sfi.outcomes import OUTCOME_ORDER, Outcome
from repro.sfi.results import CampaignResult, InjectionRecord


@dataclass(frozen=True)
class HardeningReport:
    """Before/after outcome rates for a hardening proposal."""

    hardened_bits: int
    population_bits: int
    baseline: dict[Outcome, float]
    hardened: dict[Outcome, float]

    def bad_outcome_reduction(self) -> float:
        """Relative reduction in non-vanished outcomes."""
        before = 1.0 - self.baseline[Outcome.VANISHED]
        after = 1.0 - self.hardened[Outcome.VANISHED]
        if before == 0:
            return 0.0
        return 1.0 - after / before


def harden(result: CampaignResult, predicate,
           hardened_bits: int) -> HardeningReport:
    """Recompute outcome rates assuming sites matching ``predicate`` are
    hardened (their flips become architecturally invisible: VANISHED).

    ``predicate`` receives each :class:`InjectionRecord`.  Rates stay
    expressed per injected flip of the *original* population, so the
    comparison isolates the hardening effect.
    """
    if hardened_bits < 0 or hardened_bits > result.population_bits:
        raise ValueError("hardened_bits must be within the population")
    baseline = result.fractions()
    total = max(1, result.total)
    adjusted = {outcome: 0 for outcome in OUTCOME_ORDER}
    for record in result.records:
        outcome = Outcome.VANISHED if predicate(record) else record.outcome
        adjusted[outcome] += 1
    hardened = {outcome: count / total for outcome, count in adjusted.items()}
    return HardeningReport(
        hardened_bits=hardened_bits,
        population_bits=result.population_bits,
        baseline=baseline,
        hardened=hardened,
    )


def harden_rings(result: CampaignResult, rings: set[str],
                 ring_bits: dict[str, int]) -> HardeningReport:
    """Convenience: harden entire scan rings (e.g. {"MODE", "GPTR"})."""
    bits = sum(ring_bits.get(ring, 0) for ring in rings)
    return harden(result, lambda record: record.ring in rings, bits)
