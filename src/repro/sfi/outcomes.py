"""Outcome taxonomy for injected bit flips.

These are the destinies the paper's monitoring environment distinguishes
(Figure 1): the flip vanished, was corrected (recovery or local
correction), hung the machine, checkstopped it, or silently produced
incorrect architected state (detected by the AVP's end-of-run check).
"""

from __future__ import annotations

import enum


class Outcome(enum.Enum):
    """Destiny of one injected bit flip."""

    VANISHED = "Vanished"
    CORRECTED = "Corrected"
    HANG = "Hang"
    CHECKSTOP = "Checkstop"
    SDC = "Bad Arch State"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Presentation order used throughout tables and figures.
OUTCOME_ORDER = (Outcome.VANISHED, Outcome.CORRECTED, Outcome.HANG,
                 Outcome.CHECKSTOP, Outcome.SDC)
