"""SFI campaign orchestration.

A campaign owns a prepared machine (model loaded on the emulation engine,
AVP suite installed, per-testcase checkpoints taken and fault-free
references established) and then performs injections: reload checkpoint,
clock to a random cycle, flip the chosen latch bit, run to quiesce within
the drain window, classify, repeat — the loop of Figure 1.
"""

from __future__ import annotations

import random
import time
from collections import Counter
from dataclasses import dataclass, field

from repro.avp.generator import MixWeights
from repro.avp.runner import AvpBaselineError, ReferenceRun
from repro.avp.suite import make_suite
from repro.avp.testcase import AvpTestcase
from repro.cpu.core import CoreSnapshot, Power6Core
from repro.cpu.events import EventKind, EventLog, MachineEvent
from repro.cpu.tainttrace import detection_info, taint_trace
from repro.cpu.touchtrace import trace_touches, untraced
from repro.cpu.params import CoreParams
from repro.cpu.pervasive import R_IDLE
from repro.emulator.awan import AwanEmulator
from repro.emulator.bitplane import (
    BITPLANE_DIGEST_STRIDE,
    BITPLANE_RUNG_STRIDE,
    MAX_WAVE_TRIALS,
    compile_netlist,
    record_schedule,
)
from repro.emulator.host import CommHost
from repro.obs.provenance import MaskingEvent, ProvenanceReport
from repro.rtl.fault import InjectionMode

from repro.sfi.classify import ClassifyOptions, classify
from repro.sfi.outcomes import Outcome
from repro.sfi.results import CampaignResult, InjectionRecord
from repro.sfi.sampling import random_sample


@dataclass(frozen=True)
class InjectionPlan:
    """One scheduled injection of a campaign.

    ``position`` is the injection's index in the campaign-wide site list;
    ``occurrence`` counts earlier injections of the same site (sampling is
    with replacement, so one site can be struck several times — each
    occurrence draws the next value from that site's RNG stream).  A plan
    item is self-contained, so shards can be split, retried and resumed in
    any order while reproducing exactly the injections a serial run makes.
    """

    position: int
    site_index: int
    testcase_index: int
    occurrence: int = 0


def plan_injections(sites: list[int], suite_size: int) -> list[InjectionPlan]:
    """Expand a site list into self-contained per-injection plan items.

    Testcases are assigned by campaign position (cycling through the
    suite, as a serial run always did); the per-site RNG stream is keyed
    by ``(seed, site_index, occurrence)`` at execution time, so the result
    of a plan item is independent of how the plan is sharded.
    """
    if suite_size < 1:
        raise ValueError("suite needs at least one testcase")
    occurrences: Counter[int] = Counter()
    plan: list[InjectionPlan] = []
    for position, site_index in enumerate(sites):
        plan.append(InjectionPlan(
            position=position,
            site_index=site_index,
            testcase_index=position % suite_size,
            occurrence=occurrences[site_index],
        ))
        occurrences[site_index] += 1
    return plan


def partition_plan(items: list, shards: int) -> list[list]:
    """Contiguous, size-balanced split of plan items (the same shape as
    :func:`repro.sfi.parallel.shard_sites` over site lists).

    Both execution back ends partition through here: the in-process pool
    splits by worker count, the distributed coordinator by lease size —
    so a shard/lease boundary is always a plan-order cut, and every
    slice stays self-contained and order-independent.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    base, extra = divmod(len(items), shards)
    slices, start = [], 0
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        slices.append(items[start:start + size])
        start += size
    return [s for s in slices if s]


def injection_rng(seed: int, site_index: int, occurrence: int) -> random.Random:
    """The per-site RNG stream: keyed by the site (and its occurrence
    number for repeat strikes), never by shard index, so campaigns are
    bit-identical for any ``workers`` value."""
    return random.Random(f"sfi:{seed}:{site_index}:{occurrence}")


@dataclass(frozen=True)
class CampaignConfig:
    """Static configuration of an SFI experiment."""

    suite_size: int = 6
    suite_seed: int = 2008
    weights: MixWeights | None = None
    injection_mode: InjectionMode = InjectionMode.TOGGLE
    sticky_cycles: int = 16
    drain_cycles: int = 1500
    poll_interval: int = 200
    checker_mask: int | None = None  # None: all checkers enabled
    mode_overrides: dict = field(default_factory=dict)
    classify_options: ClassifyOptions = ClassifyOptions()
    core_params: CoreParams | None = None
    # Ring bound on the per-injection event log: a hang-heavy injection
    # keeps emitting events until the drain window expires, so campaign
    # cores cap the log (keeping the newest — terminal — events) rather
    # than growing without limit.  None: unbounded.
    trace_max_events: int | None = 512
    # --- Fast path (checkpoint ladder + golden-digest early exit) -----
    # The fast path is classification-equivalent to the slow path (the
    # differential suite asserts bit-identical records); ``fastpath=False``
    # forces the original reload-from-cycle-0, drain-to-quiesce loop.
    fastpath: bool = True
    # Snapshot a ladder rung every ``ckpt_stride`` cycles of the
    # reference run, so ``run_one`` fast-forwards at most one stride of
    # pre-injection cycles instead of re-simulating from cycle 0.
    # None (or 0): no mid-execution rungs, only the cycle-0 checkpoint.
    ckpt_stride: int | None = 64
    # Record a golden state digest every ``digest_stride`` cycles; the
    # post-injection drain compares against it at the same cadence and
    # classifies ``vanished`` the moment the faulty state rejoins the
    # golden trajectory.
    digest_stride: int = 16
    # Ladder memory bound (LRU-evicted rungs across all testcases).
    ladder_max_rungs: int = 256
    # --- Fault provenance (taint propagation DAG per injection) -------
    # When True, every trial runs with the taint tracker installed and
    # produces a provenance payload (propagation DAG, infection
    # footprint, detection latency, masking attribution) alongside its
    # record.  Tracking forces the slow path per trial — the tracker
    # must observe every post-injection cycle, so ladder restores and
    # digest early exits are bypassed — but outcome records stay
    # bit-identical (the provenance differential suite asserts this).
    # Fast-path campaigns with provenance off are untouched.
    provenance: bool = False
    # --- Bit-plane backend (64 trials per machine word) ---------------
    # ``backend="bitplane"`` batches same-testcase plan items into waves
    # of up to ``wave_lanes`` trials, classifies every lane against the
    # compiled golden schedule with word-wide plane code, and only peels
    # lanes whose divergence the golden run actually consumes out to the
    # scalar path.  Records are byte-identical to the scalar path (the
    # bit-plane differential suite asserts it).  Requires the fast-path
    # machinery; incompatible with ``provenance`` (the taint tracker
    # must observe every post-injection cycle of every trial).
    backend: str = "scalar"
    # Trials per wave (clamped to the 63 non-golden lanes of a plane
    # word; plane bit 0 is the golden lane).
    wave_lanes: int = MAX_WAVE_TRIALS
    # Optional bound on the injection-cycle span batched into one wave
    # (None: any same-testcase items share a wave).
    wave_window: int | None = None


@dataclass(frozen=True)
class GoldenTrace:
    """Fault-free execution fingerprint of one testcase (the fast path's
    comparison substrate).

    ``digests`` maps cycle -> :meth:`Power6Core.state_digest` sampled at
    every ``digest_stride`` boundary of the reference run; ``events`` is
    the complete fault-free event sequence (needed to splice the golden
    tail onto an early-exited trace); ``end_cycle`` is where the golden
    run quiesced.  ``usable`` is False when the golden event log dropped
    events (the tail would be incomplete), which disables early exit for
    that testcase while leaving the checkpoint ladder active.

    ``final`` is the complete quiesced machine state (the early-exit
    paths reconstruct the trial's final state from it instead of
    simulating to it), and ``last_touch`` maps ``id(latch)`` to the last
    cycle the fault-free run read or wrote that latch (see
    :mod:`repro.cpu.touchtrace`) — the licence for the masked early
    exit: a flip confined to a latch the golden run never touches again
    is frozen, so the trial's future is the golden future.
    """

    digests: dict[int, int]
    events: tuple[MachineEvent, ...]
    end_cycle: int
    usable: bool
    final: CoreSnapshot
    last_touch: dict[int, int]


# Injection latency is milliseconds-scale on the software backend.
_INJECTION_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                      0.1, 0.25, 0.5, 1.0, 2.5, float("inf"))

# Simulation cycles avoided per injection (rung skip + early exit).
_CYCLES_SAVED_BUCKETS = (0.0, 16.0, 64.0, 256.0, 1024.0, 4096.0,
                         16384.0, float("inf"))

# Cycles from flip to first checker fire / FIR set / recovery start.
_DETECTION_LATENCY_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                              256.0, 512.0, 1024.0, 4096.0, float("inf"))

# Peak simultaneously tainted storage bits of one injection.
_PEAK_BITS_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
                      512.0, 1024.0, float("inf"))

# Trial lanes per resolved bit-plane wave (63 = a full plane word).
_WAVE_OCCUPANCY_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 63.0,
                           float("inf"))


def observe_provenance_metrics(inst, payload: dict) -> None:
    """Fold one provenance payload into the shared metric series.

    ``inst`` is any instrument bundle exposing ``detection_latency``,
    ``infection_peak`` and ``taint_edges`` (the experiment's and the
    supervisor's both do, so serial and sharded campaigns feed one
    dashboard).
    """
    detection = payload.get("detection")
    if detection is not None:
        inst.detection_latency.observe(detection["latency"])
    inst.infection_peak.observe(payload.get("peak_bits", 0))
    nodes = payload.get("nodes", [])
    for src, dst, _cycle, count in payload.get("edges", []):
        inst.taint_edges.inc(count, src_unit=nodes[src]["unit"],
                             dst_unit=nodes[dst]["unit"])


class _ExperimentInstruments:
    """The experiment-level series (shared metric names with the
    supervisor's outcome counters, so either path feeds one dashboard)."""

    def __init__(self, registry) -> None:
        self.injections = registry.counter(
            "sfi_injections_total", "completed injections by outcome",
            ("outcome",))
        self.injection_seconds = registry.histogram(
            "sfi_injection_seconds", "wall time per injection",
            buckets=_INJECTION_BUCKETS)
        self.campaign_seconds = registry.gauge(
            "sfi_campaign_seconds", "wall time of the last campaign run")
        self.prepare_seconds = registry.gauge(
            "sfi_prepare_seconds",
            "model prepare time (checkpoints + references)")
        self.rate = registry.gauge(
            "sfi_injections_per_second", "campaign injection throughput")
        self.ladder_hits = registry.counter(
            "sfi_ladder_hits_total",
            "injections restored from a mid-execution ladder rung")
        self.ladder_misses = registry.counter(
            "sfi_ladder_misses_total",
            "fast-path injections that fell back to the cycle-0 checkpoint")
        self.early_exits = registry.counter(
            "sfi_early_exits_total",
            "drains ended at a golden-digest match, by exit reason",
            ("reason",))
        self.cycles_saved = registry.histogram(
            "sfi_fastpath_saved_cycles",
            "simulation cycles avoided per injection by the fast path",
            buckets=_CYCLES_SAVED_BUCKETS)
        self.detection_latency = registry.histogram(
            "sfi_detection_latency_cycles",
            "cycles from injection to first detection event",
            buckets=_DETECTION_LATENCY_BUCKETS)
        self.infection_peak = registry.histogram(
            "sfi_infection_peak_bits",
            "peak simultaneously tainted storage bits per injection",
            buckets=_PEAK_BITS_BUCKETS)
        self.taint_edges = registry.counter(
            "sfi_taint_edges_total",
            "taint propagation DAG edge traversals by unit pair",
            ("src_unit", "dst_unit"))
        self.waves = registry.counter(
            "sfi_waves_total",
            "bit-plane waves resolved against a compiled golden schedule")
        self.wave_lanes = registry.counter(
            "sfi_wave_lanes_total", "wave trial lanes by plane fate",
            ("fate",))
        self.wave_peels = registry.counter(
            "sfi_wave_peels_total",
            "wave lanes peeled to the scalar path, by reason", ("reason",))
        self.wave_occupancy = registry.histogram(
            "sfi_wave_occupancy_lanes", "trial lanes per resolved wave",
            buckets=_WAVE_OCCUPANCY_BUCKETS)


class SfiExperiment:
    """A prepared machine + workload, ready to run injection campaigns.

    Pass ``metrics`` (a :class:`repro.obs.MetricsRegistry`) — or call
    :meth:`instrument` later — to record per-outcome counters, injection
    latency histograms, campaign/prepare timings and sampled core
    profiling (cycles/sec, checker fires, recovery cycles by unit).
    Uninstrumented experiments pay no metric calls on the hot path.
    """

    def __init__(self, config: CampaignConfig | None = None,
                 emulator_cls=AwanEmulator, metrics=None) -> None:
        self.config = config or CampaignConfig()
        self.core = Power6Core(self.config.core_params)
        # Campaign cores bound their event log as a ring: hang outcomes
        # otherwise accumulate events for the whole drain window.
        self.core.event_log = EventLog(
            capacity=None, max_events=self.config.trace_max_events)
        self.emulator = emulator_cls(self.core)
        if hasattr(self.emulator, "max_rungs"):
            self.emulator.max_rungs = self.config.ladder_max_rungs
        # The fast path needs the ladder/digest API; a foreign emulator
        # class without it silently keeps the original slow path.
        self.fastpath = bool(
            self.config.fastpath
            and hasattr(self.emulator, "restore_nearest")
            and hasattr(self.emulator, "save_rung"))
        self.host = CommHost(self.emulator, self.config.poll_interval)
        self.latch_map = self.emulator.latch_map
        # Position of each latch in the core's latch order, to look up a
        # latch's golden-final (value, par) pair in a CoreSnapshot.
        self._latch_index = {id(latch): i
                             for i, latch in enumerate(self.core.all_latches())}
        # --- Bit-plane backend state ----------------------------------
        backend = self.config.backend
        if backend not in ("scalar", "bitplane"):
            raise ValueError(f"unknown backend {backend!r}")
        self.bitplane = backend == "bitplane"
        if self.bitplane and not self.fastpath:
            raise ValueError(
                "bitplane backend requires the fast-path machinery "
                "(fastpath=True and a ladder-capable emulator)")
        if self.bitplane and self.config.provenance:
            raise ValueError(
                "bitplane backend is incompatible with provenance "
                "(the taint tracker must observe every trial cycle)")
        # Per-testcase compiled schedules plus the dense digest trails
        # (full and never-read-set masked) the wave path drains against.
        self.schedules: list = []
        self._bp_lagmap: list[dict[int, int]] = []
        self._bp_masked: list[dict[int, int]] = []
        self._schedule_trace = None
        self._latches = self.core.all_latches()
        self.suite: list[AvpTestcase] = make_suite(
            self.config.suite_size, self.config.suite_seed, self.config.weights)
        self.references: list[ReferenceRun] = []
        self.goldens: list[GoldenTrace] = []
        self.metrics = None
        self._instruments = None
        self._profiler = None
        # Per-trial side channels, refreshed by every run_one call: the
        # fast-path extras (exit reason + saved cycles) and the
        # provenance payload of a provenance-enabled trial.  run_plan
        # forwards them through the matching hooks (the supervisor's
        # shard workers journal and merge through these) and folds
        # payloads into ``provenance_report``.
        self.last_fastpath: dict | None = None
        self.last_provenance: dict | None = None
        self.fastpath_hook = None
        self.provenance_hook = None
        self.provenance_report: ProvenanceReport | None = None
        prepare_start = time.perf_counter()
        self._prepare()
        self.prepare_seconds = time.perf_counter() - prepare_start
        if metrics is not None:
            self.instrument(metrics)

    def instrument(self, registry) -> None:
        """Attach a metrics registry (and a sampled core profiler)."""
        from repro.obs.profile import CoreProfiler
        self.metrics = registry
        self._instruments = _ExperimentInstruments(registry)
        self._instruments.prepare_seconds.set(self.prepare_seconds)
        if self._profiler is not None:
            self._profiler.detach()
        self._profiler = CoreProfiler(self.core, registry)

    # ------------------------------------------------------------------

    def _apply_mode_overrides(self) -> None:
        perv = self.core.pervasive
        overrides = dict(self.config.mode_overrides)
        if self.config.checker_mask is not None:
            overrides.setdefault("mode_chk_en", self.config.checker_mask)
        for name, value in overrides.items():
            latch = getattr(perv, name, None)
            if latch is None:
                raise ValueError(f"unknown pervasive mode latch {name!r}")
            latch.write(value)

    def _prepare(self) -> None:
        """Checkpoint each testcase at cycle 0, establish its fault-free
        reference execution, and (on the fast path) build its checkpoint
        ladder and golden digest trail along the way."""
        for index, testcase in enumerate(self.suite):
            self.core.load_program(testcase.program)
            self._apply_mode_overrides()
            self.emulator.checkpoint(self._ckpt_name(index))
            reference = self._reference_run(testcase, index)
            self.references.append(reference)
            if self.bitplane:
                self._bitplane_prepare(index)
            self.emulator.reload(self._ckpt_name(index))

    def _reference_budget(self, testcase: AvpTestcase) -> int:
        return 50 * testcase.instructions_retired + 10_000

    def _reference_run(self, testcase: AvpTestcase,
                       index: int) -> ReferenceRun:
        budget = self._reference_budget(testcase)
        core = self.core
        if self.fastpath:
            self._instrumented_reference(index, budget)
        else:
            self.host.run_until_quiesce(budget)
        if not core.halted:
            raise AvpBaselineError(
                f"testcase seed={testcase.seed} did not halt fault-free")
        if not core.error_free():
            raise AvpBaselineError(
                f"testcase seed={testcase.seed}: checker fired fault-free")
        if core.memory.nonzero_words() != testcase.golden_memory:
            raise AvpBaselineError(
                f"testcase seed={testcase.seed}: fault-free memory mismatch")
        return ReferenceRun(testcase=testcase, cycles=core.cycles,
                            committed=core.committed)

    def _instrumented_reference(self, index: int, budget: int) -> None:
        """Golden run with ladder rungs and digest samples.

        Clocks in chunks that stop at every ``ckpt_stride`` and
        ``digest_stride`` boundary (never exceeding ``poll_interval``,
        the host's normal batching), snapshotting a rung / recording a
        digest at each; the machine trajectory is identical to one long
        :meth:`CommHost.run_until_quiesce` because chunking cannot change
        cycle-by-cycle evolution.  The whole run is latch-touch traced
        (rung/digest snapshots excepted — they are observational), which
        licences the masked early exit.
        """
        config = self.config
        core = self.core
        emulator = self.emulator
        ckpt_stride = config.ckpt_stride or 0
        digest_stride = max(1, config.digest_stride)
        digests: dict[int, int] = {}
        remaining = budget
        tracer = (record_schedule(core) if self.bitplane
                  else trace_touches(core))
        with tracer as trace:
            while remaining > 0 and not core.quiesced:
                cycle = core.cycles
                target = cycle + min(config.poll_interval, remaining,
                                     digest_stride - cycle % digest_stride)
                if ckpt_stride:
                    target = min(target,
                                 cycle + ckpt_stride - cycle % ckpt_stride)
                chunk = target - cycle
                run = emulator.clock(chunk)
                remaining -= run
                if run < chunk or core.quiesced:
                    break
                with untraced():
                    if ckpt_stride and core.cycles % ckpt_stride == 0:
                        emulator.save_rung(self._ckpt_name(index))
                    if core.cycles % digest_stride == 0:
                        digests[core.cycles] = core.state_digest()
            with untraced():
                final = core.snapshot()
        self.goldens.append(GoldenTrace(
            digests=digests,
            events=tuple(core.event_log),
            end_cycle=core.cycles,
            usable=core.event_log.dropped == 0,
            final=final,
            last_touch=dict(trace.last_touch),
        ))
        if self.bitplane:
            self._schedule_trace = trace

    @staticmethod
    def _ckpt_name(index: int) -> str:
        return f"tc{index}"

    # ------------------------------------------------------------------

    def run_one(self, site_index: int, testcase_index: int,
                inject_cycle: int,
                provenance: bool | None = None) -> InjectionRecord:
        """Perform a single injection and classify its outcome.

        On the fast path this restores the nearest ladder rung at or
        below ``inject_cycle`` (instead of re-simulating from cycle 0)
        and ends the drain at the first golden-digest match (instead of
        draining to quiesce); both are equivalence-preserving, so the
        returned record is bit-identical to the slow path's — the
        differential suite (``pytest -m differential``) enforces this.

        ``provenance`` (default: the config flag) runs the trial with
        the taint tracker installed — full reload + drain-to-quiesce, no
        ladder or early exit, because the tracker must see every
        post-injection cycle — and leaves the payload in
        ``last_provenance``.  The record itself is unchanged.
        """
        config = self.config
        emulator = self.emulator
        core = self.core
        reference = self.references[testcase_index]
        inst = self._instruments
        track = config.provenance if provenance is None else provenance
        fast = self.fastpath and not track
        if fast:
            start_cycle = emulator.restore_nearest(
                self._ckpt_name(testcase_index), inject_cycle)
        else:
            emulator.reload(self._ckpt_name(testcase_index))
            start_cycle = core.cycles
        if inject_cycle > start_cycle:
            emulator.clock(inject_cycle - start_cycle)
        site = emulator.inject(site_index, config.injection_mode,
                               config.sticky_cycles)
        budget = (reference.cycles - inject_cycle) + config.drain_cycles
        golden = self.goldens[testcase_index] if fast else None
        exit_kind = None
        tracker_payload = None
        if track:
            # Install after the flip (the injection write itself is the
            # DAG root, not an edge) and uninstall before classification
            # (golden-comparison reads are observational).
            with taint_trace(core, site.latch) as tracker:
                self.host.run_until_quiesce(budget)
            tracker_payload = tracker.payload()
        elif golden is not None and golden.usable:
            exit_kind = self._drain_with_digests(golden, budget, site)
        else:
            self.host.run_until_quiesce(budget)
        cycles_saved = start_cycle
        if exit_kind is not None:
            # The trial's remaining evolution is the golden tail (state
            # fully rejoined, or the flip is frozen in a latch the golden
            # run never touches again), so reconstruct the final state
            # instead of simulating to it: restore the golden-final
            # snapshot, splice the golden events after the exit cycle
            # through the ring (so the trace and its truncation match a
            # full drain), and — for a masked exit — re-freeze the flip.
            cut = core.cycles
            cycles_saved += golden.end_cycle - cut
            frozen = (site.latch.value, site.latch.par)
            events = core.event_log.snapshot()
            core.restore(golden.final)
            core.event_log.restore(events)
            core.event_log.replay(
                event for event in golden.events if event.cycle > cut)
            if exit_kind == "masked":
                site.latch.value, site.latch.par = frozen
        outcome = classify(core, reference.testcase,
                           config.classify_options)
        if inst is not None and fast:
            if start_cycle > 0:
                inst.ladder_hits.inc()
            else:
                inst.ladder_misses.inc()
            if exit_kind is not None:
                inst.early_exits.inc(reason=exit_kind)
            inst.cycles_saved.observe(cycles_saved)
        self.last_fastpath = None
        if fast:
            extras = {"saved_cycles": cycles_saved}
            if exit_kind is not None:
                extras["exit"] = exit_kind
            self.last_fastpath = extras
        self.last_provenance = None
        if tracker_payload is not None:
            tracker_payload.update(
                site=site.name,
                unit=self.latch_map.unit_of(site_index),
                inject_cycle=inject_cycle,
                testcase_seed=reference.testcase.seed,
                outcome=outcome.value,
                detection=detection_info(core.event_log.events,
                                         inject_cycle),
            )
            if (outcome in (Outcome.VANISHED, Outcome.CORRECTED)
                    and tracker_payload["residual_tainted"]):
                # Benign outcome with live taint at quiesce: the infected
                # state was never consumed.
                counts = tracker_payload["masking_counts"]
                counts[MaskingEvent.ARCHITECTURALLY_DEAD.value] = \
                    tracker_payload["residual_tainted"]
            self.last_provenance = tracker_payload
        return InjectionRecord(
            site_index=site_index,
            site_name=site.name,
            unit=self.latch_map.unit_of(site_index),
            kind=site.latch.kind,
            ring=site.latch.ring,
            testcase_seed=reference.testcase.seed,
            inject_cycle=inject_cycle,
            outcome=outcome,
            trace=tuple(core.event_log),
        )

    def _drain_with_digests(self, golden: GoldenTrace, budget: int,
                            site) -> str | None:
        """Post-injection drain with golden-digest early-exit checks.

        Clocks exactly the cycles the slow path would (same quiesce and
        budget stops), additionally pausing at every ``digest_stride``
        boundary before the golden end to compare state digests.  Returns
        the exit kind on a match — ``"golden"`` when the faulty state has
        fully rejoined the golden trajectory, ``"masked"`` when it
        matches everywhere *except* the injected latch and the golden run
        never touches that latch again (so the flip is frozen and inert);
        None means the drain completed (quiesce or exhausted budget) and
        the caller classifies normally.
        """
        config = self.config
        core = self.core
        emulator = self.emulator
        stride = max(1, config.digest_stride)
        digests = golden.digests
        end = golden.end_cycle
        latch = site.latch
        # A latch absent from the trace was never touched at all — the
        # most eligible case for the masked exit.
        last_touch = golden.last_touch.get(id(latch), -1)
        frozen = golden.final.latches[self._latch_index[id(latch)]]
        remaining = budget
        while remaining > 0:
            cycle = core.cycles
            chunk = min(config.poll_interval, remaining)
            if cycle < end:
                chunk = min(chunk, stride - cycle % stride)
            run = emulator.clock(chunk)
            remaining -= run
            if run < chunk or core.quiesced:
                return None
            cycle = core.cycles
            if cycle < end and cycle % stride == 0 \
                    and not emulator.sticky_pending:
                digest = digests.get(cycle)
                if digest is None:
                    continue
                if digest == core.state_digest():
                    return "golden"
                if last_touch <= cycle:
                    # Golden never reads or writes the injected latch
                    # after this cycle, so its golden value here equals
                    # its golden-final value; compare with the latch
                    # masked to it.
                    held = (latch.value, latch.par)
                    latch.value, latch.par = frozen
                    masked = core.state_digest()
                    latch.value, latch.par = held
                    if masked == digest:
                        return "masked"
        return None

    # ------------------------------------------------------------------
    # Bit-plane backend (waves of up to 63 trials per plane word).

    def _bitplane_prepare(self, index: int) -> None:
        """Compile the recorded schedule and lay down the bit-plane
        side's dense instrumentation in a second, untraced golden run.

        The re-run replays the exact reference trajectory (chunk
        boundaries cannot change cycle-by-cycle evolution — asserted
        against the golden-final snapshot) and samples what the traced
        run could not know yet: the *lag map* — every cycle's set-masked
        lag-free digest mapped to its first occurrence, letting a trial
        delayed by recovery rejoin the golden tail at an earlier golden
        cycle — the set-masked digest trail for the frozen-flip check
        (the never-read mask set only exists once the schedule is
        compiled), and denser ladder rungs so a peeled lane enters close
        to its first-read cycle.
        """
        core = self.core
        emulator = self.emulator
        config = self.config
        golden = self.goldens[index]
        testcase = self.suite[index]
        trace = self._schedule_trace
        self._schedule_trace = None
        cache_key = ("schedule", repr(config.core_params),
                     repr(config.weights), testcase.seed,
                     config.checker_mask,
                     tuple(sorted(config.mode_overrides.items())))
        schedule = compile_netlist(core, trace, cache_key=cache_key)
        self.schedules.append(schedule)
        mask = schedule.mask_indices
        lagmap: dict[int, int] = {}
        masked: dict[int, int] = {}
        emulator.reload(self._ckpt_name(index))
        end = golden.end_cycle
        stride = BITPLANE_DIGEST_STRIDE
        rung_stride = BITPLANE_RUNG_STRIDE
        # First occurrence wins: if two golden cycles digest identically
        # outside the mask set, their futures mirror (the digest covers
        # everything that drives evolution), so rejoining through the
        # earlier one reconstructs the same final state and event tail.
        lagmap.setdefault(
            core.state_digest(exclude=mask, include_cycle=False),
            core.cycles)
        while core.cycles < end and not core.quiesced:
            if emulator.clock(1) < 1:
                break
            cycle = core.cycles
            if cycle % rung_stride == 0:
                emulator.save_rung(self._ckpt_name(index))
            if cycle < end:
                lagmap.setdefault(
                    core.state_digest(exclude=mask, include_cycle=False),
                    cycle)
                if cycle % stride == 0:
                    masked[cycle] = core.state_digest(exclude=mask)
        if core.snapshot() != golden.final:
            raise AvpBaselineError(
                f"testcase seed={testcase.seed}: bit-plane golden re-run "
                "diverged from the reference trajectory")
        self._bp_lagmap.append(lagmap)
        self._bp_masked.append(masked)

    def _run_waves(self, scheduled, records, record_hook) -> None:
        """Batch scheduled plan items into waves and execute them.

        Items group by testcase (one compiled schedule per wave), sort
        by (inject cycle, position) and chunk into ``wave_lanes``-sized
        waves (optionally bounded to a ``wave_window`` cycle span).
        Every item is self-contained, so batching cannot change any
        record; results are keyed by plan position exactly like the
        scalar loop's.
        """
        config = self.config
        by_testcase: dict[int, list] = {}
        for item, inject_cycle in scheduled:
            by_testcase.setdefault(item.testcase_index, []).append(
                (item, inject_cycle))
        lanes_cap = max(1, min(config.wave_lanes, MAX_WAVE_TRIALS))
        window = config.wave_window
        for tc_index in sorted(by_testcase):
            lanes = sorted(by_testcase[tc_index],
                           key=lambda pair: (pair[1], pair[0].position))
            wave: list = []
            for pair in lanes:
                if wave and (len(wave) >= lanes_cap
                             or (window is not None
                                 and pair[1] - wave[0][1] > window)):
                    self._run_wave(tc_index, wave, records, record_hook)
                    wave = []
                wave.append(pair)
            if wave:
                self._run_wave(tc_index, wave, records, record_hook)

    def _run_wave(self, tc_index: int, wave, records, record_hook) -> None:
        """Resolve one wave in-plane and execute its lanes.

        In-plane fates (converge/survive) reconstruct their records
        host-side at zero simulation cost; peeled lanes fall to the
        scalar path (:meth:`_run_peeled`, or plain :meth:`run_one` when
        the wave could not be resolved in-plane at all — non-TOGGLE
        modes and goldens with truncated event logs).
        """
        config = self.config
        inst = self._instruments
        golden = self.goldens[tc_index]
        schedule = self.schedules[tc_index]
        in_plane = (config.injection_mode is InjectionMode.TOGGLE
                    and golden.usable)
        if in_plane:
            descriptors = []
            for item, inject_cycle in wave:
                site = self.latch_map.site(item.site_index)
                descriptors.append(
                    (self._latch_index[id(site.latch)], site.bit,
                     site.is_parity_bit, inject_cycle))
            fates = schedule.resolve_wave(descriptors)
        else:
            fates = [("peel", None)] * len(wave)
        if inst is not None:
            inst.waves.inc()
            inst.wave_occupancy.observe(float(len(wave)))
        for (item, inject_cycle), (fate, read_cycle) in zip(wave, fates):
            start = time.perf_counter() if inst is not None else 0.0
            if fate == "peel":
                if not in_plane:
                    reason = ("mode" if config.injection_mode
                              is not InjectionMode.TOGGLE else "no-golden")
                    record = self.run_one(item.site_index, tc_index,
                                          inject_cycle)
                else:
                    reason = "consumed"
                    record = self._run_peeled(item.site_index, tc_index,
                                              inject_cycle, read_cycle)
                if inst is not None:
                    inst.wave_peels.inc(reason=reason)
            else:
                record = self._wave_record(item.site_index, tc_index,
                                           inject_cycle, fate, schedule)
            if inst is not None:
                inst.injection_seconds.observe(time.perf_counter() - start)
                inst.injections.inc(outcome=record.outcome.value)
                inst.wave_lanes.inc(fate=fate)
            if self.last_fastpath is not None \
                    and self.fastpath_hook is not None:
                self.fastpath_hook(item.position, self.last_fastpath)
            records[item.position] = record
            if record_hook is not None:
                record_hook(item.position, record)

    def _wave_record(self, site_index: int, tc_index: int,
                     inject_cycle: int, fate: str,
                     schedule) -> InjectionRecord:
        """Reconstruct an in-plane lane's record without simulating.

        A converged lane's final state *is* the golden final state (the
        golden run overwrote the flipped bit before ever reading it); a
        surviving lane's is the golden final state with the flip still
        applied (the bit is never read or written again).  Either way
        the trial's event sequence is the golden sequence with the
        INJECTION event spliced in at the inject cycle, replayed through
        the ring so truncation matches a real drain.
        """
        config = self.config
        core = self.core
        golden = self.goldens[tc_index]
        reference = self.references[tc_index]
        site = self.latch_map.site(site_index)
        index = self._latch_index[id(site.latch)]
        old = schedule.level_at(index, site.bit, site.is_parity_bit,
                                schedule.boundary(inject_cycle))
        core.restore(golden.final)
        log = core.event_log
        log.clear()
        log.replay(event for event in golden.events
                   if event.cycle <= inject_cycle)
        log.record(inject_cycle, EventKind.INJECTION,
                   f"{site.name} -> {old ^ 1} "
                   f"({config.injection_mode.value})")
        log.replay(event for event in golden.events
                   if event.cycle > inject_cycle)
        if fate == "survive":
            site.inject()
        outcome = classify(core, reference.testcase,
                           config.classify_options)
        if self._instruments is not None:
            self._instruments.early_exits.inc(reason=f"wave-{fate}")
            self._instruments.cycles_saved.observe(float(golden.end_cycle))
        self.last_fastpath = {"saved_cycles": golden.end_cycle,
                              "exit": f"wave-{fate}"}
        self.last_provenance = None
        return InjectionRecord(
            site_index=site_index,
            site_name=site.name,
            unit=self.latch_map.unit_of(site_index),
            kind=site.latch.kind,
            ring=site.latch.ring,
            testcase_seed=reference.testcase.seed,
            inject_cycle=inject_cycle,
            outcome=outcome,
            trace=tuple(core.event_log),
        )

    def _run_peeled(self, site_index: int, tc_index: int, inject_cycle: int,
                    read_cycle: int) -> InjectionRecord:
        """Scalar execution of a peeled wave lane.

        Until the golden run first *reads* the diverged bit (at
        ``read_cycle``) the trial is bit-identical to golden everywhere
        else, so enter at the densest ladder rung at or below
        ``read_cycle - 1``: re-apply the flip in place, rebuild the
        event prefix the trial would carry (golden prefix + INJECTION
        splice), and drain against the dense bit-plane digest trail.
        """
        config = self.config
        emulator = self.emulator
        core = self.core
        reference = self.references[tc_index]
        golden = self.goldens[tc_index]
        inst = self._instruments
        name = self._ckpt_name(tc_index)
        entry_target = inject_cycle
        if read_cycle is not None:
            entry_target = max(inject_cycle, read_cycle - 1)
        start_cycle = emulator.restore_nearest(name, entry_target)
        skipped = 0
        if start_cycle <= inject_cycle:
            if inject_cycle > start_cycle:
                emulator.clock(inject_cycle - start_cycle)
            site = emulator.inject(site_index, config.injection_mode,
                                   config.sticky_cycles)
        else:
            # Entered from a golden rung *after* the injection point:
            # no golden event touches the bit in (inject, entry], so the
            # trial state there is the golden state plus the flip.
            site = self.latch_map.site(site_index)
            level = site.inject()
            emulator.stats.injections += 1
            log = core.event_log
            log.clear()
            log.replay(event for event in golden.events
                       if event.cycle <= inject_cycle)
            log.record(inject_cycle, EventKind.INJECTION,
                       f"{site.name} -> {level} "
                       f"({config.injection_mode.value})")
            log.replay(event for event in golden.events
                       if inject_cycle < event.cycle <= start_cycle)
            skipped = start_cycle - inject_cycle
        budget = ((reference.cycles - inject_cycle) + config.drain_cycles
                  - skipped)
        exit_info = self._drain_bitplane(tc_index, budget, site)
        cycles_saved = start_cycle
        exit_kind = None
        if exit_info is not None:
            exit_kind, cut = exit_info
            schedule = self.schedules[tc_index]
            # ``cut`` is the *golden* cycle the trial rejoined at; the
            # trial itself sits ``delta`` cycles later (recovery stalls
            # it, then it replays the golden trajectory shifted in
            # time).  The remaining trial evolution is the golden tail
            # after ``cut`` with every cycle stamp shifted by ``delta``.
            delta = core.cycles - cut
            cycles_saved += golden.end_cycle - cut
            frozen = (site.latch.value, site.latch.par)
            mask_state = [(i, self._latches[i].value, self._latches[i].par)
                          for i in schedule.mask_indices]
            events = core.event_log.snapshot()
            core.restore(golden.final)
            core.cycles += delta
            core.event_log.restore(events)
            tail = (event for event in golden.events if event.cycle > cut)
            if delta:
                tail = (MachineEvent(event.cycle + delta, event.kind,
                                     event.detail) for event in tail)
            core.event_log.replay(tail)
            # Mask-set latches are never read, so the trial's writes to
            # them mirror golden's (time-shifted): a whole-write after
            # the cut lands the golden final value (already restored);
            # otherwise the trial value at the cut persists, with golden
            # bit-writes after the cut merged over it.
            for i, value, par in mask_state:
                latch = self._latches[i]
                final_value, _final_par = golden.final.latches[i]
                if not schedule.whole_write_after(i, cut):
                    bits = schedule.bits_written_after(i, cut)
                    latch.value = (value & ~bits) | (final_value & bits)
                if not schedule.whole_write_after(i, cut, is_parity=True):
                    latch.par = par
            if exit_kind == "masked":
                site.latch.value, site.latch.par = frozen
        outcome = classify(core, reference.testcase,
                           config.classify_options)
        if inst is not None:
            if start_cycle > 0:
                inst.ladder_hits.inc()
            else:
                inst.ladder_misses.inc()
            if exit_kind is not None:
                inst.early_exits.inc(reason=exit_kind)
            inst.cycles_saved.observe(float(cycles_saved))
        extras = {"saved_cycles": cycles_saved}
        if exit_kind is not None:
            extras["exit"] = exit_kind
        self.last_fastpath = extras
        self.last_provenance = None
        return InjectionRecord(
            site_index=site_index,
            site_name=site.name,
            unit=self.latch_map.unit_of(site_index),
            kind=site.latch.kind,
            ring=site.latch.ring,
            testcase_seed=reference.testcase.seed,
            inject_cycle=inject_cycle,
            outcome=outcome,
            trace=tuple(core.event_log),
        )

    def _drain_bitplane(self, tc_index: int, budget: int,
                        site) -> tuple[str, int] | None:
        """Peeled-lane drain against the bit-plane lag map.

        Every drained cycle, the trial's set-masked *lag-free* digest
        (cycle counter excluded, never-read mask set excluded — neither
        can influence future golden-mirroring evolution) is looked up in
        the golden lag map.  A hit at golden cycle ``u`` means the trial
        is the golden machine at ``u``, possibly delayed: recovery
        stalls the pipeline for a handful of cycles, after which the
        trial replays the golden trajectory shifted in time, which a
        same-cycle compare can never see.  Returns ``("rejoin", u)``.

        A second, stride-cadence check handles the flip that golden
        never reads again (``("masked", cycle)``): the diverged latch is
        inert, so compare with it temporarily held at its golden-final
        value.  Checks are skipped while a sticky fault still re-arms
        (the flip keeps returning) and while the recovery sequencer is
        active (golden never leaves ``R_IDLE``, so no digest can match).
        """
        core = self.core
        emulator = self.emulator
        golden = self.goldens[tc_index]
        schedule = self.schedules[tc_index]
        lagmap = self._bp_lagmap[tc_index]
        masked_trail = self._bp_masked[tc_index]
        mask = schedule.mask_indices
        stride = BITPLANE_DIGEST_STRIDE
        end = golden.end_cycle
        latch = site.latch
        in_mask = self._latch_index[id(latch)] in mask
        last_touch = golden.last_touch.get(id(latch), -1)
        frozen = golden.final.latches[self._latch_index[id(latch)]]
        rstate = core.pervasive.rstate
        remaining = budget
        while remaining > 0:
            run = emulator.clock(1)
            remaining -= run
            if run < 1 or core.quiesced:
                return None
            if emulator.sticky_pending or rstate.value != R_IDLE:
                continue
            rejoin = lagmap.get(
                core.state_digest(exclude=mask, include_cycle=False))
            if rejoin is not None:
                return ("rejoin", rejoin)
            cycle = core.cycles
            if (not in_mask and cycle < end and cycle % stride == 0
                    and last_touch <= cycle):
                reference_masked = masked_trail.get(cycle)
                if reference_masked is None:
                    continue
                held = (latch.value, latch.par)
                latch.value, latch.par = frozen
                masked_digest = core.state_digest(exclude=mask)
                latch.value, latch.par = held
                if masked_digest == reference_masked:
                    return ("masked", cycle)
        return None

    def run_plan(self, plan: list[InjectionPlan], seed: int = 0,
                 record_hook=None) -> CampaignResult:
        """Execute plan items (in the given order).

        Each item's inject cycle comes from its own RNG stream (see
        :func:`injection_rng`), so executing a sub-slice of a plan — a
        shard, a retry, the tail of a resumed campaign — yields the same
        records a full serial run would.  ``record_hook(position, record)``
        is called after every completed injection (the supervisor journals
        through it).
        """
        result = CampaignResult(population_bits=len(self.latch_map))
        inst = self._instruments
        campaign_start = time.perf_counter()
        scheduled = [(item,
                      injection_rng(seed, item.site_index, item.occurrence)
                      .randrange(0, self.references[item.testcase_index]
                                 .cycles))
                     for item in plan]
        order = scheduled
        if self.fastpath:
            # Visit injections testcase-by-testcase in cycle order so
            # ladder rungs stay warm (monotone cycles touch each rung
            # once); every item is self-contained, so execution order
            # cannot change any record, and results/hook positions are
            # still reported against the caller's plan.
            order = sorted(scheduled, key=lambda pair: (
                pair[0].testcase_index, pair[1], pair[0].position))
        report = ProvenanceReport() if self.config.provenance else None
        records: dict[int, InjectionRecord] = {}
        if self.bitplane:
            self._run_waves(scheduled, records, record_hook)
            order = ()  # every record produced by the wave path
        for item, inject_cycle in order:
            start = time.perf_counter() if inst is not None else 0.0
            record = self.run_one(item.site_index, item.testcase_index,
                                  inject_cycle)
            if inst is not None:
                inst.injection_seconds.observe(time.perf_counter() - start)
                inst.injections.inc(outcome=record.outcome.value)
            if self.last_fastpath is not None \
                    and self.fastpath_hook is not None:
                self.fastpath_hook(item.position, self.last_fastpath)
            payload = self.last_provenance
            if payload is not None:
                if report is not None:
                    report.absorb(payload)
                if inst is not None:
                    observe_provenance_metrics(inst, payload)
                if self.provenance_hook is not None:
                    self.provenance_hook(item.position, payload)
            records[item.position] = record
            if record_hook is not None:
                record_hook(item.position, record)
        for item, _ in scheduled:
            result.add(records[item.position])
        if report is not None:
            self.provenance_report = report
        if inst is not None:
            elapsed = time.perf_counter() - campaign_start
            inst.campaign_seconds.set(elapsed)
            if elapsed > 0 and result.total:
                inst.rate.set(result.total / elapsed)
            if self._profiler is not None:
                self._profiler.sample()
        return result

    def run_campaign(self, sites: list[int], seed: int = 0,
                     record_hook=None) -> CampaignResult:
        """Inject every site in ``sites`` (one injection each), cycling
        through the testcase suite, at per-injection random cycles."""
        plan = plan_injections(sites, len(self.suite))
        return self.run_plan(plan, seed=seed, record_hook=record_hook)

    def run_random_campaign(self, count: int, seed: int = 0) -> CampaignResult:
        """Whole-core uniform random campaign of ``count`` flips."""
        rng = random.Random(seed ^ 0x5F1)
        sites = random_sample(self.latch_map, count, rng)
        return self.run_campaign(sites, seed)
