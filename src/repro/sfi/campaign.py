"""SFI campaign orchestration.

A campaign owns a prepared machine (model loaded on the emulation engine,
AVP suite installed, per-testcase checkpoints taken and fault-free
references established) and then performs injections: reload checkpoint,
clock to a random cycle, flip the chosen latch bit, run to quiesce within
the drain window, classify, repeat — the loop of Figure 1.
"""

from __future__ import annotations

import random
import time
from collections import Counter
from dataclasses import dataclass, field

from repro.avp.generator import MixWeights
from repro.avp.runner import AvpBaselineError, ReferenceRun
from repro.avp.suite import make_suite
from repro.avp.testcase import AvpTestcase
from repro.cpu.core import Power6Core
from repro.cpu.events import EventLog
from repro.cpu.params import CoreParams
from repro.emulator.awan import AwanEmulator
from repro.emulator.host import CommHost
from repro.rtl.fault import InjectionMode

from repro.sfi.classify import ClassifyOptions, classify
from repro.sfi.results import CampaignResult, InjectionRecord
from repro.sfi.sampling import random_sample


@dataclass(frozen=True)
class InjectionPlan:
    """One scheduled injection of a campaign.

    ``position`` is the injection's index in the campaign-wide site list;
    ``occurrence`` counts earlier injections of the same site (sampling is
    with replacement, so one site can be struck several times — each
    occurrence draws the next value from that site's RNG stream).  A plan
    item is self-contained, so shards can be split, retried and resumed in
    any order while reproducing exactly the injections a serial run makes.
    """

    position: int
    site_index: int
    testcase_index: int
    occurrence: int = 0


def plan_injections(sites: list[int], suite_size: int) -> list[InjectionPlan]:
    """Expand a site list into self-contained per-injection plan items.

    Testcases are assigned by campaign position (cycling through the
    suite, as a serial run always did); the per-site RNG stream is keyed
    by ``(seed, site_index, occurrence)`` at execution time, so the result
    of a plan item is independent of how the plan is sharded.
    """
    if suite_size < 1:
        raise ValueError("suite needs at least one testcase")
    occurrences: Counter[int] = Counter()
    plan: list[InjectionPlan] = []
    for position, site_index in enumerate(sites):
        plan.append(InjectionPlan(
            position=position,
            site_index=site_index,
            testcase_index=position % suite_size,
            occurrence=occurrences[site_index],
        ))
        occurrences[site_index] += 1
    return plan


def injection_rng(seed: int, site_index: int, occurrence: int) -> random.Random:
    """The per-site RNG stream: keyed by the site (and its occurrence
    number for repeat strikes), never by shard index, so campaigns are
    bit-identical for any ``workers`` value."""
    return random.Random(f"sfi:{seed}:{site_index}:{occurrence}")


@dataclass(frozen=True)
class CampaignConfig:
    """Static configuration of an SFI experiment."""

    suite_size: int = 6
    suite_seed: int = 2008
    weights: MixWeights | None = None
    injection_mode: InjectionMode = InjectionMode.TOGGLE
    sticky_cycles: int = 16
    drain_cycles: int = 1500
    poll_interval: int = 200
    checker_mask: int | None = None  # None: all checkers enabled
    mode_overrides: dict = field(default_factory=dict)
    classify_options: ClassifyOptions = ClassifyOptions()
    core_params: CoreParams | None = None
    # Ring bound on the per-injection event log: a hang-heavy injection
    # keeps emitting events until the drain window expires, so campaign
    # cores cap the log (keeping the newest — terminal — events) rather
    # than growing without limit.  None: unbounded.
    trace_max_events: int | None = 512


# Injection latency is milliseconds-scale on the software backend.
_INJECTION_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                      0.1, 0.25, 0.5, 1.0, 2.5, float("inf"))


class _ExperimentInstruments:
    """The experiment-level series (shared metric names with the
    supervisor's outcome counters, so either path feeds one dashboard)."""

    def __init__(self, registry) -> None:
        self.injections = registry.counter(
            "sfi_injections_total", "completed injections by outcome",
            ("outcome",))
        self.injection_seconds = registry.histogram(
            "sfi_injection_seconds", "wall time per injection",
            buckets=_INJECTION_BUCKETS)
        self.campaign_seconds = registry.gauge(
            "sfi_campaign_seconds", "wall time of the last campaign run")
        self.prepare_seconds = registry.gauge(
            "sfi_prepare_seconds",
            "model prepare time (checkpoints + references)")
        self.rate = registry.gauge(
            "sfi_injections_per_second", "campaign injection throughput")


class SfiExperiment:
    """A prepared machine + workload, ready to run injection campaigns.

    Pass ``metrics`` (a :class:`repro.obs.MetricsRegistry`) — or call
    :meth:`instrument` later — to record per-outcome counters, injection
    latency histograms, campaign/prepare timings and sampled core
    profiling (cycles/sec, checker fires, recovery cycles by unit).
    Uninstrumented experiments pay no metric calls on the hot path.
    """

    def __init__(self, config: CampaignConfig | None = None,
                 emulator_cls=AwanEmulator, metrics=None) -> None:
        self.config = config or CampaignConfig()
        self.core = Power6Core(self.config.core_params)
        # Campaign cores bound their event log as a ring: hang outcomes
        # otherwise accumulate events for the whole drain window.
        self.core.event_log = EventLog(
            capacity=None, max_events=self.config.trace_max_events)
        self.emulator = emulator_cls(self.core)
        self.host = CommHost(self.emulator, self.config.poll_interval)
        self.latch_map = self.emulator.latch_map
        self.suite: list[AvpTestcase] = make_suite(
            self.config.suite_size, self.config.suite_seed, self.config.weights)
        self.references: list[ReferenceRun] = []
        self.metrics = None
        self._instruments = None
        self._profiler = None
        prepare_start = time.perf_counter()
        self._prepare()
        self.prepare_seconds = time.perf_counter() - prepare_start
        if metrics is not None:
            self.instrument(metrics)

    def instrument(self, registry) -> None:
        """Attach a metrics registry (and a sampled core profiler)."""
        from repro.obs.profile import CoreProfiler
        self.metrics = registry
        self._instruments = _ExperimentInstruments(registry)
        self._instruments.prepare_seconds.set(self.prepare_seconds)
        if self._profiler is not None:
            self._profiler.detach()
        self._profiler = CoreProfiler(self.core, registry)

    # ------------------------------------------------------------------

    def _apply_mode_overrides(self) -> None:
        perv = self.core.pervasive
        overrides = dict(self.config.mode_overrides)
        if self.config.checker_mask is not None:
            overrides.setdefault("mode_chk_en", self.config.checker_mask)
        for name, value in overrides.items():
            latch = getattr(perv, name, None)
            if latch is None:
                raise ValueError(f"unknown pervasive mode latch {name!r}")
            latch.write(value)

    def _prepare(self) -> None:
        """Checkpoint each testcase at cycle 0 and establish its fault-free
        reference execution."""
        for index, testcase in enumerate(self.suite):
            self.core.load_program(testcase.program)
            self._apply_mode_overrides()
            self.emulator.checkpoint(self._ckpt_name(index))
            reference = self._reference_run(testcase)
            self.references.append(reference)
            self.emulator.reload(self._ckpt_name(index))

    def _reference_run(self, testcase: AvpTestcase) -> ReferenceRun:
        budget = 50 * testcase.instructions_retired + 10_000
        self.host.run_until_quiesce(budget)
        core = self.core
        if not core.halted:
            raise AvpBaselineError(
                f"testcase seed={testcase.seed} did not halt fault-free")
        if not core.error_free():
            raise AvpBaselineError(
                f"testcase seed={testcase.seed}: checker fired fault-free")
        if core.memory.nonzero_words() != testcase.golden_memory:
            raise AvpBaselineError(
                f"testcase seed={testcase.seed}: fault-free memory mismatch")
        return ReferenceRun(testcase=testcase, cycles=core.cycles,
                            committed=core.committed)

    @staticmethod
    def _ckpt_name(index: int) -> str:
        return f"tc{index}"

    # ------------------------------------------------------------------

    def run_one(self, site_index: int, testcase_index: int,
                inject_cycle: int) -> InjectionRecord:
        """Perform a single injection and classify its outcome."""
        config = self.config
        emulator = self.emulator
        reference = self.references[testcase_index]
        emulator.reload(self._ckpt_name(testcase_index))
        if inject_cycle:
            emulator.clock(inject_cycle)
        site = emulator.inject(site_index, config.injection_mode,
                               config.sticky_cycles)
        budget = (reference.cycles - inject_cycle) + config.drain_cycles
        self.host.run_until_quiesce(budget)
        outcome = classify(self.core, reference.testcase,
                           config.classify_options)
        return InjectionRecord(
            site_index=site_index,
            site_name=site.name,
            unit=self.latch_map.unit_of(site_index),
            kind=site.latch.kind,
            ring=site.latch.ring,
            testcase_seed=reference.testcase.seed,
            inject_cycle=inject_cycle,
            outcome=outcome,
            trace=tuple(self.core.event_log),
        )

    def run_plan(self, plan: list[InjectionPlan], seed: int = 0,
                 record_hook=None) -> CampaignResult:
        """Execute plan items (in the given order).

        Each item's inject cycle comes from its own RNG stream (see
        :func:`injection_rng`), so executing a sub-slice of a plan — a
        shard, a retry, the tail of a resumed campaign — yields the same
        records a full serial run would.  ``record_hook(position, record)``
        is called after every completed injection (the supervisor journals
        through it).
        """
        result = CampaignResult(population_bits=len(self.latch_map))
        inst = self._instruments
        campaign_start = time.perf_counter()
        for item in plan:
            reference = self.references[item.testcase_index]
            rng = injection_rng(seed, item.site_index, item.occurrence)
            inject_cycle = rng.randrange(0, reference.cycles)
            start = time.perf_counter() if inst is not None else 0.0
            record = self.run_one(item.site_index, item.testcase_index,
                                  inject_cycle)
            if inst is not None:
                inst.injection_seconds.observe(time.perf_counter() - start)
                inst.injections.inc(outcome=record.outcome.value)
            result.add(record)
            if record_hook is not None:
                record_hook(item.position, record)
        if inst is not None:
            elapsed = time.perf_counter() - campaign_start
            inst.campaign_seconds.set(elapsed)
            if elapsed > 0 and result.total:
                inst.rate.set(result.total / elapsed)
            if self._profiler is not None:
                self._profiler.sample()
        return result

    def run_campaign(self, sites: list[int], seed: int = 0,
                     record_hook=None) -> CampaignResult:
        """Inject every site in ``sites`` (one injection each), cycling
        through the testcase suite, at per-injection random cycles."""
        plan = plan_injections(sites, len(self.suite))
        return self.run_plan(plan, seed=seed, record_hook=record_hook)

    def run_random_campaign(self, count: int, seed: int = 0) -> CampaignResult:
        """Whole-core uniform random campaign of ``count`` flips."""
        rng = random.Random(seed ^ 0x5F1)
        sites = random_sample(self.latch_map, count, rng)
        return self.run_campaign(sites, seed)
