"""Higher-level statistical experiments built on campaigns.

``sample_size_experiment`` reproduces the methodology of the paper's §2.1
(Figure 2): for each sample size X, draw several independent random
samples of X bit flips, run each as a campaign, and report the standard
deviation of each outcome category's count as a fraction of its mean —
the estimation-error curve that justifies the 10k-flip operating point.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.sfi.campaign import SfiExperiment
from repro.sfi.outcomes import OUTCOME_ORDER, Outcome
from repro.sfi.results import CampaignResult
from repro.sfi.sampling import random_sample
from repro.stats.descriptive import mean_std


@dataclass
class SampleSizePoint:
    """Statistics for one sample size X."""

    flips: int
    samples: int
    means: dict[Outcome, float] = field(default_factory=dict)
    stdev_over_mean: dict[Outcome, float] = field(default_factory=dict)
    results: list[CampaignResult] = field(default_factory=list)


def sample_size_experiment(experiment: SfiExperiment,
                           sizes: list[int],
                           samples_per_size: int = 10,
                           seed: int = 0,
                           workers: int = 1,
                           progress=None,
                           metrics=None) -> list[SampleSizePoint]:
    """Run the Figure 2 experiment over ``sizes``.

    With ``workers > 1`` each sample campaign runs under the supervised
    parallel engine (fault-tolerant, same records as a serial run);
    ``progress`` is a :class:`~repro.sfi.supervisor.CampaignProgress`
    observing every campaign of the sweep.  ``metrics`` (a
    :class:`repro.obs.MetricsRegistry`) instruments the experiment if it
    isn't already and adds sweep-level series: campaigns completed per
    sample size and total sweep wall time.
    """
    sweep_campaigns = sweep_seconds = None
    if metrics is not None:
        if experiment.metrics is None:
            experiment.instrument(metrics)
        sweep_campaigns = metrics.counter(
            "sfi_sweep_campaigns_total",
            "sample-size sweep campaigns completed", ("flips",))
        sweep_seconds = metrics.gauge(
            "sfi_sweep_seconds", "wall time of the last sample-size sweep")
    sweep_start = time.perf_counter()
    points: list[SampleSizePoint] = []
    for size in sizes:
        point = SampleSizePoint(flips=size, samples=samples_per_size)
        per_outcome_counts: dict[Outcome, list[int]] = {
            outcome: [] for outcome in OUTCOME_ORDER}
        for sample_idx in range(samples_per_size):
            rng = random.Random(f"{seed}:{size}:{sample_idx}")
            sites = random_sample(experiment.latch_map, size, rng)
            campaign_seed = rng.randrange(1 << 30)
            if workers > 1:
                from repro.sfi.parallel import run_parallel_campaign
                result = run_parallel_campaign(
                    experiment.config, sites, seed=campaign_seed,
                    workers=workers,
                    population_bits=len(experiment.latch_map),
                    **({"progress": progress} if progress else {}))
            else:
                hook = (progress.on_record if progress is not None else None)
                result = experiment.run_campaign(sites, seed=campaign_seed,
                                                 record_hook=hook)
            point.results.append(result)
            if sweep_campaigns is not None:
                sweep_campaigns.inc(flips=str(size))
            counts = result.counts()
            for outcome in OUTCOME_ORDER:
                per_outcome_counts[outcome].append(counts[outcome])
        for outcome, values in per_outcome_counts.items():
            mean, std = mean_std(values)
            point.means[outcome] = mean
            point.stdev_over_mean[outcome] = (std / mean) if mean else 0.0
        points.append(point)
    if sweep_seconds is not None:
        sweep_seconds.set(time.perf_counter() - sweep_start)
    return points
