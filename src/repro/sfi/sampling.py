"""Latch-bit sampling strategies.

The paper's methodology is *statistical*: a core holds hundreds of
thousands of latch bits, so campaigns sample.  Random whole-core sampling
reproduces the beam-calibration experiment (Table 2); per-unit and
per-scan-ring sampling are the targeted modes of §3.1 and §3.2.

Every drawing function takes an explicit ``random.Random`` — campaign
reproducibility (and the REPRO-D01 lint rule) forbids the implicitly
seeded module singleton.  Sampling an empty population raises
:class:`EmptyPopulationError` naming the selector, instead of the opaque
``ValueError`` ``rng.randrange(0)`` would surface.
"""

from __future__ import annotations

import random

from repro.emulator.netlist import LatchMap
from repro.rtl.latch import LatchKind


class EmptyPopulationError(ValueError):
    """A sampling request targeted a population with no latch bits.

    Raised instead of the bare ``ValueError`` that ``randrange(0)`` /
    ``sample()`` would produce, so a campaign misconfiguration (a unit
    with no latches, a kind absent from this model, an empty netlist)
    fails with the selector spelled out.
    """

    def __init__(self, selector: str) -> None:
        super().__init__(
            f"cannot sample from {selector}: it contains no latch bits "
            "(the fault space for this selection is empty)")
        self.selector = selector


def random_sample(latch_map: LatchMap, count: int, rng: random.Random,
                  with_replacement: bool = True) -> list[int]:
    """Uniform random site sample over the entire latch population.

    With replacement by default (a beam does not remember where it already
    struck); pass ``with_replacement=False`` for a distinct-site sample.
    """
    population = len(latch_map)
    if population == 0:
        raise EmptyPopulationError("the whole-core latch map")
    if with_replacement:
        return [rng.randrange(population) for _ in range(count)]
    if count > population:
        raise ValueError(f"cannot draw {count} distinct sites from {population}")
    return rng.sample(range(population), count)


def unit_sample(latch_map: LatchMap, unit: str, count: int,
                rng: random.Random) -> list[int]:
    """Uniform random sites within one micro-architectural unit."""
    indices = latch_map.indices_for_unit(unit)
    if not indices:
        raise EmptyPopulationError(f"unit {unit!r}")
    return [indices[rng.randrange(len(indices))] for _ in range(count)]


def ring_fraction_sample(latch_map: LatchMap, ring: str, fraction: float,
                         rng: random.Random) -> list[int]:
    """Sample ``fraction`` of a scan ring's bits (distinct), Figure 5 style
    ("approximately 10% of the latches in each scan chain")."""
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    indices = latch_map.indices_for_ring(ring)
    if not indices:
        raise EmptyPopulationError(f"scan ring {ring!r}")
    count = max(1, round(len(indices) * fraction))
    return rng.sample(indices, count)


def kind_sample(latch_map: LatchMap, kind: LatchKind, count: int,
                rng: random.Random) -> list[int]:
    """Uniform random sites of one latch type (MODE/GPTR/REGFILE/FUNC)."""
    indices = latch_map.indices_for_kind(kind)
    if not indices:
        raise EmptyPopulationError(f"latch kind {kind.value!r}")
    return [indices[rng.randrange(len(indices))] for _ in range(count)]


def stratified_sample(latch_map: LatchMap, per_unit: int,
                      rng: random.Random) -> list[int]:
    """Equal-count sample from every unit (for unit-vs-unit comparisons)."""
    sample: list[int] = []
    for unit in latch_map.units():
        sample.extend(unit_sample(latch_map, unit, per_unit, rng))
    return sample
