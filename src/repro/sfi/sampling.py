"""Latch-bit sampling strategies.

The paper's methodology is *statistical*: a core holds hundreds of
thousands of latch bits, so campaigns sample.  Random whole-core sampling
reproduces the beam-calibration experiment (Table 2); per-unit and
per-scan-ring sampling are the targeted modes of §3.1 and §3.2.
"""

from __future__ import annotations

import random

from repro.emulator.netlist import LatchMap
from repro.rtl.latch import LatchKind


def random_sample(latch_map: LatchMap, count: int, rng: random.Random,
                  with_replacement: bool = True) -> list[int]:
    """Uniform random site sample over the entire latch population.

    With replacement by default (a beam does not remember where it already
    struck); pass ``with_replacement=False`` for a distinct-site sample.
    """
    population = len(latch_map)
    if with_replacement:
        return [rng.randrange(population) for _ in range(count)]
    if count > population:
        raise ValueError(f"cannot draw {count} distinct sites from {population}")
    return rng.sample(range(population), count)


def unit_sample(latch_map: LatchMap, unit: str, count: int,
                rng: random.Random) -> list[int]:
    """Uniform random sites within one micro-architectural unit."""
    indices = latch_map.indices_for_unit(unit)
    return [indices[rng.randrange(len(indices))] for _ in range(count)]


def ring_fraction_sample(latch_map: LatchMap, ring: str, fraction: float,
                         rng: random.Random) -> list[int]:
    """Sample ``fraction`` of a scan ring's bits (distinct), Figure 5 style
    ("approximately 10% of the latches in each scan chain")."""
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    indices = latch_map.indices_for_ring(ring)
    count = max(1, round(len(indices) * fraction))
    return rng.sample(indices, count)


def kind_sample(latch_map: LatchMap, kind: LatchKind, count: int,
                rng: random.Random) -> list[int]:
    """Uniform random sites of one latch type (MODE/GPTR/REGFILE/FUNC)."""
    indices = latch_map.indices_for_kind(kind)
    return [indices[rng.randrange(len(indices))] for _ in range(count)]


def stratified_sample(latch_map: LatchMap, per_unit: int,
                      rng: random.Random) -> list[int]:
    """Equal-count sample from every unit (for unit-vs-unit comparisons)."""
    sample: list[int] = []
    for unit in latch_map.units():
        sample.extend(unit_sample(latch_map, unit, per_unit, rng))
    return sample
