"""Latch-bit sampling strategies.

The paper's methodology is *statistical*: a core holds hundreds of
thousands of latch bits, so campaigns sample.  Random whole-core sampling
reproduces the beam-calibration experiment (Table 2); per-unit and
per-scan-ring sampling are the targeted modes of §3.1 and §3.2.

Every drawing function takes an explicit ``random.Random`` — campaign
reproducibility (and the REPRO-D01 lint rule) forbids the implicitly
seeded module singleton.  Sampling an empty population raises
:class:`EmptyPopulationError` naming the selector, instead of the opaque
``ValueError`` ``rng.randrange(0)`` would surface.
"""

from __future__ import annotations

import random

from repro.emulator.netlist import LatchMap
from repro.rtl.latch import LatchKind


class EmptyPopulationError(ValueError):
    """A sampling request targeted a population with no latch bits.

    Raised instead of the bare ``ValueError`` that ``randrange(0)`` /
    ``sample()`` would produce, so a campaign misconfiguration (a unit
    with no latches, a kind absent from this model, an empty netlist)
    fails with the selector spelled out.
    """

    def __init__(self, selector: str) -> None:
        super().__init__(
            f"cannot sample from {selector}: it contains no latch bits "
            "(the fault space for this selection is empty)")
        self.selector = selector


def random_sample(latch_map: LatchMap, count: int, rng: random.Random,
                  with_replacement: bool = True) -> list[int]:
    """Uniform random site sample over the entire latch population.

    With replacement by default (a beam does not remember where it already
    struck); pass ``with_replacement=False`` for a distinct-site sample.
    """
    population = len(latch_map)
    if population == 0:
        raise EmptyPopulationError("the whole-core latch map")
    if with_replacement:
        return [rng.randrange(population) for _ in range(count)]
    if count > population:
        raise ValueError(f"cannot draw {count} distinct sites from {population}")
    return rng.sample(range(population), count)


def unit_sample(latch_map: LatchMap, unit: str, count: int,
                rng: random.Random) -> list[int]:
    """Uniform random sites within one micro-architectural unit."""
    indices = latch_map.indices_for_unit(unit)
    if not indices:
        raise EmptyPopulationError(f"unit {unit!r}")
    return [indices[rng.randrange(len(indices))] for _ in range(count)]


def ring_fraction_sample(latch_map: LatchMap, ring: str, fraction: float,
                         rng: random.Random) -> list[int]:
    """Sample ``fraction`` of a scan ring's bits (distinct), Figure 5 style
    ("approximately 10% of the latches in each scan chain")."""
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    indices = latch_map.indices_for_ring(ring)
    if not indices:
        raise EmptyPopulationError(f"scan ring {ring!r}")
    count = max(1, round(len(indices) * fraction))
    return rng.sample(indices, count)


def kind_sample(latch_map: LatchMap, kind: LatchKind, count: int,
                rng: random.Random) -> list[int]:
    """Uniform random sites of one latch type (MODE/GPTR/REGFILE/FUNC)."""
    indices = latch_map.indices_for_kind(kind)
    if not indices:
        raise EmptyPopulationError(f"latch kind {kind.value!r}")
    return [indices[rng.randrange(len(indices))] for _ in range(count)]


def stratified_sample(latch_map: LatchMap, per_unit: int,
                      rng: random.Random) -> list[int]:
    """Equal-count sample from every unit (for unit-vs-unit comparisons)."""
    sample: list[int] = []
    for unit in latch_map.units():
        sample.extend(unit_sample(latch_map, unit, per_unit, rng))
    return sample


def static_prior_allocation(latch_map: LatchMap, unit_bounds: dict,
                            total: int, *,
                            min_per_unit: int = 1) -> dict[str, int]:
    """Per-unit trial counts weighted by the static masking bounds.

    ``unit_bounds`` is ``StaticBounds.unit_bounds`` from
    :mod:`repro.analysis.static_bounds` (only each unit's ``bound`` is
    consulted; units the analysis never saw get bound 0).  Each unit is
    weighted by ``population_bits * (1 - bound)`` — the bits the
    analyzer could *not* prove masked, which are the only ones whose
    outcome a trial can still inform.  Equal-variance sampling over
    provably-VANISHED bits is wasted simulation; this skews trials
    toward the undecided fault space while keeping every unit at
    ``min_per_unit`` so the reconciliation gate retains a measurement
    to compare each bound against.

    Deterministic largest-remainder apportionment: the counts sum to
    ``max(total, units * min_per_unit)`` and depend only on the inputs.
    """
    units = latch_map.units()
    if not units:
        raise EmptyPopulationError("the whole-core latch map")
    weights = {}
    for unit in units:
        bits = len(latch_map.indices_for_unit(unit))
        bound = float(unit_bounds.get(unit, {}).get("bound", 0.0))
        weights[unit] = bits * max(0.0, 1.0 - bound)
    floor_total = sum(min_per_unit for _ in units)
    spread = max(total, floor_total) - floor_total
    mass = sum(weights.values())
    allocation = {unit: min_per_unit for unit in units}
    if spread and mass:
        quotas = {unit: spread * weights[unit] / mass for unit in units}
        for unit in units:
            allocation[unit] += int(quotas[unit])
        leftover = spread - sum(int(quotas[unit]) for unit in units)
        by_remainder = sorted(units,
                              key=lambda u: (-(quotas[u] - int(quotas[u])),
                                             u))
        for unit in by_remainder[:leftover]:
            allocation[unit] += 1
    return allocation


def prior_weighted_sample(latch_map: LatchMap, unit_bounds: dict,
                          total: int, rng: random.Random, *,
                          min_per_unit: int = 1) -> list[int]:
    """Stratified sample with strata sized by :func:`static_prior_allocation`.

    The draw order is the latch map's unit order, so one seeded
    ``random.Random`` reproduces the same sites across runs.
    """
    allocation = static_prior_allocation(latch_map, unit_bounds, total,
                                         min_per_unit=min_per_unit)
    sample: list[int] = []
    for unit in latch_map.units():
        sample.extend(unit_sample(latch_map, unit, allocation[unit], rng))
    return sample
