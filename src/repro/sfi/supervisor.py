"""Supervised, fault-tolerant campaign execution.

The paper's case for SFI over beam testing is that "multiple concurrent
copies of the simulation environment can be run relatively easily"
(§2.2) — which is only true if one wedged or crashed copy cannot take
hours of accumulated injections with it.  This module supervises a
campaign the way a RAS design supervises a core:

* every shard is an individually tracked job running in its own worker
  process, with a per-shard timeout;
* a failed or timed-out shard is retried with exponential backoff and,
  once its retry budget is exhausted, *split* and requeued — a straggler
  costs its own retries, never the campaign;
* completed injections stream back to the parent and are journaled
  incrementally (:class:`~repro.sfi.storage.CampaignJournal`), so a
  campaign killed at any point — worker or parent, SIGKILL included —
  resumes from the journal and produces the same merged result as an
  uninterrupted run;
* if worker processes cannot be spawned at all, the supervisor degrades
  to in-process serial execution rather than aborting.

Determinism holds across all of this because every injection is a
self-contained :class:`~repro.sfi.campaign.InjectionPlan` item whose RNG
stream is keyed by ``(seed, site, occurrence)`` — never by shard shape,
retry count or resume point.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue as queue_module
import time
from dataclasses import dataclass, field

from repro.obs.provenance import ProvenanceReport
from repro.sfi.campaign import (
    _CYCLES_SAVED_BUCKETS,
    _DETECTION_LATENCY_BUCKETS,
    _PEAK_BITS_BUCKETS,
    CampaignConfig,
    InjectionPlan,
    SfiExperiment,
    injection_rng,
    observe_provenance_metrics,
    partition_plan,
    plan_injections,
)
from repro.sfi.results import CampaignResult
from repro.sfi.service.backoff import DEFAULT_CAP, backoff_delay
from repro.sfi.service.transport import PoolTransport, ShardTransport
from repro.sfi.storage import CampaignJournal, CampaignStorageError


class CampaignExecutionError(RuntimeError):
    """A campaign could not complete without dropping injections."""


# ----------------------------------------------------------------------
# Progress observation.

class CampaignProgress:
    """Observer hook for supervised campaigns.

    Every method is a no-op; subclass and override the events you care
    about.  The supervisor guarantees that every abnormal path — retry,
    split, degradation — is reported here, so nothing fails silently.
    """

    def on_start(self, total: int, pending: int) -> None:
        """Campaign begins: ``total`` planned injections, ``pending`` of
        them still to run (the rest were recovered from a journal)."""

    def on_resume(self, recovered: int) -> None:
        """``recovered`` injections were loaded from the journal."""

    def on_record(self, position: int, record) -> None:
        """One injection completed (any execution path)."""

    def on_shard_complete(self, shard_id: int, size: int, attempt: int) -> None:
        """A shard finished all its injections."""

    def on_shard_retry(self, shard_id: int, attempt: int, reason: str,
                       delay: float) -> None:
        """A shard failed (``reason``) and will re-run after ``delay``."""

    def on_shard_split(self, shard_id: int, remaining: int) -> None:
        """A shard exhausted its retries and was split into halves."""

    def on_degrade(self, reason: str) -> None:
        """Execution fell back to in-process serial mode."""


class PrintProgress(CampaignProgress):
    """Progress observer that narrates to stdout (the CLI's default).

    Narration is rate-limited: at most one progress line per
    ``min_interval`` seconds (default 0.5s) regardless of ``every``, so
    a large fast campaign cannot flood stdout; the final line always
    prints.  Each line carries the running injections/sec and an ETA
    derived from it.
    """

    def __init__(self, every: int = 50, min_interval: float = 0.5,
                 clock=time.monotonic) -> None:
        self.every = max(1, every)
        self.min_interval = min_interval
        self._clock = clock
        self._done = 0
        self._total = 0
        self._started_at: float | None = None
        self._start_done = 0
        self._last_line = float("-inf")

    def on_start(self, total: int, pending: int) -> None:
        self._total = total
        self._done = total - pending
        self._started_at = self._clock()
        self._start_done = self._done
        if total != pending:
            print(f"[supervisor] resuming: {self._done}/{total} injections "
                  f"already journaled")

    @staticmethod
    def _format_eta(seconds: float) -> str:
        seconds = max(0, int(round(seconds)))
        if seconds < 60:
            return f"{seconds}s"
        minutes, secs = divmod(seconds, 60)
        if minutes < 60:
            return f"{minutes}m{secs:02d}s"
        hours, minutes = divmod(minutes, 60)
        return f"{hours}h{minutes:02d}m"

    def on_record(self, position: int, record) -> None:
        self._done += 1
        final = self._done == self._total
        if not final and self._done % self.every:
            return
        now = self._clock()
        if not final and now - self._last_line < self.min_interval:
            return
        self._last_line = now
        line = f"[supervisor] {self._done}/{self._total} injections"
        executed = self._done - self._start_done
        elapsed = (now - self._started_at
                   if self._started_at is not None else 0.0)
        if executed > 0 and elapsed > 0:
            rate = executed / elapsed
            line += f" ({rate:.1f} inj/s"
            if not final and rate > 0:
                remaining = (self._total - self._done) / rate
                line += f", ETA {self._format_eta(remaining)}"
            line += ")"
        print(line)

    def on_shard_retry(self, shard_id: int, attempt: int, reason: str,
                       delay: float) -> None:
        print(f"[supervisor] shard {shard_id} attempt {attempt} failed "
              f"({reason}); retrying in {delay:.2f}s")

    def on_shard_split(self, shard_id: int, remaining: int) -> None:
        print(f"[supervisor] shard {shard_id} exhausted retries; "
              f"splitting {remaining} remaining injections")

    def on_degrade(self, reason: str) -> None:
        print(f"[supervisor] degraded to serial execution: {reason}")


class TeeProgress(CampaignProgress):
    """Forward every progress event to several observers (narration and
    trace/metric sinks compose without knowing about each other)."""

    def __init__(self, *observers: CampaignProgress) -> None:
        self.observers = [obs for obs in observers if obs is not None]

    def on_start(self, total: int, pending: int) -> None:
        for observer in self.observers:
            observer.on_start(total, pending)

    def on_resume(self, recovered: int) -> None:
        for observer in self.observers:
            observer.on_resume(recovered)

    def on_record(self, position: int, record) -> None:
        for observer in self.observers:
            observer.on_record(position, record)

    def on_shard_complete(self, shard_id: int, size: int, attempt: int) -> None:
        for observer in self.observers:
            observer.on_shard_complete(shard_id, size, attempt)

    def on_shard_retry(self, shard_id: int, attempt: int, reason: str,
                       delay: float) -> None:
        for observer in self.observers:
            observer.on_shard_retry(shard_id, attempt, reason, delay)

    def on_shard_split(self, shard_id: int, remaining: int) -> None:
        for observer in self.observers:
            observer.on_shard_split(shard_id, remaining)

    def on_degrade(self, reason: str) -> None:
        for observer in self.observers:
            observer.on_degrade(reason)


# ----------------------------------------------------------------------
# Metrics instrumentation (series consumed by `repro-sfi stats`/`monitor`
# and the Prometheus/JSONL exporters in repro.obs).

_SHARD_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
                  60.0, 120.0, 300.0, float("inf"))
_QUEUE_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0,
                  60.0, float("inf"))


def _outcome_value(record) -> str:
    outcome = getattr(record, "outcome", None)
    return getattr(outcome, "value", None) or str(outcome)


class _SupervisorInstruments:
    """Supervisor-side series: shard lifecycle, failure policy, throughput."""

    def __init__(self, registry) -> None:
        self.injections = registry.counter(
            "sfi_injections_total", "completed injections by outcome",
            ("outcome",))
        self.recovered = registry.counter(
            "sfi_injections_recovered_total",
            "injections recovered from a journal on resume")
        self.rate = registry.gauge(
            "sfi_injections_per_second", "campaign injection throughput")
        self.campaign_seconds = registry.gauge(
            "sfi_campaign_seconds", "wall time of the last campaign run")
        self.shard_wall = registry.histogram(
            "sfi_shard_wall_seconds", "shard wall time by completion status",
            ("status",), buckets=_SHARD_BUCKETS)
        self.queue_wait = registry.histogram(
            "sfi_shard_queue_wait_seconds",
            "time shards spent queued (backoff included) before a worker",
            buckets=_QUEUE_BUCKETS)
        self.retries = registry.counter(
            "sfi_shard_retries_total", "shard retry attempts")
        self.splits = registry.counter(
            "sfi_shard_splits_total", "shards split after exhausted retries")
        self.degrades = registry.counter(
            "sfi_degrades_total", "fallbacks to in-process serial execution")
        self.workers_running = registry.gauge(
            "sfi_workers_running", "live worker processes")
        # Same names/shapes as the experiment-level series in
        # repro.sfi.campaign: workers run uninstrumented, so the parent
        # folds their sidecar reports into the one dashboard a serial
        # instrumented run would feed.
        self.early_exits = registry.counter(
            "sfi_early_exits_total",
            "drains ended at a golden-digest match, by exit reason",
            ("reason",))
        self.cycles_saved = registry.histogram(
            "sfi_fastpath_saved_cycles",
            "simulation cycles avoided per injection by the fast path",
            buckets=_CYCLES_SAVED_BUCKETS)
        self.detection_latency = registry.histogram(
            "sfi_detection_latency_cycles",
            "cycles from injection to first detection event",
            buckets=_DETECTION_LATENCY_BUCKETS)
        self.infection_peak = registry.histogram(
            "sfi_infection_peak_bits",
            "peak simultaneously tainted storage bits per injection",
            buckets=_PEAK_BITS_BUCKETS)
        self.taint_edges = registry.counter(
            "sfi_taint_edges_total",
            "taint propagation DAG edge traversals by unit pair",
            ("src_unit", "dst_unit"))


# ----------------------------------------------------------------------
# Worker side.

# Worker-side cache: one prepared machine per (config, process), so a
# long-lived worker re-running shards does not re-prepare the model.
_WORKER_EXPERIMENT: SfiExperiment | None = None
_WORKER_CONFIG: CampaignConfig | None = None


def _cached_experiment(config: CampaignConfig) -> SfiExperiment:
    global _WORKER_EXPERIMENT, _WORKER_CONFIG
    if _WORKER_EXPERIMENT is None or _WORKER_CONFIG != config:
        _WORKER_EXPERIMENT = SfiExperiment(config)
        _WORKER_CONFIG = config
    return _WORKER_EXPERIMENT


def run_shard(config: CampaignConfig, items: list[InjectionPlan], seed: int,
              emit) -> int:
    """Default shard runner: prepare (or reuse) a machine and execute the
    plan items, emitting each record as it completes.  Returns the latch
    population size so the parent can report coverage fractions.

    When ``emit`` carries an ``extra(kind, position, payload)`` attribute
    (the supervisor's sidecar channel), the experiment's fast-path and
    provenance payloads are forwarded through it — out of band, so the
    record stream itself stays bit-identical to a hookless run.
    """
    experiment = _cached_experiment(config)
    metrics = getattr(emit, "metrics", None)
    if metrics is not None and experiment.metrics is not metrics:
        # Remote workers run uninstrumented unless the coordinator asked
        # for telemetry; then the streamed registry rides this attribute
        # and wave/peel/fast-path series accrue worker-side.
        experiment.instrument(metrics)
    extra = getattr(emit, "extra", None)
    # Cached experiments outlive one shard: always (re)set both hooks so
    # a sidecar-less caller never inherits a previous caller's sinks.
    experiment.fastpath_hook = (
        (lambda pos, payload: extra("fast", pos, payload))
        if extra is not None else None)
    experiment.provenance_hook = (
        (lambda pos, payload: extra("prov", pos, payload))
        if extra is not None else None)
    try:
        experiment.run_plan(items, seed=seed,
                            record_hook=lambda pos, rec: emit(pos, rec))
    finally:
        experiment.fastpath_hook = None
        experiment.provenance_hook = None
    return len(experiment.latch_map)


def _shard_worker(runner, config: CampaignConfig, shard_id: int,
                  items: list[InjectionPlan], seed: int, out_queue) -> None:
    """Process entry point: run one shard, streaming records back."""
    try:
        def emit(pos, rec):
            out_queue.put(("record", shard_id, pos, rec))

        # Sidecar channel: fast-path / provenance payloads ride the same
        # queue with their own kinds ("fast", "prov").  Per-process FIFO
        # ordering guarantees they arrive before their position's record.
        emit.extra = lambda kind, pos, payload: out_queue.put(
            (kind, shard_id, pos, payload))
        population = runner(config, items, seed, emit)
        out_queue.put(("done", shard_id, population))
    except BaseException as exc:  # noqa: BLE001 - report, don't crash silently
        out_queue.put(("error", shard_id, f"{type(exc).__name__}: {exc}"))


# ----------------------------------------------------------------------
# Parent side.

# Partitioning lives in repro.sfi.campaign (the coordinator leases
# through the same cut); kept importable under its old name.
_shard_items = partition_plan


@dataclass
class _ShardJob:
    """One tracked unit of dispatch."""

    shard_id: int
    items: list[InjectionPlan]
    attempt: int = 0
    process: multiprocessing.process.BaseProcess | None = None
    deadline: float | None = None
    done_positions: set[int] = field(default_factory=set)
    queued_at: float | None = None    # when last (re)queued, for queue-wait
    started_at: float | None = None   # when last spawned, for wall time

    def remaining(self) -> list[InjectionPlan]:
        return [item for item in self.items
                if item.position not in self.done_positions]


class CampaignSupervisor:
    """Dispatch a campaign plan across supervised worker processes.

    Parameters mirror the failure policy: ``shard_timeout`` (seconds a
    shard may run before it is killed; ``None`` disables), ``max_retries``
    (re-runs of a shard before it is split), ``backoff_base`` (first retry
    delay; doubles per attempt).  ``journal`` names a JSONL journal file;
    with ``resume=True`` an existing journal is recovered and its
    positions skipped.  ``runner`` is the shard execution function
    (top-level, picklable); tests substitute fault-injecting runners.

    ``reference_cycles`` (fault-free cycle count per testcase, e.g. from
    a probe experiment) lets the parent pre-sort the pending plan by
    (testcase, injection cycle) before sharding, so each fast-path
    worker sees a narrow monotone cycle band and its checkpoint-ladder
    rungs stay warm.  The sort is purely a scheduling hint: every plan
    item is self-contained, so the merged result is bit-identical with
    or without it.
    """

    def __init__(self, config: CampaignConfig, *,
                 workers: int | None = None,
                 shard_timeout: float | None = None,
                 max_retries: int = 2,
                 backoff_base: float = 0.25,
                 backoff_cap: float = DEFAULT_CAP,
                 journal: str | os.PathLike | None = None,
                 resume: bool = False,
                 population_bits: int = 0,
                 progress: CampaignProgress | None = None,
                 runner=run_shard,
                 metrics=None,
                 mp_context: str = "spawn",
                 reference_cycles: list[int] | None = None,
                 transport: ShardTransport | None = None,
                 trace=None) -> None:
        self.config = config
        self.workers = workers if workers is not None \
            else min(4, os.cpu_count() or 1)
        self.shard_timeout = shard_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.journal_path = journal
        self.resume = resume
        self.population_bits = population_bits
        self.progress = progress or CampaignProgress()
        self.runner = runner
        self.metrics = metrics
        self._inst = (_SupervisorInstruments(metrics)
                      if metrics is not None else None)
        self._mp_context = mp_context
        self.reference_cycles = reference_cycles
        #: Shard execution back end (see repro.sfi.service.transport):
        #: the in-process pool by default, the TCP lease coordinator for
        #: multi-host campaigns.  Items a transport cannot run fall back
        #: to the pool.
        self.transport = transport if transport is not None \
            else PoolTransport()
        #: Optional fleet span recorder (repro.obs.fleet.SpanRecorder).
        #: Purely observational: the campaign root span opens in
        #: run_plan, the transport hangs queue-wait/lease spans off it,
        #: and merged worker spans land in ``transport.worker_spans``.
        self.trace = trace
        self.trace_root: str | None = None
        self._ids = itertools.count()
        self._degraded = False
        self._journal: CampaignJournal | None = None
        #: Merged provenance aggregate of the last run (None unless
        #: ``config.provenance``); per-position payloads in
        #: ``provenance_payloads``.  Commutative folding makes both
        #: identical across worker counts and arrival orders.
        self.provenance_report: ProvenanceReport | None = None
        self.provenance_payloads: dict[int, dict] = {}

    # -- public entry points ------------------------------------------

    def run(self, sites: list[int], seed: int = 0) -> CampaignResult:
        """Run ``sites`` as a supervised campaign (see module docstring)."""
        plan = plan_injections(sites, self.config.suite_size)
        return self.run_plan(plan, seed)

    def run_plan(self, plan: list[InjectionPlan],
                 seed: int = 0) -> CampaignResult:
        journal, records = self._open_journal(plan, seed)
        self._journal = journal
        inst = self._inst
        if self.trace is not None:
            from repro.obs.fleet import FleetSpanPhase
            self.trace_root = self.trace.begin(FleetSpanPhase.CAMPAIGN)
        started = time.perf_counter()
        executed = 0
        report = self.provenance_report = (
            ProvenanceReport() if self.config.provenance else None)
        self.provenance_payloads = {}
        pending_fastpath: dict[int, dict] = {}
        if inst is not None and records:
            inst.recovered.inc(len(records))
        try:
            pending = [item for item in plan if item.position not in records]
            pending = self._cycle_sorted(pending, seed)
            self.progress.on_start(len(plan), len(pending))

            def collect(position: int, record, fence: int | None = None) -> None:
                nonlocal executed
                records[position] = record
                sidecar = pending_fastpath.pop(position, None)
                if journal is not None:
                    journal.append(
                        position, record,
                        extra={"fastpath": sidecar} if sidecar else None,
                        fence=fence)
                if inst is not None:
                    executed += 1
                    inst.injections.inc(outcome=_outcome_value(record))
                    if sidecar is not None:
                        inst.cycles_saved.observe(sidecar["saved_cycles"])
                        if "exit" in sidecar:
                            inst.early_exits.inc(reason=sidecar["exit"])
                    elapsed = time.perf_counter() - started
                    if elapsed > 0:
                        inst.rate.set(executed / elapsed)
                self.progress.on_record(position, record)

            def absorb_extra(kind: str, position: int,
                             payload: dict) -> None:
                if kind == "fast":
                    pending_fastpath[position] = payload
                elif kind == "prov" \
                        and position not in self.provenance_payloads:
                    # First arrival wins: a retried shard re-reports the
                    # same deterministic payload, and folding it twice
                    # would double-count the aggregate.
                    self.provenance_payloads[position] = payload
                    if report is not None:
                        report.absorb(payload)
                    if inst is not None:
                        observe_provenance_metrics(inst, payload)

            # The serial/degraded path hands `collect` straight to the
            # runner as its emit, so the sidecar channel rides the same
            # attribute the worker-side emit exposes.
            collect.extra = absorb_extra

            if pending:
                leftover = self.transport.execute(self, pending, seed,
                                                  collect)
                if leftover:
                    # The transport gave work back (e.g. every remote
                    # worker was lost): degrade to the in-process pool
                    # mid-campaign rather than dropping records.
                    leftover = [item for item in leftover
                                if item.position not in records]
                    leftover.sort(key=lambda item: item.position)
                if leftover:
                    self._degraded = True
                    if inst is not None:
                        inst.degrades.inc()
                    self.progress.on_degrade(
                        f"transport {self.transport.name!r} returned "
                        f"{len(leftover)} injections; running in-process")
                    self.run_pool(leftover, seed, collect)

            missing = [item.position for item in plan
                       if item.position not in records]
            if missing:
                raise CampaignExecutionError(
                    f"campaign dropped {len(missing)} injections "
                    f"(positions {missing[:5]}...)")
            result = CampaignResult(population_bits=self.population_bits)
            for position in sorted(records):
                result.add(records[position])
            return result
        finally:
            self.transport.close()
            if self.trace is not None and self.trace_root is not None:
                self.trace.finish(self.trace_root)
                self.trace.finish_all()  # no span outlives the campaign
            if inst is not None:
                inst.campaign_seconds.set(time.perf_counter() - started)
                inst.workers_running.set(0)
            if journal is not None:
                journal.close()
            self._journal = None

    def _cycle_sorted(self, pending: list[InjectionPlan],
                      seed: int) -> list[InjectionPlan]:
        """Order pending items by (testcase, injection cycle) when the
        fast path is on and per-testcase reference lengths are known, so
        contiguous shards carry monotone cycle bands (warm ladder rungs
        in every worker).  Records are order-independent (each item's
        RNG stream is self-contained), so this never changes results."""
        cycles = self.reference_cycles
        if not cycles or not self.config.fastpath:
            return pending

        def key(item: InjectionPlan) -> tuple[int, int, int]:
            length = cycles[item.testcase_index % len(cycles)]
            inject = injection_rng(seed, item.site_index, item.occurrence) \
                .randrange(0, length) if length > 0 else 0
            return (item.testcase_index, inject, item.position)

        return sorted(pending, key=key)

    # -- journal ------------------------------------------------------

    def _open_journal(self, plan: list[InjectionPlan],
                      seed: int) -> tuple[CampaignJournal | None, dict]:
        if self.journal_path is None:
            return None, {}
        if self.resume and os.path.exists(self.journal_path):
            journal, covered = CampaignJournal.recover(self.journal_path)
            header = journal.header
            if header.get("seed") != seed or \
                    header.get("total_sites") != len(plan):
                raise CampaignStorageError(
                    f"{self.journal_path}: journal is for a different "
                    f"campaign (seed={header.get('seed')}, "
                    f"total={header.get('total_sites')}; this run has "
                    f"seed={seed}, total={len(plan)})")
            self.population_bits = self.population_bits or \
                header.get("population_bits", 0)
            # Drop journaled positions beyond the plan defensively.
            covered = {pos: rec for pos, rec in covered.items()
                       if 0 <= pos < len(plan)}
            self.progress.on_resume(len(covered))
            return journal, covered
        journal = CampaignJournal.create(
            self.journal_path, seed=seed, total_sites=len(plan),
            population_bits=self.population_bits,
            meta={"suite_size": self.config.suite_size})
        return journal, {}

    # -- in-process pool (PoolTransport's back end) --------------------

    def run_pool(self, items: list[InjectionPlan], seed: int,
                 collect) -> None:
        """Execute ``items`` on the in-process engine: serial below two
        workers, the supervised multiprocessing pool otherwise.  Also
        the fallback for items a remote transport hands back."""
        if not items:
            return
        span = None
        if self.trace is not None:
            from repro.obs.fleet import FleetSpanPhase
            span = self.trace.begin(FleetSpanPhase.POOL_EXECUTE,
                                    parent_id=self.trace_root)
        try:
            if self.workers <= 1:
                self._run_serial(items, seed, collect)
            else:
                self._run_supervised(items, seed, collect)
        finally:
            if span is not None:
                self.trace.finish(span)

    def raise_fence(self, token: int) -> None:
        """Revoke a lease issue's fencing token at the journal (the
        coordinator calls this when it reclaims a lease, so a stale
        writer surfacing later cannot double-journal its records)."""
        if self._journal is not None:
            self._journal.raise_fence(token)

    # -- serial / degraded path ---------------------------------------

    def _run_serial(self, items: list[InjectionPlan], seed: int,
                    collect) -> None:
        start = time.monotonic()
        population = self.runner(self.config, items, seed, collect)
        if self._inst is not None:
            self._inst.shard_wall.observe(time.monotonic() - start,
                                          status="serial")
        if not self.population_bits and isinstance(population, int):
            self.population_bits = population

    def _degrade(self, reason: str, jobs: list[_ShardJob], seed: int,
                 collect) -> None:
        self._degraded = True
        if self._inst is not None:
            self._inst.degrades.inc()
        self.progress.on_degrade(reason)
        remaining = [item for job in jobs for item in job.remaining()]
        remaining.sort(key=lambda item: item.position)
        self._run_serial(remaining, seed, collect)

    # -- supervised pool ----------------------------------------------

    def _spawn(self, job: _ShardJob, seed: int, out_queue) -> None:
        """Start one worker process for ``job`` (patchable in tests)."""
        context = multiprocessing.get_context(self._mp_context)
        process = context.Process(
            target=_shard_worker,
            args=(self.runner, self.config, job.shard_id, job.remaining(),
                  seed, out_queue),
            daemon=True)
        process.start()
        job.process = process
        now = time.monotonic()
        if self._inst is not None and job.queued_at is not None:
            self._inst.queue_wait.observe(now - job.queued_at)
        job.started_at = now
        job.deadline = (now + self.shard_timeout
                        if self.shard_timeout else None)

    def _run_supervised(self, items: list[InjectionPlan], seed: int,
                        collect) -> None:
        shards = _shard_items(items, min(self.workers, len(items)))
        now = time.monotonic()
        todo: list[_ShardJob] = [
            _ShardJob(shard_id=next(self._ids), items=shard, queued_at=now)
            for shard in shards]
        context = multiprocessing.get_context(self._mp_context)
        out_queue = context.Queue()
        running: dict[int, _ShardJob] = {}
        backoff_until: dict[int, float] = {}
        inst = self._inst

        def observe_shard_end(job: _ShardJob, status: str) -> None:
            if inst is not None and job.started_at is not None:
                inst.shard_wall.observe(time.monotonic() - job.started_at,
                                        status=status)
                job.started_at = None

        def fail(job: _ShardJob, reason: str) -> None:
            """Retry, split, or degrade one failed shard."""
            observe_shard_end(job, "failed")
            job.process = None
            job.attempt += 1
            remaining = job.remaining()
            if not remaining:
                # Every record arrived before the worker died; treat the
                # shard as complete.
                self.progress.on_shard_complete(
                    job.shard_id, len(job.items), job.attempt)
                return
            if job.attempt <= self.max_retries:
                delay = backoff_delay(self.backoff_base, job.attempt,
                                      cap=self.backoff_cap, seed=seed,
                                      stream=job.shard_id)
                if inst is not None:
                    inst.retries.inc()
                self.progress.on_shard_retry(
                    job.shard_id, job.attempt, reason, delay)
                backoff_until[job.shard_id] = time.monotonic() + delay
                job.queued_at = time.monotonic()
                todo.append(job)
                return
            if len(remaining) > 1:
                if inst is not None:
                    inst.splits.inc()
                self.progress.on_shard_split(job.shard_id, len(remaining))
                half = len(remaining) // 2
                for piece in (remaining[:half], remaining[half:]):
                    todo.append(_ShardJob(shard_id=next(self._ids),
                                          items=piece,
                                          queued_at=time.monotonic()))
                return
            # A single injection that keeps failing in workers: last
            # resort is running it in-process — loud failure if even
            # that raises, never a silent drop.
            if inst is not None:
                inst.degrades.inc()
            self.progress.on_degrade(
                f"shard {job.shard_id} (1 injection) exhausted "
                f"{self.max_retries} retries; running in-process")
            self._degraded = True
            self._run_serial(remaining, seed, collect)

        def handle(message) -> None:
            kind, shard_id = message[0], message[1]
            job = running.get(shard_id)
            if kind == "record":
                _, _, position, record = message
                if job is not None:
                    job.done_positions.add(position)
                collect(position, record)
            elif kind in ("fast", "prov"):
                _, _, position, payload = message
                collect.extra(kind, position, payload)
            elif kind == "done" and job is not None:
                _, _, population = message
                if not self.population_bits and isinstance(population, int):
                    self.population_bits = population
                observe_shard_end(job, "ok")
                self._reap(job)
                del running[shard_id]
                self.progress.on_shard_complete(
                    shard_id, len(job.items), job.attempt + 1)
            elif kind == "error" and job is not None:
                self._reap(job)
                del running[shard_id]
                fail(job, message[2])

        def settle(job: _ShardJob, grace: float) -> bool:
            """Give a dead/killed worker's queued messages ``grace``
            seconds to surface; True if the shard completed after all."""
            deadline = time.monotonic() + grace
            while job.shard_id in running and time.monotonic() < deadline:
                try:
                    handle(out_queue.get(timeout=0.05))
                except queue_module.Empty:
                    break
            return job.shard_id not in running

        while todo or running:
            if inst is not None:
                inst.workers_running.set(len(running))
            # Launch whatever fits, respecting per-shard backoff.
            now = time.monotonic()
            launchable = [job for job in todo
                          if backoff_until.get(job.shard_id, 0) <= now]
            while launchable and len(running) < self.workers:
                job = launchable.pop(0)
                todo.remove(job)
                try:
                    self._spawn(job, seed, out_queue)
                except OSError as exc:
                    # The pool itself is broken (fork/spawn failure):
                    # stop every worker and finish in-process.
                    job.process = None
                    for other in running.values():
                        if other.process is not None:
                            other.process.kill()
                            other.process.join()
                    while True:  # salvage already-reported records
                        try:
                            handle(out_queue.get_nowait())
                        except queue_module.Empty:
                            break
                    self._degrade(f"cannot spawn workers ({exc})",
                                  [job] + todo + list(running.values()),
                                  seed, collect)
                    return
                running[job.shard_id] = job

            if not running:
                # Everything pending is backing off; sleep it out.
                wake = min(backoff_until.get(job.shard_id, now)
                           for job in todo)
                time.sleep(max(0.0, min(wake - now, 0.2)))
                continue

            # Drain worker messages (records stream in continuously, so a
            # later crash only loses the not-yet-reported tail).
            try:
                handle(out_queue.get(timeout=0.05))
                continue
            except queue_module.Empty:
                pass

            # No message pending: check deadlines and silent deaths.
            now = time.monotonic()
            for shard_id, job in list(running.items()):
                process = job.process
                if shard_id not in running or process is None:
                    continue
                if job.deadline is not None and now > job.deadline:
                    process.kill()
                    process.join()
                    if not settle(job, grace=0.2):
                        del running[shard_id]
                        fail(job, f"timed out after {self.shard_timeout:.1f}s")
                elif not process.is_alive():
                    # Died without an error message (e.g. SIGKILL, OOM).
                    process.join()
                    if not settle(job, grace=0.5):
                        del running[shard_id]
                        fail(job, f"worker died (exit {process.exitcode})")

    @staticmethod
    def _reap(job: _ShardJob) -> None:
        if job.process is not None:
            job.process.join(timeout=5)
            if job.process.is_alive():
                job.process.kill()
                job.process.join()
            job.process = None


def run_supervised_campaign(config: CampaignConfig, sites: list[int],
                            seed: int = 0, **kwargs) -> CampaignResult:
    """Convenience wrapper: build a :class:`CampaignSupervisor` and run."""
    supervisor = CampaignSupervisor(config, **kwargs)
    return supervisor.run(sites, seed)
