"""Campaign persistence.

Real injection campaigns run for hours and accumulate across sessions;
results are stored as JSON-lines (one record per line, with the full
cause-and-effect trace) so later analysis, merging and re-scoring need
no re-simulation.

Two on-disk shapes share the line format:

* **archives** (:func:`save_campaign` / :func:`load_campaign`) — written
  once after a campaign finishes, with a header that records how many
  lines must follow; a short read is an error.
* **journals** (:class:`CampaignJournal`) — appended one record at a
  time *while* the campaign runs.  A crash can leave a torn final line,
  so journal recovery tolerates exactly that (and nothing else): the
  fragment is skipped with a warning and its injection re-runs on
  resume.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.cpu.events import EventKind, MachineEvent
from repro.rtl.latch import LatchKind

from repro.sfi.outcomes import Outcome
from repro.sfi.results import CampaignResult, InjectionRecord

_FORMAT_VERSION = 1
_JOURNAL_FORMAT_VERSION = 1
_JOURNAL_KIND = "sfi-journal"

# fsync the journal every N appended records (and at close); each record
# is flushed to the OS immediately, this only bounds data loss on power
# failure without paying a sync per injection.
_JOURNAL_SYNC_EVERY = 64


class CampaignStorageError(ValueError):
    """A campaign file is missing, malformed, truncated or from an
    unsupported format version."""


class FencedAppendError(CampaignStorageError):
    """An append carried a revoked fencing token.

    Raised when a record arrives under a lease issue that the
    coordinator has already reclaimed — the classic stale-writer-after-
    partition race.  The record is rejected *before* it reaches the
    file, so the journal never double-counts an injection.
    """


def _record_to_dict(record: InjectionRecord) -> dict:
    return {
        "site_index": record.site_index,
        "site_name": record.site_name,
        "unit": record.unit,
        "kind": record.kind.value,
        "ring": record.ring,
        "testcase_seed": record.testcase_seed,
        "inject_cycle": record.inject_cycle,
        "outcome": record.outcome.value,
        "trace": [[event.cycle, event.kind.value, event.detail]
                  for event in record.trace],
    }


def _record_from_dict(payload: dict) -> InjectionRecord:
    try:
        return InjectionRecord(
            site_index=payload["site_index"],
            site_name=payload["site_name"],
            unit=payload["unit"],
            kind=LatchKind(payload["kind"]),
            ring=payload["ring"],
            testcase_seed=payload["testcase_seed"],
            inject_cycle=payload["inject_cycle"],
            outcome=Outcome(payload["outcome"]),
            trace=tuple(MachineEvent(cycle, EventKind(kind), detail)
                        for cycle, kind, detail in payload.get("trace", [])),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise CampaignStorageError(
            f"campaign record is missing or has a bad field: {exc!r}") from exc


def _parse_line(path: Path, number: int, line: str, *, is_last: bool):
    """Parse one record line; a torn *final* line (crash mid-append) is
    skipped with a warning, anything else malformed is an error."""
    try:
        return json.loads(line)
    except json.JSONDecodeError as exc:
        if is_last:
            warnings.warn(
                f"{path}: skipping truncated trailing line {number} "
                f"(crash mid-write?)", RuntimeWarning, stacklevel=3)
            return None
        raise CampaignStorageError(
            f"{path}:{number}: malformed JSON line: {exc}") from exc


def save_campaign(result: CampaignResult, path: str | Path) -> None:
    """Write a campaign as JSON-lines (header line + one line/record)."""
    path = Path(path)
    with path.open("w") as handle:
        header = {"format": _FORMAT_VERSION,
                  "population_bits": result.population_bits,
                  "records": result.total}
        handle.write(json.dumps(header) + "\n")
        for record in result.records:
            handle.write(json.dumps(_record_to_dict(record)) + "\n")


def load_campaign(path: str | Path) -> CampaignResult:
    """Read a campaign written by :func:`save_campaign`.

    Raises :class:`CampaignStorageError` (a ``ValueError``) on an empty
    file, unknown format version, malformed line or short record count; a
    torn trailing line is skipped with a warning before the count check.
    """
    path = Path(path)
    with path.open() as handle:
        lines = handle.readlines()
    if not lines or not lines[0].strip():
        raise CampaignStorageError(f"{path}: empty campaign file")
    header = _parse_line(path, 1, lines[0], is_last=len(lines) == 1)
    if not isinstance(header, dict) or header.get("format") != _FORMAT_VERSION:
        got = header.get("format") if isinstance(header, dict) else header
        raise CampaignStorageError(
            f"{path}: unsupported campaign format {got!r} "
            f"(this build reads version {_FORMAT_VERSION})")
    result = CampaignResult(population_bits=header.get("population_bits", 0))
    body = [(number, line) for number, line in enumerate(lines[1:], start=2)
            if line.strip()]
    for offset, (number, line) in enumerate(body):
        payload = _parse_line(path, number, line,
                              is_last=offset == len(body) - 1)
        if payload is not None:
            result.add(_record_from_dict(payload))
    if result.total != header.get("records", result.total):
        raise CampaignStorageError(
            f"{path}: truncated campaign file "
            f"({result.total} of {header['records']} records)")
    return result


def merge_campaigns(paths: list[str | Path]) -> CampaignResult:
    """Merge several stored campaigns (e.g. parallel shards, or sessions
    accumulated across days) into one result."""
    merged = CampaignResult()
    for path in paths:
        loaded = load_campaign(path)
        merged.population_bits = merged.population_bits or loaded.population_bits
        merged.records.extend(loaded.records)
    return merged


def read_journal(path: str | Path, record_decoder=None,
                 kind: str = _JOURNAL_KIND) -> tuple[dict, dict]:
    """Read a journal without reopening it for writing.

    Returns ``(header, covered)`` exactly as :meth:`CampaignJournal.recover`
    would decode them, but never rewrites the file, drops no torn tail
    and opens no append handle — safe on a journal another process is
    still appending to (``repro-sfi trace --journal`` / ``monitor``).
    A torn final line is simply skipped.
    """
    path = Path(path)
    decoder = record_decoder or _record_from_dict
    try:
        with path.open() as handle:
            lines = handle.readlines()
    except FileNotFoundError as exc:
        raise CampaignStorageError(f"{path}: no such journal") from exc
    if not lines or not lines[0].strip():
        raise CampaignStorageError(f"{path}: empty journal")
    header = _parse_line(path, 1, lines[0], is_last=len(lines) == 1)
    if (not isinstance(header, dict)
            or header.get("format") != _JOURNAL_FORMAT_VERSION
            or header.get("kind") != kind):
        raise CampaignStorageError(
            f"{path}: not a {kind} journal this build can read "
            f"(header {header!r})")
    covered: dict[int, object] = {}
    body = [(number, line) for number, line in enumerate(lines[1:], 2)
            if line.strip()]
    for offset, (number, line) in enumerate(body):
        payload = _parse_line(path, number, line,
                              is_last=offset == len(body) - 1)
        if payload is None:
            continue
        if "pos" not in payload or "record" not in payload:
            raise CampaignStorageError(
                f"{path}:{number}: journal line missing pos/record")
        covered[payload["pos"]] = decoder(payload["record"])
    return header, covered


# ----------------------------------------------------------------------
# Incremental consumption: byte-offset cursors for live tailing.
#
# `repro-sfi monitor` and the warehouse tailer both poll a journal that
# another process is appending to.  Re-reading the whole file per poll is
# O(records) per poll — quadratic over a campaign — so consumers keep a
# `JournalCursor` and ask only for what arrived since.  The cursor only
# ever advances over *newline-terminated* lines: a torn tail (a crash or
# an append caught mid-`write`) is left unconsumed and re-examined on the
# next poll, which is exactly the "verified tail" rule `verify_journal`
# enforces offline.  Readers never write the journal.


#: Tail-window length of :attr:`JournalCursor.check` — the checksum
#: covers the last ``min(offset, 64)`` consumed bytes.  64 bytes spans
#: at least the tail of the previous line, which is what distinguishes
#: "same journal, grown" from "rewritten journal that happens to be at
#: least as long" (shrink-then-grow between polls).
_CURSOR_CHECK_BYTES = 64


def _cursor_check(tail: bytes) -> str:
    """Checksum of the consumed tail window (empty tail -> '')."""
    if not tail:
        return ""
    return "sha256:" + hashlib.sha256(tail).hexdigest()[:16]


@dataclass
class JournalCursor:
    """Resumable read position in an append-only JSON-lines journal.

    ``offset`` counts bytes of complete (newline-terminated) lines
    already consumed, ``line`` counts those lines, and ``header`` caches
    the decoded header once line 1 has been consumed.  ``check`` is a
    checksum over the last :data:`_CURSOR_CHECK_BYTES` consumed bytes:
    a bare size comparison cannot see a journal that was rewritten
    shorter *and then grew past the cursor* between two polls, but the
    rewrite changes the bytes under the cursor, so the checksum does.
    The cursor is a plain value: persist it (e.g. the warehouse stores
    it per campaign) and resume scanning later, across processes.
    """

    offset: int = 0
    line: int = 0
    header: dict | None = None
    check: str = ""

    def to_dict(self) -> dict:
        return {"offset": self.offset, "line": self.line,
                "header": self.header, "check": self.check}

    @classmethod
    def from_dict(cls, payload: dict) -> "JournalCursor":
        return cls(offset=int(payload.get("offset", 0)),
                   line=int(payload.get("line", 0)),
                   header=payload.get("header"),
                   check=str(payload.get("check", "") or ""))


@dataclass
class JournalDelta:
    """What one :func:`scan_journal` poll produced.

    ``entries`` holds ``(line_number, payload)`` for every complete,
    well-formed JSON-object line (payload-level ``pos``/``record``
    validation is the caller's job — the monitor and the warehouse skip
    different subsets).  ``skipped`` lists line numbers of complete lines
    that failed to decode — interior corruption, never the torn tail,
    which by construction lacks its newline and is not consumed at all.
    ``rewound`` reports that the file shrank below the cursor — or was
    rewritten under it: the tail checksum no longer matches even though
    the size grew back (journal recovery rewrote it) — so the caller
    must discard derived state.
    """

    entries: list = field(default_factory=list)
    skipped: list = field(default_factory=list)
    rewound: bool = False


def scan_journal(path: str | Path, cursor: JournalCursor, *,
                 kind: str = _JOURNAL_KIND) -> JournalDelta:
    """Read journal lines appended since ``cursor``, advancing it.

    Only newline-terminated bytes are consumed; a torn final line stays
    un-consumed until a later append completes it (or recovery drops
    it — the resulting shrink is detected and reported as ``rewound``
    after resetting the cursor to the start).  A rewrite the poll never
    *saw* as a shrink — the file shrank and then grew past the cursor
    between two polls — is caught the same way: the consumed tail bytes
    under the cursor no longer match :attr:`JournalCursor.check`.  On
    the first poll the header line is validated against ``kind`` (pass
    ``kind=None`` to accept any journal header); a malformed or foreign
    header raises :class:`CampaignStorageError` and leaves the cursor
    untouched.
    """
    path = Path(path)
    try:
        with path.open("rb") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            rewound = False
            tail = b""
            if size < cursor.offset:
                rewound = True
            elif cursor.offset:
                window = min(_CURSOR_CHECK_BYTES, cursor.offset)
                handle.seek(cursor.offset - window)
                tail = handle.read(window)
                if cursor.check and _cursor_check(tail) != cursor.check:
                    rewound = True  # shrink-then-grow between polls
                    tail = b""
            if rewound:
                cursor.offset = 0
                cursor.line = 0
                cursor.header = None
                cursor.check = ""
            handle.seek(cursor.offset)
            chunk = handle.read()
    except FileNotFoundError as exc:
        raise CampaignStorageError(f"{path}: no such journal") from exc
    delta = JournalDelta(rewound=rewound)
    cut = chunk.rfind(b"\n")
    if cut < 0:
        return delta
    complete = chunk[:cut + 1]
    lines = complete.split(b"\n")[:-1]
    header = cursor.header
    start_line = cursor.line
    for index, raw in enumerate(lines):
        number = start_line + index + 1
        if not raw.strip():
            continue
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            if number == 1:
                raise CampaignStorageError(
                    f"{path}:1: malformed journal header: {exc}") from exc
            delta.skipped.append(number)
            continue
        if number == 1:
            if (not isinstance(payload, dict)
                    or payload.get("format") != _JOURNAL_FORMAT_VERSION
                    or (kind is not None and payload.get("kind") != kind)):
                raise CampaignStorageError(
                    f"{path}: not a {kind or 'journal'} this build can "
                    f"read (header {payload!r})")
            header = payload
            continue
        if not isinstance(payload, dict):
            delta.skipped.append(number)
            continue
        delta.entries.append((number, payload))
    cursor.offset += len(complete)
    cursor.line += len(lines)
    cursor.header = header
    cursor.check = _cursor_check((tail + complete)[-_CURSOR_CHECK_BYTES:])
    return delta


# ----------------------------------------------------------------------
# Stable record -> row flattening (the warehouse's ingest contract).

#: Column order produced by :func:`record_to_row`.  The warehouse's
#: ``records`` table stores exactly these columns (plus its own
#: ``campaign_id``/``pos``/fast-path columns); renaming, reordering or
#: retyping any of them is a ``repro.warehouse.schema.SCHEMA_VERSION``
#: bump (lint rule REPRO-S01 enforces the fingerprint).
RECORD_ROW_FIELDS = (
    "site_index", "site_name", "unit", "kind", "ring", "testcase_seed",
    "inject_cycle", "outcome", "trace_events", "detector",
    "detect_latency",
)

_DETECTION_EVENT_KINDS = (
    EventKind.ERROR_DETECTED, EventKind.CORRECTED_LOCAL,
    EventKind.HANG_DETECTED, EventKind.CHECKSTOP,
)


def record_to_row(record: InjectionRecord) -> tuple:
    """Flatten one :class:`InjectionRecord` to the stable warehouse row.

    ``detector``/``detect_latency`` replicate
    :func:`repro.analysis.tracing.detection_event` semantics (first
    detection-class event *after* the injection event; detector name is
    the first word of the event detail) — duplicated here rather than
    imported so the storage layer stays free of analysis imports.
    """
    detector = None
    latency = None
    seen_injection = False
    for event in record.trace:
        if event.kind is EventKind.INJECTION:
            seen_injection = True
            continue
        if seen_injection and event.kind in _DETECTION_EVENT_KINDS:
            detector = event.detail.split(" ")[0]
            latency = event.cycle - record.inject_cycle
            break
    return (record.site_index, record.site_name, record.unit,
            record.kind.value, record.ring, record.testcase_seed,
            record.inject_cycle, record.outcome.value, len(record.trace),
            detector, latency)


def record_from_dict(payload: dict) -> InjectionRecord:
    """Decode one journaled ``record`` payload (public alias used by the
    warehouse and by pure-Python cross-check folds in tests/CI)."""
    return _record_from_dict(payload)


# ----------------------------------------------------------------------
# Incremental journal: the supervisor's crash-consistent record stream.

class CampaignJournal:
    """Append-only JSON-lines journal of completed injections.

    One header line describes the campaign (seed, planned total, format
    version); every completed injection then appends one line carrying
    its campaign ``position`` alongside the record, written in a single
    ``write`` call and flushed immediately.  A campaign killed at any
    point — even mid-``write`` — recovers by :meth:`recover`: complete
    lines are kept, a torn final line is dropped, and the supervisor
    re-runs exactly the positions that are missing.
    """

    def __init__(self, path: str | Path, header: dict,
                 handle=None) -> None:
        self.path = Path(path)
        self.header = header
        self._handle = handle
        self._since_sync = 0
        # Fencing state: tokens are drawn from one monotonically
        # increasing counter (repro.sfi.service.leases); a token is
        # revoked exactly when its lease issue is reclaimed.  Appends
        # that still carry a revoked token are stale by construction.
        self._revoked_tokens: set[int] = set()
        self._fence = 0  # highest revoked token, for diagnostics

    # -- creation / recovery ------------------------------------------

    @classmethod
    def create(cls, path: str | Path, *, seed: int, total_sites: int,
               population_bits: int = 0, meta: dict | None = None,
               kind: str = _JOURNAL_KIND) -> "CampaignJournal":
        """Start a fresh journal (truncating any previous file)."""
        path = Path(path)
        header = {"format": _JOURNAL_FORMAT_VERSION, "kind": kind,
                  "seed": seed, "total_sites": total_sites,
                  "population_bits": population_bits}
        if meta:
            header["meta"] = meta
        handle = path.open("w")
        handle.write(json.dumps(header) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
        return cls(path, header, handle)

    @classmethod
    def recover(cls, path: str | Path,
                record_decoder=None,
                kind: str = _JOURNAL_KIND) -> tuple["CampaignJournal", dict]:
        """Reopen an interrupted journal for resumption.

        Returns ``(journal, covered)`` where ``covered`` maps campaign
        position -> decoded record for every complete line; the journal
        is reopened for appending (after dropping any torn final line).
        """
        path = Path(path)
        decoder = record_decoder or _record_from_dict
        try:
            with path.open() as handle:
                lines = handle.readlines()
        except FileNotFoundError as exc:
            raise CampaignStorageError(
                f"{path}: no journal to resume from") from exc
        if not lines or not lines[0].strip():
            raise CampaignStorageError(f"{path}: empty journal")
        header = _parse_line(path, 1, lines[0], is_last=len(lines) == 1)
        if (not isinstance(header, dict)
                or header.get("format") != _JOURNAL_FORMAT_VERSION
                or header.get("kind") != kind):
            raise CampaignStorageError(
                f"{path}: not a {kind} journal this build can read "
                f"(header {header!r})")
        covered: dict[int, object] = {}
        keep = [lines[0]]
        body = [(number, line) for number, line in enumerate(lines[1:], 2)
                if line.strip()]
        for offset, (number, line) in enumerate(body):
            payload = _parse_line(path, number, line,
                                  is_last=offset == len(body) - 1)
            if payload is None:
                continue
            if "pos" not in payload or "record" not in payload:
                raise CampaignStorageError(
                    f"{path}:{number}: journal line missing pos/record")
            covered[payload["pos"]] = decoder(payload["record"])
            keep.append(line if line.endswith("\n") else line + "\n")
        # Rewrite without the torn tail so future appends start clean.
        if len(keep) != len(lines):
            with path.open("w") as handle:
                handle.writelines(keep)
                handle.flush()
                os.fsync(handle.fileno())
        handle = path.open("a")
        return cls(path, header, handle), covered

    # -- appending -----------------------------------------------------

    def raise_fence(self, token: int) -> None:
        """Revoke fencing token ``token`` (the coordinator calls this
        when it reclaims a lease issue, *before* re-granting the work).
        Any later :meth:`append` still carrying the token raises
        :class:`FencedAppendError` instead of reaching the file."""
        if token > 0:
            self._revoked_tokens.add(token)
            self._fence = max(self._fence, token)

    def append(self, position: int, record, record_encoder=None,
               extra: dict | None = None,
               fence: int | None = None) -> None:
        """Journal one completed injection (atomic single-line append).

        ``extra`` merges additional top-level keys into the line (e.g.
        the fast-path ``{"fastpath": {...}}`` sidecar); readers that only
        know ``pos``/``record`` skip them, so the format stays backward
        and forward compatible.  ``pos`` and ``record`` cannot be
        overridden.

        ``fence`` is the fencing token of the lease issue that produced
        the record (None for non-leased execution).  A revoked token
        (see :meth:`raise_fence`) raises :class:`FencedAppendError` and
        writes nothing.  The token itself is **not** written: journal
        bytes stay identical to a single-process run, and lease history
        lives in the ``.leases`` sidecar instead.
        """
        if self._handle is None:
            raise CampaignStorageError(f"{self.path}: journal is closed")
        if fence is not None and fence in self._revoked_tokens:
            raise FencedAppendError(
                f"{self.path}: append for position {position} carried "
                f"revoked fencing token {fence} (high-water {self._fence})")
        encoder = record_encoder or _record_to_dict
        payload = dict(extra) if extra else {}
        payload["pos"] = position
        payload["record"] = encoder(record)
        line = json.dumps(payload)
        self._handle.write(line + "\n")
        self._handle.flush()
        self._since_sync += 1
        if self._since_sync >= _JOURNAL_SYNC_EVERY:
            os.fsync(self._handle.fileno())
            self._since_sync = 0

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Offline integrity verification (`repro-sfi journal verify`).

@dataclass
class JournalVerifyReport:
    """Outcome of an offline journal integrity check."""

    path: str
    records: int = 0
    torn_tail: bool = False
    issues: list[str] = field(default_factory=list)
    lease_events: int = 0

    @property
    def ok(self) -> bool:
        return not self.issues and not self.torn_tail


def verify_journal(path: str | Path) -> JournalVerifyReport:
    """Offline integrity check of a campaign journal (and its ``.leases``
    sidecar, when present) without opening either for writing.

    Flags, as human-readable issues:

    * a missing/invalid header, or a journal of the wrong kind;
    * malformed interior lines (only the *final* line may be torn — a
      crash mid-append — and that is reported separately as
      ``torn_tail``, since recovery handles it);
    * lines missing ``pos``/``record`` keys, undecodable records, or
      positions outside ``[0, total_sites)``;
    * duplicate positions — the same ``(site, occurrence)`` injection
      journaled twice, i.e. exactly what fencing exists to prevent;
    * fencing-token regressions in the lease log (grant tokens must be
      strictly increasing).
    """
    path = Path(path)
    report = JournalVerifyReport(path=str(path))
    try:
        with path.open() as handle:
            lines = handle.readlines()
    except FileNotFoundError:
        report.issues.append(f"{path}: no such journal")
        return report
    if not lines or not lines[0].strip():
        report.issues.append(f"{path}: empty journal (no header)")
        return report
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        report.issues.append(f"{path}:1: malformed header: {exc}")
        return report
    if (not isinstance(header, dict)
            or header.get("format") != _JOURNAL_FORMAT_VERSION
            or header.get("kind") != _JOURNAL_KIND):
        report.issues.append(
            f"{path}:1: not a {_JOURNAL_KIND} journal this build can "
            f"read (header {header!r})")
        return report
    total = header.get("total_sites")

    seen: dict[int, int] = {}  # position -> first line number
    body = [(number, line) for number, line in enumerate(lines[1:], 2)
            if line.strip()]
    for offset, (number, line) in enumerate(body):
        is_last = offset == len(body) - 1
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            if is_last:
                report.torn_tail = True
            else:
                report.issues.append(
                    f"{path}:{number}: malformed JSON on interior line")
            continue
        if not isinstance(payload, dict) or "pos" not in payload \
                or "record" not in payload:
            report.issues.append(
                f"{path}:{number}: journal line missing pos/record")
            continue
        position = payload["pos"]
        if not isinstance(position, int) or position < 0 \
                or (isinstance(total, int) and position >= total):
            report.issues.append(
                f"{path}:{number}: position {position!r} outside plan "
                f"range [0, {total})")
            continue
        try:
            record = _record_from_dict(payload["record"])
        except CampaignStorageError as exc:
            report.issues.append(f"{path}:{number}: {exc}")
            continue
        if position in seen:
            report.issues.append(
                f"{path}:{number}: duplicate record for position "
                f"{position} (site {record.site_index} "
                f"{record.site_name!r}, first seen on line "
                f"{seen[position]}) — double-journaled injection")
            continue
        seen[position] = number
        report.records += 1

    _verify_lease_log(path.with_name(path.name + ".leases"), report)
    return report


def _verify_lease_log(lease_path: Path, report: JournalVerifyReport) -> None:
    """Replay a ``.leases`` sidecar: grant tokens must strictly increase
    (a regression means two issues shared a token — fencing is void)."""
    try:
        with lease_path.open() as handle:
            lease_lines = handle.readlines()
    except FileNotFoundError:
        return
    last_grant = 0
    for number, line in enumerate(lease_lines, 1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            if number == len(lease_lines):
                continue  # torn tail of the sidecar; harmless
            report.issues.append(
                f"{lease_path}:{number}: malformed lease event")
            continue
        if not isinstance(event, dict):
            report.issues.append(
                f"{lease_path}:{number}: lease event is not an object")
            continue
        report.lease_events += 1
        if event.get("event") == "session":
            # New coordinator incarnation: its token counter restarts.
            last_grant = 0
        elif event.get("event") == "grant":
            token = event.get("token")
            if not isinstance(token, int):
                report.issues.append(
                    f"{lease_path}:{number}: grant without integer token")
                continue
            if token <= last_grant:
                report.issues.append(
                    f"{lease_path}:{number}: fencing-token regression "
                    f"(grant token {token} after {last_grant})")
            else:
                last_grant = token
