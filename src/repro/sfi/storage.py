"""Campaign persistence.

Real injection campaigns run for hours and accumulate across sessions;
results are stored as JSON-lines (one record per line, with the full
cause-and-effect trace) so later analysis, merging and re-scoring need
no re-simulation.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cpu.events import EventKind, MachineEvent
from repro.rtl.latch import LatchKind

from repro.sfi.outcomes import Outcome
from repro.sfi.results import CampaignResult, InjectionRecord

_FORMAT_VERSION = 1


def _record_to_dict(record: InjectionRecord) -> dict:
    return {
        "site_index": record.site_index,
        "site_name": record.site_name,
        "unit": record.unit,
        "kind": record.kind.value,
        "ring": record.ring,
        "testcase_seed": record.testcase_seed,
        "inject_cycle": record.inject_cycle,
        "outcome": record.outcome.value,
        "trace": [[event.cycle, event.kind.value, event.detail]
                  for event in record.trace],
    }


def _record_from_dict(payload: dict) -> InjectionRecord:
    return InjectionRecord(
        site_index=payload["site_index"],
        site_name=payload["site_name"],
        unit=payload["unit"],
        kind=LatchKind(payload["kind"]),
        ring=payload["ring"],
        testcase_seed=payload["testcase_seed"],
        inject_cycle=payload["inject_cycle"],
        outcome=Outcome(payload["outcome"]),
        trace=tuple(MachineEvent(cycle, EventKind(kind), detail)
                    for cycle, kind, detail in payload.get("trace", [])),
    )


def save_campaign(result: CampaignResult, path: str | Path) -> None:
    """Write a campaign as JSON-lines (header line + one line/record)."""
    path = Path(path)
    with path.open("w") as handle:
        header = {"format": _FORMAT_VERSION,
                  "population_bits": result.population_bits,
                  "records": result.total}
        handle.write(json.dumps(header) + "\n")
        for record in result.records:
            handle.write(json.dumps(_record_to_dict(record)) + "\n")


def load_campaign(path: str | Path) -> CampaignResult:
    """Read a campaign written by :func:`save_campaign`."""
    path = Path(path)
    with path.open() as handle:
        header_line = handle.readline()
        if not header_line:
            raise ValueError(f"{path}: empty campaign file")
        header = json.loads(header_line)
        if header.get("format") != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported campaign format {header.get('format')}")
        result = CampaignResult(
            population_bits=header.get("population_bits", 0))
        for line in handle:
            if line.strip():
                result.add(_record_from_dict(json.loads(line)))
    if result.total != header.get("records", result.total):
        raise ValueError(f"{path}: truncated campaign file "
                         f"({result.total} of {header['records']} records)")
    return result


def merge_campaigns(paths: list[str | Path]) -> CampaignResult:
    """Merge several stored campaigns (e.g. parallel shards, or sessions
    accumulated across days) into one result."""
    merged = CampaignResult()
    for path in paths:
        loaded = load_campaign(path)
        merged.population_bits = merged.population_bits or loaded.population_bits
        merged.records.extend(loaded.records)
    return merged
