"""Outcome classification.

After the post-injection drain window, the effect of the fault "is
evaluated by checking the system/processor status registers which flag
errors such as checkstops, recoveries and machine errors.  Errors not
normally visible to the machine can be detected by the AVP when they
result in incorrect architected state."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.avp.runner import memory_matches_golden
from repro.avp.testcase import AvpTestcase
from repro.cpu.core import Power6Core

from repro.sfi.outcomes import Outcome


@dataclass(frozen=True)
class ClassifyOptions:
    """Knobs affecting classification.

    ``latent_as_vanished``: when True, undetected architected-state
    corruption is counted as VANISHED instead of SDC.  The paper's Table 3
    "Raw" row (all checkers masked) reports only vanish/rec/hang/checkstop
    — latent corruption that nothing caught is invisible to the machine
    and lands in "vanished"; the text notes these errors "were not being
    caught by the processor".  Default False (SDC reported explicitly).
    """

    latent_as_vanished: bool = False


def classify(core: Power6Core, testcase: AvpTestcase,
             options: ClassifyOptions = ClassifyOptions()) -> Outcome:
    """Classify the machine's state after the drain window."""
    if core.checkstopped:
        return Outcome.CHECKSTOP
    if core.hung or not core.halted:
        # A set hang FIR, or a machine still spinning after the window
        # (e.g. a corrupted count register creating a billion-iteration
        # loop) — both are hangs at the AVP monitoring level.
        return Outcome.HANG
    clean = memory_matches_golden(core, testcase)
    had_correction = core.recovery_count > 0 or core.corrected_count > 0
    if not clean:
        if options.latent_as_vanished and not had_correction:
            return Outcome.VANISHED
        return Outcome.SDC
    if had_correction:
        return Outcome.CORRECTED
    return Outcome.VANISHED
