"""Chip-level SFI campaigns: two cores, fault-isolation measurement.

The paper's model spans two cores; a chip-level campaign injects into
one core while both run workloads, classifying the outcome on the
*struck* core and simultaneously verifying that the *other* core's
architected results stayed golden — the cross-core fault-isolation
property multi-core RAS designs must provide.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field

from repro.avp.runner import AvpBaselineError
from repro.avp.suite import make_suite
from repro.cpu.chip import ChipSnapshot, Power6Chip
from repro.cpu.events import EventLog
from repro.cpu.params import CoreParams
from repro.cpu.tainttrace import detection_info, taint_trace_chip
from repro.obs.profile import CoreProfiler
from repro.obs.provenance import MaskingEvent, ProvenanceReport
from repro.rtl.fault import FaultSite, expand_sites

from repro.sfi.classify import ClassifyOptions, classify
from repro.sfi.outcomes import OUTCOME_ORDER, Outcome
from repro.sfi.storage import CampaignJournal, CampaignStorageError
from repro.sfi.supervisor import CampaignProgress

_CHIP_JOURNAL_KIND = "sfi-chip-journal"


class _ChipInstruments:
    """Chip-campaign metric series (distinct names from the single-core
    campaign: chip trials carry a core label and an isolation axis)."""

    def __init__(self, registry) -> None:
        self.injections = registry.counter(
            "sfi_chip_injections_total",
            "completed chip injections by outcome and struck core",
            ("outcome", "core"))
        self.isolation_violations = registry.counter(
            "sfi_chip_isolation_violations_total",
            "injections that corrupted a core other than the struck one")
        self.campaign_seconds = registry.gauge(
            "sfi_chip_campaign_seconds",
            "wall time of the last chip campaign run")
        self.rate = registry.gauge(
            "sfi_chip_injections_per_second",
            "chip campaign injection throughput")


@dataclass(frozen=True)
class ChipInjectionRecord:
    """One chip-level injection."""

    core_index: int
    unit: str
    site_name: str
    inject_cycle: int
    outcome: Outcome
    other_cores_clean: bool


def _chip_record_to_dict(record: ChipInjectionRecord) -> dict:
    return {
        "core_index": record.core_index,
        "unit": record.unit,
        "site_name": record.site_name,
        "inject_cycle": record.inject_cycle,
        "outcome": record.outcome.value,
        "other_cores_clean": record.other_cores_clean,
    }


def _chip_record_from_dict(payload: dict) -> ChipInjectionRecord:
    try:
        return ChipInjectionRecord(
            core_index=payload["core_index"],
            unit=payload["unit"],
            site_name=payload["site_name"],
            inject_cycle=payload["inject_cycle"],
            outcome=Outcome(payload["outcome"]),
            other_cores_clean=payload["other_cores_clean"],
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise CampaignStorageError(
            f"chip record is missing or has a bad field: {exc!r}") from exc


@dataclass
class ChipCampaignResult:
    """Chip-level campaign records and aggregation."""

    records: list[ChipInjectionRecord] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.records)

    def fractions(self) -> dict[Outcome, float]:
        total = max(1, self.total)
        return {outcome: sum(1 for r in self.records if r.outcome is outcome)
                / total for outcome in OUTCOME_ORDER}

    def isolation_rate(self) -> float:
        """Fraction of injections that left every other core untouched."""
        if not self.records:
            return 1.0
        return sum(r.other_cores_clean for r in self.records) / self.total

    def isolation_violations(self) -> list[ChipInjectionRecord]:
        return [r for r in self.records if not r.other_cores_clean]


#: Upper bound on a fault-free chip reference run (matches
#: :meth:`Power6Chip.run`'s default).
_CHIP_REFERENCE_BUDGET = 200_000


class ChipExperiment:
    """A prepared two-core chip with per-core AVP workloads.

    With ``fastpath`` on (the default) the fault-free reference run also
    builds a chip-wide checkpoint ladder: a :class:`ChipSnapshot` every
    ``ckpt_stride`` cycles, thinned (drop every other rung, double the
    stride) whenever it outgrows ``ladder_max_rungs``, so preparation
    memory stays bounded on long workloads.  :meth:`run_one` then
    restores the highest rung at or below the injection cycle and
    fast-forwards only the remainder — equivalence-preserving, because
    the pre-injection prefix is deterministic and fault-free.
    """

    def __init__(self, core_params: CoreParams | None = None,
                 core_count: int = 2, suite_seed: int = 2008,
                 drain_cycles: int = 1500,
                 trace_max_events: int | None = 512,
                 fastpath: bool = True,
                 ckpt_stride: int | None = 64,
                 ladder_max_rungs: int = 64) -> None:
        self.chip = Power6Chip(core_params, core_count)
        # Ring-bound each core's event log: a hang-heavy injection on
        # either core must not grow memory for the whole drain window.
        for core in self.chip.cores:
            core.event_log = EventLog(capacity=None,
                                      max_events=trace_max_events)
        self.drain_cycles = drain_cycles
        self.fastpath = bool(fastpath and ckpt_stride)
        self.ckpt_stride = ckpt_stride
        self.ladder_max_rungs = max(1, ladder_max_rungs)
        self.ladder_hits = 0
        self.ladder_misses = 0
        # One testcase per core (distinct seeds: distinct workloads).
        self.testcases = make_suite(core_count, seed=suite_seed)
        self._sites_per_core: list[list[FaultSite]] = [
            expand_sites(core.all_latches()) for core in self.chip.cores]
        # Provenance sidecars of the last run_one / run_campaign (see
        # repro.obs.provenance); records themselves are unchanged.
        self.last_provenance: dict | None = None
        self.provenance_report: ProvenanceReport | None = None
        self.provenance_payloads: dict[int, dict] = {}
        self._prepare()

    def _prepare(self) -> None:
        chip = self.chip
        chip.load_programs([t.program for t in self.testcases])
        self._checkpoint = chip.snapshot()
        self._rungs: list[tuple[int, ChipSnapshot]] = []
        self._rung_stride = self.ckpt_stride or 0
        if self.fastpath:
            # Stepped reference run: chunks stop at every stride boundary
            # to save a ladder rung.  The trajectory (and the final cycle
            # count) is identical to one uninterrupted chip.run().
            cycles = 0
            while not chip.quiesced and cycles < _CHIP_REFERENCE_BUDGET:
                step = min(self._rung_stride - cycles % self._rung_stride,
                           _CHIP_REFERENCE_BUDGET - cycles)
                ran = chip.run(max_cycles=step)
                cycles += ran
                if ran < step or chip.quiesced:
                    break
                self._rungs.append((cycles, chip.snapshot()))
                if len(self._rungs) > self.ladder_max_rungs:
                    # Thin the ladder: keep every other rung, double the
                    # stride, so memory stays bounded on long workloads.
                    self._rungs = self._rungs[1::2]
                    self._rung_stride *= 2
            self.reference_cycles = cycles
        else:
            self.reference_cycles = chip.run()
        for core, testcase in zip(chip.cores, self.testcases):
            if not core.halted or not core.error_free():
                raise AvpBaselineError(
                    f"{core.name}: fault-free chip run misbehaved")
            if core.memory.nonzero_words() != testcase.golden_memory:
                raise AvpBaselineError(f"{core.name}: memory mismatch")
        chip.restore(self._checkpoint)

    # ------------------------------------------------------------------

    def site_count(self, core_index: int) -> int:
        return len(self._sites_per_core[core_index])

    def rung_count(self) -> int:
        return len(self._rungs)

    def run_one(self, core_index: int, site_number: int,
                inject_cycle: int,
                options: ClassifyOptions = ClassifyOptions(),
                provenance: bool = False) -> ChipInjectionRecord:
        chip = self.chip
        start_cycle = 0
        rung = None
        for cycle, snap in self._rungs:
            if cycle > inject_cycle:
                break
            rung = (cycle, snap)
        if rung is not None:
            start_cycle, snap = rung
            chip.restore(snap)
            self.ladder_hits += 1
        else:
            chip.restore(self._checkpoint)
            if self.fastpath:
                self.ladder_misses += 1
        for _ in range(inject_cycle - start_cycle):
            chip.cycle()
            if chip.quiesced:
                break
        site = self._sites_per_core[core_index][site_number]
        site.inject()
        budget = (self.reference_cycles - inject_cycle) + self.drain_cycles
        self.last_provenance = None
        payload = None
        if provenance:
            # Install after the flip (the flip is the DAG root, not an
            # edge) and uninstall before classification; the ladder
            # restore above is untracked pre-injection prefix, so the
            # record is bit-identical to an untracked trial.
            with taint_trace_chip(chip, site.latch) as tracker:
                chip.run(max_cycles=max(budget, self.drain_cycles))
            payload = tracker.payload()
        else:
            chip.run(max_cycles=max(budget, self.drain_cycles))

        struck = chip.cores[core_index]
        outcome = classify(struck, self.testcases[core_index], options)
        if payload is not None:
            payload.update(
                site=f"{struck.name}.{site.name}",
                unit=f"{struck.name}.{struck.unit_of(site.latch)}",
                core_index=core_index,
                inject_cycle=inject_cycle,
                outcome=outcome.value,
                detection=detection_info(struck.event_log.events,
                                         inject_cycle),
            )
            if (outcome in (Outcome.VANISHED, Outcome.CORRECTED)
                    and payload["residual_tainted"]):
                payload["masking_counts"][
                    MaskingEvent.ARCHITECTURALLY_DEAD.value] = \
                    payload["residual_tainted"]
            self.last_provenance = payload
        clean = True
        for other_index, other in enumerate(chip.cores):
            if other_index == core_index:
                continue
            testcase = self.testcases[other_index]
            # A chip checkstop legitimately stops the neighbours; clean
            # means no *corruption* leaked across, not that they finished.
            if other.halted:
                clean &= (other.memory.nonzero_words() == testcase.golden_memory)
            else:
                clean &= chip.chip_checkstop or other.hung is False
        return ChipInjectionRecord(
            core_index=core_index,
            unit=struck.unit_of(site.latch),
            site_name=f"{struck.name}.{site.name}",
            inject_cycle=inject_cycle,
            outcome=outcome,
            other_cores_clean=clean,
        )

    def run_campaign(self, count: int, seed: int = 0,
                     core_index: int | None = None, *,
                     journal: str | os.PathLike | None = None,
                     resume: bool = False,
                     progress: CampaignProgress | None = None,
                     metrics=None,
                     provenance: bool = False) -> ChipCampaignResult:
        """Inject ``count`` random flips (into ``core_index``, or spread
        uniformly across the chip when None).

        Each trial draws from its own ``(seed, trial)`` RNG stream, so a
        campaign resumed from ``journal`` (see the sfi supervisor) replays
        exactly the trials an uninterrupted run would have performed;
        already-journaled trials are skipped on ``resume=True``.

        On the fast path pending trials execute in injection-cycle order
        (warm ladder rungs); each trial is self-contained, so execution
        order cannot change any record, and ``result.records`` stays in
        trial order.

        With ``provenance=True`` every executed trial is taint-tracked
        (records stay bit-identical; trials run slower) and the merged
        :class:`~repro.obs.provenance.ProvenanceReport` lands in
        ``self.provenance_report`` with per-trial payloads in
        ``self.provenance_payloads`` — executed trials only; journalled
        trials skipped on resume are not re-tracked.  With ``metrics``
        set, one ``core``-labelled :class:`~repro.obs.profile.CoreProfiler`
        per core samples the chip's cycle loops into the same registry.
        """
        progress = progress or CampaignProgress()
        covered: dict[int, ChipInjectionRecord] = {}
        journal_obj: CampaignJournal | None = None
        if journal is not None:
            if resume and os.path.exists(journal):
                journal_obj, covered = CampaignJournal.recover(
                    journal, record_decoder=_chip_record_from_dict,
                    kind=_CHIP_JOURNAL_KIND)
                header = journal_obj.header
                if header.get("seed") != seed or \
                        header.get("total_sites") != count:
                    raise CampaignStorageError(
                        f"{journal}: journal is for a different chip "
                        f"campaign (seed={header.get('seed')}, "
                        f"count={header.get('total_sites')})")
                covered = {trial: record for trial, record in covered.items()
                           if 0 <= trial < count}
                progress.on_resume(len(covered))
            else:
                journal_obj = CampaignJournal.create(
                    journal, seed=seed, total_sites=count,
                    kind=_CHIP_JOURNAL_KIND)
        progress.on_start(count, count - len(covered))
        inst = _ChipInstruments(metrics) if metrics is not None else None
        # One core-labelled profiler per core.  Chip trials are short and
        # every restore rewinds the cycle counter, so the default 2048-
        # cycle hook interval would land few or no samples inside a
        # trial; 256 keeps several samples per trial at sub-0.1% hook
        # overhead.
        profilers = ([CoreProfiler(core, metrics, interval=256,
                                   core_label=core.name)
                      for core in self.chip.cores]
                     if metrics is not None else [])
        for profiler in profilers:
            # Baseline sample: epoch for the first in-trial sample.
            profiler.sample()
        report = self.provenance_report = (ProvenanceReport()
                                           if provenance else None)
        self.provenance_payloads = {}
        started = time.perf_counter()
        executed = 0
        result = ChipCampaignResult()
        try:
            pending = []
            for trial in range(count):
                if trial in covered:
                    continue
                rng = random.Random(f"chip:{seed}:{trial}")
                target = (core_index if core_index is not None
                          else rng.randrange(len(self.chip.cores)))
                site_number = rng.randrange(self.site_count(target))
                inject_cycle = rng.randrange(max(1, self.reference_cycles))
                pending.append((trial, target, site_number, inject_cycle))
            if self.fastpath and self._rungs:
                # Monotone injection cycles touch each ladder rung once.
                pending.sort(key=lambda t: (t[3], t[0]))
            records: dict[int, ChipInjectionRecord] = {}
            for trial, target, site_number, inject_cycle in pending:
                record = self.run_one(target, site_number, inject_cycle,
                                      provenance=provenance)
                records[trial] = record
                if report is not None and self.last_provenance is not None:
                    self.provenance_payloads[trial] = self.last_provenance
                    report.absorb(self.last_provenance)
                if inst is not None:
                    executed += 1
                    inst.injections.inc(outcome=record.outcome.value,
                                        core=str(record.core_index))
                    if not record.other_cores_clean:
                        inst.isolation_violations.inc()
                    elapsed = time.perf_counter() - started
                    if elapsed > 0:
                        inst.rate.set(executed / elapsed)
                if journal_obj is not None:
                    journal_obj.append(trial, record,
                                       record_encoder=_chip_record_to_dict)
                progress.on_record(trial, record)
            for trial in range(count):
                result.records.append(covered.get(trial) or records[trial])
        finally:
            for profiler in profilers:
                profiler.sample()
                profiler.detach()
            if inst is not None:
                inst.campaign_seconds.set(time.perf_counter() - started)
            if journal_obj is not None:
                journal_obj.close()
        return result
