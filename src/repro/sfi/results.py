"""Campaign result containers and aggregation."""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.rtl.latch import LatchKind

from repro.sfi.outcomes import OUTCOME_ORDER, Outcome


@dataclass(frozen=True)
class InjectionRecord:
    """One completed injection, with its cause-and-effect event trace."""

    site_index: int
    site_name: str
    unit: str
    kind: LatchKind
    ring: str
    testcase_seed: int
    inject_cycle: int
    outcome: Outcome
    trace: tuple = ()


@dataclass
class CampaignResult:
    """All records of one campaign plus aggregation helpers."""

    records: list[InjectionRecord] = field(default_factory=list)
    population_bits: int = 0

    def add(self, record: InjectionRecord) -> None:
        self.records.append(record)

    def extend(self, records) -> None:
        """Append many records (journal recovery, shard merging)."""
        self.records.extend(records)

    @property
    def total(self) -> int:
        return len(self.records)

    def counts(self) -> dict[Outcome, int]:
        counter = Counter(record.outcome for record in self.records)
        return {outcome: counter.get(outcome, 0) for outcome in OUTCOME_ORDER}

    def fractions(self) -> dict[Outcome, float]:
        total = max(1, self.total)
        return {outcome: count / total for outcome, count in self.counts().items()}

    def by_unit(self) -> dict[str, "CampaignResult"]:
        grouped: dict[str, CampaignResult] = defaultdict(CampaignResult)
        for record in self.records:
            grouped[record.unit].add(record)
        return dict(grouped)

    def by_kind(self) -> dict[LatchKind, "CampaignResult"]:
        grouped: dict[LatchKind, CampaignResult] = defaultdict(CampaignResult)
        for record in self.records:
            grouped[record.kind].add(record)
        return dict(grouped)

    def by_ring(self) -> dict[str, "CampaignResult"]:
        grouped: dict[str, CampaignResult] = defaultdict(CampaignResult)
        for record in self.records:
            grouped[record.ring].add(record)
        return dict(grouped)

    def merged_with(self, other: "CampaignResult") -> "CampaignResult":
        merged = CampaignResult(list(self.records) + list(other.records),
                                self.population_bits or other.population_bits)
        return merged

    def summary(self) -> str:
        """One-line human-readable outcome summary."""
        fractions = self.fractions()
        parts = [f"{outcome.value}: {fractions[outcome]:.2%}"
                 for outcome in OUTCOME_ORDER]
        return f"n={self.total}  " + "  ".join(parts)
