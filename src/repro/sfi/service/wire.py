"""Length-prefixed JSON framing over stream sockets.

The transport speaks newline-free frames: a 4-byte big-endian unsigned
length followed by that many bytes of UTF-8 JSON.  Length prefixing
(rather than line delimiting) keeps records containing embedded
newlines or large traces unambiguous, and lets the coordinator's
non-blocking reader resume a partially received frame across
``select`` wakeups.

Only stdlib ``socket``/``struct`` are used — the service layer adds no
dependencies.
"""

from __future__ import annotations

import json
import socket
import struct

_LENGTH = struct.Struct(">I")

#: Upper bound on one frame; a peer announcing more is protocol-broken
#: (or hostile) and the connection is dropped rather than buffered.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class FrameError(ConnectionError):
    """A peer violated the framing protocol (oversized or torn frame)."""


def encode_frame(payload: dict) -> bytes:
    """One message as length-prefixed bytes."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(body)} bytes exceeds "
                         f"{MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(body)) + body


def send_message(sock: socket.socket, payload: dict, lock=None) -> None:
    """Send one frame (optionally serialized by ``lock`` so concurrent
    senders — the worker's heartbeat thread and its record stream —
    never interleave bytes)."""
    data = encode_frame(payload)
    if lock is not None:
        with lock:
            sock.sendall(data)
    else:
        sock.sendall(data)


def recv_message(sock: socket.socket) -> dict | None:
    """Blocking read of one frame; None on orderly EOF at a frame
    boundary, :class:`FrameError` on a torn or oversized frame."""
    header = _recv_exact(sock, _LENGTH.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"peer announced a {length}-byte frame")
    try:
        body = _recv_exact(sock, length, eof_ok=False)
    except TimeoutError:
        # The header was already consumed; a timeout here is not
        # resumable even if it landed between header and body.
        raise FrameError("timed out mid-frame") from None
    return _decode(body)


def _recv_exact(sock: socket.socket, count: int,
                eof_ok: bool) -> bytes | None:
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except TimeoutError:
            if remaining == count:
                raise  # clean timeout at a frame boundary: resumable
            raise FrameError("timed out mid-frame") from None
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise FrameError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _decode(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise FrameError(f"frame is not an object: {type(payload).__name__}")
    return payload


class FrameReader:
    """Incremental decoder for a non-blocking socket.

    Feed it whatever ``recv`` returned; it yields every complete frame
    and keeps the partial tail for the next feed.  The coordinator runs
    one per worker connection inside its ``selectors`` loop.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[dict]:
        """Absorb ``data``; return the messages it completed."""
        self._buffer.extend(data)
        messages: list[dict] = []
        while True:
            if len(self._buffer) < _LENGTH.size:
                return messages
            (length,) = _LENGTH.unpack(self._buffer[:_LENGTH.size])
            if length > MAX_FRAME_BYTES:
                raise FrameError(f"peer announced a {length}-byte frame")
            end = _LENGTH.size + length
            if len(self._buffer) < end:
                return messages
            body = bytes(self._buffer[_LENGTH.size:end])
            del self._buffer[:end]
            messages.append(_decode(body))

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)
