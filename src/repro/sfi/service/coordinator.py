"""The TCP lease coordinator: distributed shard execution.

:class:`SocketTransport` is the distributed :class:`ShardTransport`.
It listens on a TCP port; ``repro-sfi worker`` processes connect, say
hello, receive the campaign config, and are then fed shard leases.  All
robustness lives here, on the coordinator side, so workers stay dumb
and restartable:

* every lease carries a fencing token from one monotonic counter
  (:class:`~repro.sfi.service.leases.LeaseManager`); a worker returning
  from a partition with results for a reclaimed lease is *fenced* — its
  records rejected at receive, never double-journaled;
* workers heartbeat on an interval; a missed deadline reclaims every
  lease the worker held and re-queues it (with deterministic backoff);
* records stream back incrementally and go straight to the supervisor's
  ``collect`` (journal included), so a coordinator SIGKILL resumes from
  the journal exactly like the in-process pool;
* when every worker is gone and none arrives within ``worker_wait``,
  ``execute`` returns the unfinished items — the supervisor degrades to
  the in-process pool mid-campaign instead of stalling.

The event loop is a single-threaded ``selectors`` reactor over stdlib
sockets: no new dependencies, no locks, and every timing decision uses
``time.monotonic`` (wall clock never steers execution — REPRO-D02).
"""

from __future__ import annotations

import selectors
import socket
import time
from dataclasses import replace

from repro.obs.fleet import FleetRegistry, FleetSpanPhase, pack_payload
from repro.sfi.campaign import InjectionPlan
from repro.sfi.service.backoff import DEFAULT_CAP
from repro.sfi.service.leases import LeaseLog, LeaseManager
from repro.sfi.service.messages import (
    PROTOCOL_VERSION,
    ExtraMessage,
    FleetSnapshotMessage,
    HeartbeatMessage,
    HelloMessage,
    LeaseMessage,
    Message,
    MonitorHelloMessage,
    RecordMessage,
    ShardDoneMessage,
    ShardErrorMessage,
    ShutdownMessage,
    TelemetryMessage,
    WelcomeMessage,
    config_to_dict,
    decode_message,
    plan_item_to_dict,
)
from repro.sfi.service.transport import ShardTransport
from repro.sfi.service.wire import FrameError, FrameReader, encode_frame
from repro.sfi.storage import FencedAppendError, _record_from_dict


class _ServiceInstruments:
    """Coordinator-side series (repro.obs registry)."""

    def __init__(self, registry) -> None:
        self.lease_reissues = registry.counter(
            "sfi_lease_reissues_total",
            "lease re-grants after reclaim, retry or split")
        self.heartbeat_misses = registry.counter(
            "sfi_heartbeat_miss_total",
            "workers declared dead after a missed heartbeat deadline")
        self.pool_size = registry.gauge(
            "sfi_worker_pool_size", "connected remote workers")
        self.fenced = registry.counter(
            "sfi_fenced_records_total",
            "stale-lease results rejected by fencing")


class _WorkerConn:
    """One connected worker: socket, frame decoder, liveness state."""

    def __init__(self, sock: socket.socket, address, clock) -> None:
        self.sock = sock
        self.address = address
        self.reader = FrameReader()
        self.name: str | None = None       # set by hello
        self.ready = False                 # hello/welcome done
        self.monitor = False               # read-only fleet viewer
        self.last_seen = clock()
        self.outbox = b""                  # unsent bytes (non-blocking)

    def queue(self, message: Message) -> None:
        self.outbox += encode_frame(message.to_wire())


class SocketTransport(ShardTransport):
    """Length-prefixed JSON-over-TCP lease coordinator.

    Parameters: ``host``/``port`` to bind (port 0 picks a free port,
    readable afterwards as ``.port``); ``heartbeat_interval`` is the
    contract advertised to workers and ``heartbeat_grace`` multiples of
    it without traffic declare a worker dead; ``lease_items`` bounds a
    lease's size; ``worker_wait`` is how long ``execute`` keeps waiting
    with work outstanding but zero connected workers before giving the
    remainder back to the supervisor (``None`` waits forever);
    ``min_workers`` makes ``execute`` wait for that many connections
    before granting the first lease, so a fixed fleet gets a stable
    partition.  ``metrics`` is a repro.obs registry (optional).
    """

    name = "socket"

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 heartbeat_interval: float = 0.5,
                 heartbeat_grace: float = 4.0,
                 lease_items: int = 8,
                 max_retries: int = 2,
                 backoff_base: float = 0.25,
                 backoff_cap: float = DEFAULT_CAP,
                 worker_wait: float | None = 10.0,
                 min_workers: int = 0,
                 metrics=None,
                 lease_log: str | None = None,
                 telemetry_interval: float = 0.0,
                 campaign: str = "",
                 convergence=None) -> None:
        self.host = host
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_grace = heartbeat_grace
        self.lease_items = lease_items
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.worker_wait = worker_wait
        self.min_workers = min_workers
        self._inst = (_ServiceInstruments(metrics)
                      if metrics is not None else None)
        self._metrics = metrics
        self._lease_log_path = lease_log
        # Fleet telemetry (all observational; 0.0 turns streaming off
        # and the protocol degrades to exactly the PR 6 wire traffic).
        self.telemetry_interval = telemetry_interval
        self.campaign = campaign
        self.fleet = (FleetRegistry(metrics)
                      if telemetry_interval > 0 else None)
        self.worker_spans: list = []       # rebased, re-parented spans
        self._lease_spans: dict[int, str] = {}  # token -> lease span id
        self._convergence = convergence
        self._last_push = 0.0
        self._trace = None
        self._trace_root = None
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self._listener.setblocking(False)
        self.port = self._listener.getsockname()[1]
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ,
                                ("listener", None))
        self._workers: dict[socket.socket, _WorkerConn] = {}
        self._names = 0          # fallback worker naming counter
        self._closed = False

    # -- ShardTransport -----------------------------------------------

    def execute(self, supervisor, pending: list[InjectionPlan], seed: int,
                collect) -> list[InjectionPlan]:
        journal_path = supervisor.journal_path
        # A fresh journal (no --resume) truncates its lease sidecar too,
        # so `journal verify` never replays a previous campaign's grants.
        fresh = not getattr(supervisor, "resume", False)
        log = None
        if self._lease_log_path is not None:
            log = LeaseLog(self._lease_log_path, fresh=fresh)
        elif journal_path is not None:
            log = LeaseLog(str(journal_path) + ".leases", fresh=fresh)
        leases = LeaseManager(
            pending, seed=seed, lease_items=self.lease_items,
            max_retries=self.max_retries, backoff_base=self.backoff_base,
            backoff_cap=self.backoff_cap, log=log)
        config_payload = config_to_dict(supervisor.config)
        self._config_payload = config_payload
        # Coordinator-side spans share the supervisor's recorder (same
        # thread, same monotonic domain); absent a trace, every span
        # call below is a no-op.
        self._trace = getattr(supervisor, "trace", None)
        self._trace_root = getattr(supervisor, "trace_root", None)
        starved_since: float | None = None
        reissues_seen = 0
        fenced_seen = 0
        waiting_for_fleet = self.min_workers > 0
        fleet_wait_span = None
        if waiting_for_fleet and self._trace is not None:
            fleet_wait_span = self._trace.begin(
                FleetSpanPhase.WORKER_WAIT, parent_id=self._trace_root)
        try:
            while leases.outstanding():
                if leases.poisoned and not leases.queued \
                        and not leases.active:
                    break  # only poisoned work left: in-process fallback
                self._pump(supervisor, leases, collect, seed,
                           config_payload,
                           grant_ok=not waiting_for_fleet)
                if waiting_for_fleet and \
                        self._ready_count() >= self.min_workers:
                    waiting_for_fleet = False
                    if fleet_wait_span is not None:
                        self._trace.finish(fleet_wait_span)
                        fleet_wait_span = None
                # Metrics: fold the managers' counters incrementally.
                if self._inst is not None:
                    if leases.reissues > reissues_seen:
                        self._inst.lease_reissues.inc(
                            leases.reissues - reissues_seen)
                        reissues_seen = leases.reissues
                    if leases.fenced > fenced_seen:
                        self._inst.fenced.inc(leases.fenced - fenced_seen)
                        fenced_seen = leases.fenced
                    self._inst.pool_size.set(self._ready_count())
                # Starvation: work outstanding, nobody to run it.
                if self._workers or not leases.outstanding():
                    starved_since = None
                elif self.worker_wait is not None:
                    now = time.monotonic()
                    if starved_since is None:
                        starved_since = now
                    elif now - starved_since >= self.worker_wait:
                        break
            # Revoke whatever is still issued before draining, so a
            # worker surfacing after the fallback cannot double-journal.
            if fleet_wait_span is not None:
                self._trace.finish(fleet_wait_span)
                fleet_wait_span = None
            drain_span = None
            if self._trace is not None:
                drain_span = self._trace.begin(
                    FleetSpanPhase.DRAIN, parent_id=self._trace_root)
            for token in sorted(leases.active):
                supervisor.raise_fence(token)
                self._finish_lease_span(token)
            leftover = leases.drain()
            if drain_span is not None:
                self._trace.finish(drain_span)
            if self._inst is not None:
                if leases.reissues > reissues_seen:
                    self._inst.lease_reissues.inc(
                        leases.reissues - reissues_seen)
                if leases.fenced > fenced_seen:
                    self._inst.fenced.inc(leases.fenced - fenced_seen)
            return leftover
        finally:
            self._broadcast_shutdown()
            if self._inst is not None:
                self._inst.pool_size.set(self._ready_count())
            if log is not None:
                log.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._broadcast_shutdown()
        for sock in list(self._workers):
            self._drop(sock, notify=False)
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        self._selector.close()
        self._listener.close()

    # -- reactor -------------------------------------------------------

    def _pump(self, supervisor, leases: LeaseManager, collect, seed: int,
              config_payload: dict, grant_ok: bool = True) -> None:
        """One reactor turn: poll sockets, absorb messages, enforce
        heartbeat deadlines, grant ready leases, flush outboxes."""
        timeout = self._poll_timeout(leases)
        for key, events in self._selector.select(timeout):
            kind, _ = key.data
            if kind == "listener":
                self._accept()
            else:
                conn = self._workers.get(key.fileobj)
                if conn is None:
                    continue
                if events & selectors.EVENT_READ:
                    self._read(conn, supervisor, leases, collect)
                if key.fileobj in self._workers \
                        and events & selectors.EVENT_WRITE:
                    self._flush(conn)
        self._check_heartbeats(supervisor, leases)
        if grant_ok:
            self._grant_ready(supervisor, leases, seed, config_payload)
        self._push_monitors()
        self._update_write_interest()

    def _poll_timeout(self, leases: LeaseManager) -> float:
        timeout = self.heartbeat_interval / 2
        ready_at = leases.next_ready_at()
        if ready_at is not None:
            timeout = min(timeout, max(0.0, ready_at - time.monotonic()))
        return max(0.01, min(timeout, 0.5))

    def _accept(self) -> None:
        while True:
            try:
                sock, address = self._listener.accept()
            except BlockingIOError:
                return
            except OSError:
                return
            sock.setblocking(False)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _WorkerConn(sock, address, time.monotonic)
            self._workers[sock] = conn
            self._selector.register(sock, selectors.EVENT_READ,
                                    ("worker", conn))

    def _read(self, conn: _WorkerConn, supervisor, leases: LeaseManager,
              collect) -> None:
        try:
            data = conn.sock.recv(65536)
        except BlockingIOError:
            return
        except OSError:
            self._lose(conn, supervisor, leases, "read error")
            return
        if not data:
            self._lose(conn, supervisor, leases, "connection closed")
            return
        conn.last_seen = time.monotonic()
        try:
            frames = conn.reader.feed(data)
        except FrameError as exc:
            self._lose(conn, supervisor, leases, f"bad frame: {exc}")
            return
        for payload in frames:
            try:
                message = decode_message(payload)
            except ValueError as exc:
                self._lose(conn, supervisor, leases, str(exc))
                return
            self._dispatch(conn, message, supervisor, leases, collect)
            if conn.sock not in self._workers:
                return  # dispatch dropped the connection

    def _dispatch(self, conn: _WorkerConn, message: Message, supervisor,
                  leases: LeaseManager, collect) -> None:
        if isinstance(message, HelloMessage):
            if message.protocol != PROTOCOL_VERSION:
                conn.queue(ShutdownMessage(
                    reason=f"protocol {message.protocol} != "
                           f"{PROTOCOL_VERSION}"))
                self._flush(conn)
                self._drop(conn.sock, notify=False)
                return
            self._names += 1
            base = message.worker or f"worker-{self._names}"
            taken = {other.name for other in self._workers.values()
                     if other is not conn}
            conn.name = base if base not in taken \
                else f"{base}#{self._names}"
            conn.ready = True
            conn.queue(WelcomeMessage(
                config=self._config_payload,
                heartbeat_interval=self.heartbeat_interval,
                telemetry_interval=self.telemetry_interval,
                campaign=self.campaign))
        elif isinstance(message, MonitorHelloMessage):
            if message.protocol != PROTOCOL_VERSION:
                conn.queue(ShutdownMessage(
                    reason=f"protocol {message.protocol} != "
                           f"{PROTOCOL_VERSION}"))
                self._flush(conn)
                self._drop(conn.sock, notify=False)
                return
            # Monitors are read-only: never granted leases, never
            # heartbeat-reaped (ready stays False), just pushed at.
            conn.monitor = True
            conn.queue(FleetSnapshotMessage(
                snapshot=pack_payload(self._fleet_snapshot())))
        elif isinstance(message, HeartbeatMessage):
            pass  # last_seen already refreshed on read
        elif isinstance(message, TelemetryMessage):
            if self.fleet is not None and conn.name is not None:
                frame = message.to_wire()
                frame["worker"] = conn.name  # coordinator-side identity
                self._absorb_worker_spans(self.fleet.absorb(frame))
        elif isinstance(message, RecordMessage):
            lease = leases.accept(message.token, message.pos)
            if lease is None:
                return  # fenced: stale or alien record, not journaled
            try:
                record = _record_from_dict(message.record)
            except Exception as exc:  # noqa: BLE001 - corrupt payload
                leases.reclaim(message.token, f"bad record: {exc}")
                self._finish_lease_span(message.token)
                self._lose(conn, supervisor, leases,
                           f"undecodable record: {exc}")
                return
            try:
                collect(message.pos, record, fence=message.token)
            except FencedAppendError:
                pass  # journal-side fence agreed: drop silently
            else:
                if self._convergence is not None:
                    self._convergence.fold(record.unit,
                                           record.outcome.value)
        elif isinstance(message, ExtraMessage):
            lease = leases.active.get(message.token)
            if lease is not None and getattr(collect, "extra", None):
                collect.extra(message.kind, message.pos, message.payload)
        elif isinstance(message, ShardDoneMessage):
            lease = leases.complete(message.token)
            self._finish_lease_span(message.token)
            if lease is not None \
                    and not supervisor.population_bits \
                    and isinstance(message.population, int) \
                    and message.population > 0:
                supervisor.population_bits = message.population
            if lease is not None:
                supervisor.progress.on_shard_complete(
                    lease.shard_id, len(lease.items), lease.attempt + 1)
        elif isinstance(message, ShardErrorMessage):
            lease = leases.active.get(message.token)
            if lease is not None:
                supervisor.raise_fence(message.token)
                leases.reclaim(message.token,
                               f"worker error: {message.message}")
                self._finish_lease_span(message.token)

    def _lose(self, conn: _WorkerConn, supervisor, leases: LeaseManager,
              reason: str) -> None:
        """Connection-level loss: revoke the worker's issued tokens at
        the journal, reclaim its leases, drop the socket."""
        if conn.monitor:
            self._drop(conn.sock, notify=False)
            return
        name = conn.name or f"{conn.address}"
        if conn.name is not None:
            tokens = [token for token, lease
                      in sorted(leases.active.items())
                      if lease.worker == conn.name]
            for token in tokens:
                # Fence first, reclaim second: once reclaim re-queues
                # the work there must be no window where the old issue
                # could still reach the journal.
                supervisor.raise_fence(token)
                leases.reclaim(token, reason)
                self._finish_lease_span(token)
        self._drop(conn.sock, notify=False)
        supervisor.progress.on_shard_retry(
            -1, 0, f"worker {name!r} lost ({reason})", 0.0)

    def _drop(self, sock: socket.socket, notify: bool = True) -> None:
        conn = self._workers.pop(sock, None)
        if conn is None:
            return
        if notify and conn.outbox:
            self._flush(conn)
        try:
            self._selector.unregister(sock)
        except (KeyError, ValueError):
            pass
        try:
            sock.close()
        except OSError:
            pass

    def _check_heartbeats(self, supervisor, leases: LeaseManager) -> None:
        deadline = self.heartbeat_interval * self.heartbeat_grace
        now = time.monotonic()
        for sock, conn in list(self._workers.items()):
            if not conn.ready:
                continue
            if now - conn.last_seen > deadline:
                if self._inst is not None:
                    self._inst.heartbeat_misses.inc()
                self._lose(conn, supervisor, leases,
                           f"heartbeat missed for "
                           f"{now - conn.last_seen:.2f}s")

    def _grant_ready(self, supervisor, leases: LeaseManager, seed: int,
                     config_payload: dict) -> None:
        idle = [conn for conn in self._workers.values()
                if conn.ready and not any(
                    lease.worker == conn.name
                    for lease in leases.active.values())]
        idle.sort(key=lambda conn: conn.name or "")
        for conn in idle:
            if not leases.grantable():
                return
            lease = leases.grant(conn.name)
            if lease is None:
                return
            if self._trace is not None:
                now = self._trace.clock()
                self._trace.record(
                    FleetSpanPhase.QUEUE_WAIT, lease.queued_at, now,
                    parent_id=self._trace_root, shard_id=lease.shard_id)
                self._lease_spans[lease.token] = self._trace.begin(
                    FleetSpanPhase.LEASE_HELD, parent_id=self._trace_root,
                    worker=conn.name or "", shard_id=lease.shard_id,
                    token=lease.token)
            conn.queue(LeaseMessage(
                token=lease.token, shard_id=lease.shard_id, seed=seed,
                items=[plan_item_to_dict(item)
                       for item in lease.remaining()]))

    def _update_write_interest(self) -> None:
        for sock, conn in list(self._workers.items()):
            if conn.outbox:
                self._flush(conn)
            events = selectors.EVENT_READ
            if conn.outbox:
                events |= selectors.EVENT_WRITE
            try:
                self._selector.modify(sock, events, ("worker", conn))
            except (KeyError, ValueError):
                pass

    def _flush(self, conn: _WorkerConn) -> None:
        while conn.outbox:
            try:
                sent = conn.sock.send(conn.outbox)
            except BlockingIOError:
                return
            except OSError:
                conn.outbox = b""
                return
            if sent <= 0:
                return
            conn.outbox = conn.outbox[sent:]

    # -- fleet telemetry ----------------------------------------------

    def _finish_lease_span(self, token: int) -> None:
        span_id = self._lease_spans.get(token)
        if span_id is not None and self._trace is not None:
            self._trace.finish(span_id)

    def _absorb_worker_spans(self, spans: list) -> None:
        """Hang rebased worker spans off their lease-held span.

        A worker's top-level (parentless) span carries the fencing
        token of the lease it executed; the grant opened a lease-held
        span under the campaign root for that token, which becomes the
        parent — one merged tree across hosts."""
        for span in spans:
            if span.parent_id is None and span.token in self._lease_spans:
                span = replace(span,
                               parent_id=self._lease_spans[span.token])
            self.worker_spans.append(span)

    def _fleet_snapshot(self) -> dict:
        """The live fleet view pushed at monitor connections."""
        snapshot = {"campaign": self.campaign, "workers": {},
                    "fleet": [], "service": [], "convergence": {}}
        if self.fleet is not None:
            for name in self.fleet.worker_names():
                info = dict(self.fleet.worker_info(name))
                info["snapshot"] = self.fleet.worker_snapshot(name)
                snapshot["workers"][name] = info
            snapshot["fleet"] = self.fleet.fleet.snapshot()
        if self._metrics is not None:
            snapshot["service"] = self._metrics.snapshot()
        if self._convergence is not None:
            snapshot["convergence"] = self._convergence.snapshot()
        return snapshot

    def _push_monitors(self) -> None:
        monitors = [conn for conn in self._workers.values()
                    if conn.monitor]
        if not monitors:
            return
        now = time.monotonic()
        if now - self._last_push < 1.0:
            return
        self._last_push = now
        packed = pack_payload(self._fleet_snapshot())
        for conn in monitors:
            conn.queue(FleetSnapshotMessage(snapshot=packed))

    def _broadcast_shutdown(self) -> None:
        for conn in list(self._workers.values()):
            try:
                conn.queue(ShutdownMessage())
                self._flush(conn)
            except OSError:
                pass

    def _ready_count(self) -> int:
        return sum(1 for conn in self._workers.values() if conn.ready)

    # Set by execute(); hello replies that arrive mid-campaign
    # (late-joining workers) get the active campaign's config.
    _config_payload: dict = {}
