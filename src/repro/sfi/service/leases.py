"""Lease bookkeeping: deadlines, fencing tokens, retry/split policy.

A *lease* is the distributed analogue of the supervisor's ``_ShardJob``:
a slice of plan items handed to one worker, reclaimable the moment its
worker stops heartbeating.  Every issue of a lease carries a fencing
token drawn from one monotonically increasing counter; when a lease is
reclaimed and re-issued, the old token is dead forever, so a worker
returning from a network partition and streaming results under a stale
token is *fenced* — its records rejected, never double-journaled — while
the reissued lease's records flow normally.

The manager is transport-agnostic and purely event-driven (the
coordinator tells it about grants, results, completions and losses), so
its state machine is testable without sockets.  An optional
:class:`LeaseLog` journals every grant/reclaim/fence event as JSONL next
to the campaign journal; ``repro-sfi journal verify`` replays it and
flags token regressions.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.sfi.campaign import InjectionPlan, partition_plan
from repro.sfi.service.backoff import DEFAULT_CAP, backoff_delay


@dataclass
class Lease:
    """One issued (or queued) slice of the campaign plan."""

    shard_id: int
    items: list[InjectionPlan]
    token: int = -1            # fencing token of the current issue
    attempt: int = 0           # completed issue attempts so far
    worker: str | None = None  # holder of the current issue
    not_before: float = 0.0    # earliest re-grant time (backoff)
    queued_at: float = 0.0     # when this issue (re)entered the queue
    accepted: set[int] = field(default_factory=set)

    def remaining(self) -> list[InjectionPlan]:
        return [item for item in self.items
                if item.position not in self.accepted]


class LeaseLog:
    """Append-only JSONL sidecar of lease lifecycle events.

    Lives next to the campaign journal (``<journal>.leases``); the
    record journal itself stays byte-identical to a single-process run,
    so fencing history gets its own file instead of extra record keys.
    """

    def __init__(self, path: str | os.PathLike,
                 fresh: bool = False) -> None:
        self.path = Path(path)
        self._handle = self.path.open("w" if fresh else "a")
        # Fencing tokens are per-coordinator-incarnation (a dead
        # coordinator's leases die with it; the record journal is the
        # durable truth), so each opening marks a session boundary and
        # token monotonicity is verified within sessions.
        self.write("session")

    def write(self, event: str, **fields) -> None:
        if self._handle is None:
            return
        payload = {"event": event}
        payload.update(fields)
        self._handle.write(json.dumps(payload, separators=(",", ":")) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class LeaseManager:
    """Hands out leases, fences stale issues, retries and splits.

    ``clock`` is injectable (monotonic seconds) so reclaim deadlines and
    backoff windows are testable without sleeping.  The failure policy
    mirrors the in-process pool: a reclaimed or failed lease is
    re-queued with exponential backoff (deterministic jitter keyed by
    ``(seed, shard_id, attempt)``); after ``max_retries`` it is split in
    half; a single item that still cannot complete lands in
    ``poisoned`` for the caller to run in-process — loud, never dropped.
    """

    def __init__(self, plan: list[InjectionPlan], *, seed: int,
                 lease_items: int = 8, max_retries: int = 2,
                 backoff_base: float = 0.25,
                 backoff_cap: float = DEFAULT_CAP,
                 log: LeaseLog | None = None,
                 clock=None) -> None:
        if lease_items < 1:
            raise ValueError("lease_items must be >= 1")
        self.seed = seed
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.log = log
        self._clock = clock or _monotonic
        self._tokens = itertools.count(1)
        self._shard_ids = itertools.count()
        shards = partition_plan(plan, max(1, -(-len(plan) // lease_items))) \
            if plan else []
        now = self._clock()
        self.queued: list[Lease] = [
            Lease(shard_id=next(self._shard_ids), items=shard,
                  queued_at=now)
            for shard in shards]
        self.active: dict[int, Lease] = {}   # token -> lease
        self.poisoned: list[InjectionPlan] = []
        self.reissues = 0
        self.fenced = 0

    # -- queries -------------------------------------------------------

    def outstanding(self) -> bool:
        """Any work not yet accepted (queued, active or poisoned)?"""
        return bool(self.queued or self.active or self.poisoned)

    def grantable(self) -> bool:
        now = self._clock()
        return any(lease.not_before <= now for lease in self.queued)

    def next_ready_at(self) -> float | None:
        """Earliest ``not_before`` among queued leases (None if empty)."""
        if not self.queued:
            return None
        return min(lease.not_before for lease in self.queued)

    # -- lifecycle -----------------------------------------------------

    def grant(self, worker: str) -> Lease | None:
        """Issue the next ready lease to ``worker`` (None if nothing is
        ready — queued-but-backing-off leases are not granted early)."""
        now = self._clock()
        for index, lease in enumerate(self.queued):
            if lease.not_before <= now:
                del self.queued[index]
                lease.token = next(self._tokens)
                lease.worker = worker
                self.active[lease.token] = lease
                if self.log is not None:
                    self.log.write("grant", token=lease.token,
                                   shard=lease.shard_id, worker=worker,
                                   attempt=lease.attempt,
                                   items=len(lease.remaining()))
                return lease
        return None

    def accept(self, token: int, position: int) -> Lease | None:
        """Validate one record against the fencing token.

        Returns the holding lease when ``token`` is a live issue and
        ``position`` belongs to it and was not already accepted; None
        means the record is stale (fenced) or alien and must not reach
        the journal.
        """
        lease = self.active.get(token)
        if lease is None or position in lease.accepted \
                or all(item.position != position for item in lease.items):
            self.fenced += 1
            if self.log is not None:
                self.log.write("fenced", token=token, pos=position)
            return None
        lease.accepted.add(position)
        return lease

    def complete(self, token: int) -> Lease | None:
        """The worker reported the lease's shard done."""
        lease = self.active.pop(token, None)
        if lease is None:
            self.fenced += 1
            if self.log is not None:
                self.log.write("fenced", token=token, pos=-1)
            return None
        if self.log is not None:
            self.log.write("done", token=token, shard=lease.shard_id)
        remaining = lease.remaining()
        if remaining:
            # "done" without every record (lost frames mid-partition):
            # treat like a failure so the tail re-runs.
            self._requeue(lease, "done with missing records")
        return lease

    def reclaim(self, token: int, reason: str) -> Lease | None:
        """Take a lease back from a lost/failed worker and re-queue it."""
        lease = self.active.pop(token, None)
        if lease is None:
            return None
        if self.log is not None:
            self.log.write("reclaim", token=token, shard=lease.shard_id,
                           worker=lease.worker, reason=reason)
        if lease.remaining():
            self._requeue(lease, reason)
        return lease

    def reclaim_worker(self, worker: str, reason: str) -> list[Lease]:
        """Reclaim every active lease held by ``worker``."""
        tokens = [token for token, lease in sorted(self.active.items())
                  if lease.worker == worker]
        return [lease for token in tokens
                if (lease := self.reclaim(token, reason)) is not None]

    def drain(self) -> list[InjectionPlan]:
        """Give up on remote execution: every unaccepted item, for the
        caller's in-process fallback; the manager empties."""
        items: list[InjectionPlan] = list(self.poisoned)
        self.poisoned = []
        for lease in self.queued:
            items.extend(lease.remaining())
        self.queued = []
        for token in sorted(self.active):
            lease = self.active.pop(token)
            if self.log is not None:
                self.log.write("reclaim", token=token, shard=lease.shard_id,
                               worker=lease.worker, reason="drain")
            items.extend(lease.remaining())
        items.sort(key=lambda item: item.position)
        return items

    # -- failure policy ------------------------------------------------

    def _requeue(self, lease: Lease, reason: str) -> None:
        lease.worker = None
        lease.token = -1
        lease.attempt += 1
        remaining = lease.remaining()
        self.reissues += 1
        if lease.attempt <= self.max_retries:
            delay = backoff_delay(self.backoff_base, lease.attempt,
                                  cap=self.backoff_cap, seed=self.seed,
                                  stream=lease.shard_id)
            now = self._clock()
            lease.not_before = now + delay
            lease.queued_at = now
            self.queued.append(lease)
            return
        if len(remaining) > 1:
            half = len(remaining) // 2
            for piece in (remaining[:half], remaining[half:]):
                self.queued.append(Lease(shard_id=next(self._shard_ids),
                                         items=piece,
                                         queued_at=self._clock()))
            if self.log is not None:
                self.log.write("split", shard=lease.shard_id,
                               remaining=len(remaining))
            return
        self.poisoned.extend(remaining)


def _monotonic() -> float:
    import time
    return time.monotonic()
