"""The remote shard worker (`repro-sfi worker --connect host:port`).

Workers are deliberately dumb: connect, say hello, take whatever lease
arrives, stream records back tagged with the lease's fencing token, and
heartbeat the whole time.  Every robustness decision — reclaim, retry,
fencing, fallback — is the coordinator's; a worker that is killed,
wedged or partitioned needs no cleanup because its lease simply expires.

The connect loop retries with capped exponential backoff and
deterministic jitter (keyed by the worker's name), so a fleet started
before its coordinator neither gives up nor stampedes.  A lost
connection re-enters the same loop: workers survive coordinator
restarts, coordinators survive worker restarts, and the journal is the
only party that has to be right.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.obs.fleet import FleetSpanPhase, SpanRecorder, TelemetryStream
from repro.obs.metrics import MetricsRegistry
from repro.sfi.service.backoff import DEFAULT_CAP, backoff_delay
from repro.sfi.service.messages import (
    PROTOCOL_VERSION,
    HeartbeatMessage,
    HelloMessage,
    LeaseMessage,
    RecordMessage,
    ShardDoneMessage,
    ShardErrorMessage,
    ShutdownMessage,
    TelemetryMessage,
    WelcomeMessage,
    config_from_dict,
    decode_message,
    plan_item_from_dict,
)
from repro.sfi.service.wire import FrameError, recv_message, send_message
from repro.sfi.storage import _record_to_dict
from repro.sfi.supervisor import run_shard

#: Trial spans per lease shipped upstream; beyond this the lease's
#: remaining trials go unspanned (metrics still count every one).
MAX_TRIAL_SPANS = 256


class WorkerError(RuntimeError):
    """The worker cannot reach or speak to its coordinator."""


class _Heartbeat:
    """Background beacon: one HeartbeatMessage per interval while a
    connection lives, sharing the socket behind a send lock.

    When the coordinator asked for telemetry (welcome's
    ``telemetry_interval`` > 0), the beacon also piggybacks a
    :class:`TelemetryMessage` at that cadence — same thread, same send
    lock, no extra connection."""

    def __init__(self, sock: socket.socket, lock: threading.Lock,
                 interval: float, *, telemetry: TelemetryStream | None = None,
                 telemetry_interval: float = 0.0) -> None:
        self._sock = sock
        self._lock = lock
        self._interval = max(0.05, interval)
        self._telemetry = telemetry
        self._telemetry_interval = max(telemetry_interval, self._interval)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.token = -1  # current lease token, advisory only

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)

    def _run(self) -> None:
        last_telemetry = time.monotonic()
        while not self._stop.wait(self._interval):
            try:
                send_message(self._sock,
                             HeartbeatMessage(token=self.token).to_wire(),
                             lock=self._lock)
                now = time.monotonic()
                if self._telemetry is not None and \
                        now - last_telemetry >= self._telemetry_interval:
                    last_telemetry = now
                    self.flush()
            except OSError:
                return  # connection died; the main loop will notice

    def flush(self) -> None:
        """Send a telemetry frame now if anything changed (the lease
        loop calls this after each shard so short campaigns stream)."""
        if self._telemetry is None:
            return
        frame = self._telemetry.frame()
        if frame is not None:
            send_message(self._sock, TelemetryMessage(**frame).to_wire(),
                         lock=self._lock)


def run_worker(host: str, port: int, *, name: str = "",
               max_connect_attempts: int | None = 10,
               backoff_base: float = 0.25,
               backoff_cap: float = DEFAULT_CAP,
               runner=run_shard,
               max_campaigns: int | None = None,
               progress=None) -> int:
    """Join the coordinator at ``host:port`` and execute leases until it
    says shutdown.  Returns the number of leases executed.

    ``max_connect_attempts`` bounds the initial connect/reconnect loop
    (None retries forever); each attempt backs off exponentially with
    deterministic jitter keyed by the worker name.  ``max_campaigns``
    stops after that many shutdown frames (the chaos tests use 1);
    ``progress(event, detail)`` is an optional narration callback.
    """
    name = name or f"{socket.gethostname()}-{os_pid()}"
    say = progress or (lambda event, detail: None)
    # Telemetry state outlives connections: the registry is cumulative
    # for the process, and the stream's frame sequence stays strictly
    # increasing per (name, pid) incarnation so the coordinator can
    # drop replays after a reconnect.
    telemetry = TelemetryStream(
        MetricsRegistry(), SpanRecorder(source=f"{name}@{os_pid()}"),
        worker=name, pid=os_pid())
    executed = 0
    campaigns = 0
    attempt = 0
    while True:
        attempt += 1
        try:
            sock = socket.create_connection((host, port), timeout=5.0)
        except OSError as exc:
            if max_connect_attempts is not None \
                    and attempt >= max_connect_attempts:
                raise WorkerError(
                    f"cannot reach coordinator {host}:{port} after "
                    f"{attempt} attempts: {exc}") from exc
            delay = backoff_delay(backoff_base, min(attempt, 16),
                                  cap=backoff_cap, seed=_name_seed(name),
                                  stream=0)
            say("connect-retry", f"attempt {attempt}: {exc}; "
                                 f"retrying in {delay:.2f}s")
            time.sleep(delay)
            continue
        attempt = 0  # a successful connect resets the backoff ladder
        try:
            done, ran = _serve_connection(sock, name, runner, say,
                                          telemetry=telemetry)
        except (OSError, FrameError) as exc:
            say("disconnect", str(exc))
            done, ran = False, 0
        finally:
            try:
                sock.close()
            except OSError:
                pass
        executed += ran
        if done:
            campaigns += 1
            if max_campaigns is not None and campaigns >= max_campaigns:
                return executed
        # Otherwise: connection lost mid-campaign — reconnect and keep
        # serving (our old lease is the coordinator's to reclaim).


def _serve_connection(sock: socket.socket, name: str, runner, say, *,
                      telemetry: TelemetryStream | None = None
                      ) -> tuple[bool, int]:
    """Speak the protocol on one established connection.

    Returns ``(shutdown_seen, leases_executed)``; raises OSError /
    FrameError when the connection dies instead.
    """
    sock.settimeout(30.0)
    lock = threading.Lock()
    send_message(sock, HelloMessage(worker=name).to_wire(), lock=lock)
    payload = recv_message(sock)
    if payload is None:
        raise FrameError("coordinator closed before welcome")
    welcome = decode_message(payload)
    if isinstance(welcome, ShutdownMessage):
        return True, 0
    if not isinstance(welcome, WelcomeMessage):
        raise FrameError(f"expected welcome, got {welcome.TYPE!r}")
    if welcome.protocol != PROTOCOL_VERSION:
        raise WorkerError(
            f"coordinator speaks protocol {welcome.protocol}, "
            f"this worker speaks {PROTOCOL_VERSION}")
    config = config_from_dict(welcome.config)
    streaming = telemetry if welcome.telemetry_interval > 0 else None
    if streaming is not None:
        # Resend the full cumulative snapshot on a fresh connection;
        # the coordinator diffs against its per-incarnation baseline,
        # so the resend can never double-count.
        streaming.reset_connection()
    heartbeat = _Heartbeat(sock, lock, welcome.heartbeat_interval,
                           telemetry=streaming,
                           telemetry_interval=welcome.telemetry_interval)
    heartbeat.start()
    ran = 0
    try:
        while True:
            try:
                payload = recv_message(sock)
            except TimeoutError:
                continue  # idle (no lease yet); heartbeats keep us alive
            if payload is None:
                raise FrameError("coordinator closed the connection")
            message = decode_message(payload)
            if isinstance(message, ShutdownMessage):
                say("shutdown", message.reason)
                return True, ran
            if not isinstance(message, LeaseMessage):
                continue  # ignore anything unexpected; stay dumb
            say("lease", f"token {message.token}: "
                         f"{len(message.items)} items")
            _execute_lease(sock, lock, heartbeat, config, message,
                           runner, telemetry=streaming)
            heartbeat.flush()
            ran += 1
    finally:
        heartbeat.stop()


def _execute_lease(sock: socket.socket, lock: threading.Lock,
                   heartbeat: _Heartbeat, config, lease: LeaseMessage,
                   runner, *,
                   telemetry: TelemetryStream | None = None) -> None:
    """Run one leased shard, streaming records under its fencing token."""
    token = lease.token
    heartbeat.token = token
    items = [plan_item_from_dict(item) for item in lease.items]
    recorder = telemetry.recorder if telemetry is not None else None
    exec_id = warmup_id = None
    # Trial spans are emit-to-emit intervals inside the execute span;
    # ``last`` starts at lease receipt so the first interval is the
    # warmup (experiment build / cache hit), recorded as its own phase.
    trial = {"last": None, "count": 0}
    if recorder is not None:
        exec_id = recorder.begin(
            FleetSpanPhase.WORKER_EXECUTE, worker=telemetry.worker,
            shard_id=lease.shard_id, token=token)
        warmup_id = recorder.begin(
            FleetSpanPhase.WORKER_WARMUP, parent_id=exec_id,
            worker=telemetry.worker, shard_id=lease.shard_id, token=token)

    def emit(pos, rec):
        if recorder is not None:
            now = recorder.clock()
            if trial["last"] is None:
                recorder.finish(warmup_id)
            elif trial["count"] < MAX_TRIAL_SPANS:
                recorder.record(
                    FleetSpanPhase.TRIAL, trial["last"], now,
                    parent_id=exec_id, worker=telemetry.worker,
                    shard_id=lease.shard_id, token=token)
                trial["count"] += 1
            trial["last"] = now
        send_message(sock, RecordMessage(
            token=token, pos=pos,
            record=_record_to_dict(rec)).to_wire(), lock=lock)

    # The sidecar channel mirrors the in-process pool's: fast-path and
    # provenance payloads ride their own frames, same FIFO socket, so
    # they arrive before their position's record.
    def extra(kind, pos, payload):
        send_message(sock, _extra_message(token, kind, pos, payload),
                     lock=lock)

    emit.extra = extra
    if telemetry is not None:
        # The runner instruments the experiment from this attribute, so
        # wave/peel/fast-path series accrue in the streamed registry.
        emit.metrics = telemetry.registry
    try:
        population = runner(config, items, lease.seed, emit)
    except Exception as exc:  # noqa: BLE001 - report, let coordinator retry
        send_message(sock, ShardErrorMessage(
            token=token,
            message=f"{type(exc).__name__}: {exc}").to_wire(), lock=lock)
        return
    finally:
        heartbeat.token = -1
        if recorder is not None:
            if trial["last"] is None:
                recorder.finish(warmup_id)  # runner emitted nothing
            recorder.finish(exec_id)
    send_message(sock, ShardDoneMessage(
        token=token,
        population=population if isinstance(population, int) else 0
    ).to_wire(), lock=lock)


def _extra_message(token: int, kind: str, pos: int, payload: dict) -> dict:
    from repro.sfi.service.messages import ExtraMessage
    return ExtraMessage(token=token, kind=kind, pos=pos,
                        payload=payload).to_wire()


def _name_seed(name: str) -> int:
    """Stable small integer from a worker name (jitter stream key);
    hash() is salted per-process, so fold bytes explicitly."""
    value = 0
    for byte in name.encode():
        value = (value * 131 + byte) % (2 ** 31)
    return value


def os_pid() -> int:
    import os
    return os.getpid()
