"""The shard-execution seam between supervisor and back ends.

:class:`~repro.sfi.supervisor.CampaignSupervisor` plans, journals,
resumes and aggregates; *how* pending plan items actually execute is a
:class:`ShardTransport`.  The in-process pool (PR 1's supervised
workers) is the default implementation; the TCP coordinator
(:class:`~repro.sfi.service.coordinator.SocketTransport`) is the
distributed one.  A transport may return items it could not execute —
the supervisor degrades those to the in-process pool, so losing every
remote worker mid-campaign costs throughput, never records.
"""

from __future__ import annotations

from repro.sfi.campaign import InjectionPlan


class ShardTransport:
    """Strategy interface for executing pending plan items.

    ``execute`` streams every completed injection through
    ``collect(position, record)`` (whose ``extra`` attribute is the
    sidecar channel, exactly as the shard workers see it) and returns
    the items it could **not** execute; the supervisor runs those on the
    in-process pool.  Implementations must preserve the determinism
    contract: records depend only on ``(seed, site, occurrence)``,
    never on transport topology, retries or arrival order.
    """

    #: Human-readable name (degradation messages, lease logs).
    name = "transport"

    def execute(self, supervisor, pending: list[InjectionPlan], seed: int,
                collect) -> list[InjectionPlan]:
        raise NotImplementedError

    def close(self) -> None:
        """Release sockets/files; idempotent.  The supervisor calls this
        once the campaign (including any fallback) finished."""


class PoolTransport(ShardTransport):
    """The existing in-process worker pool, behind the seam.

    Delegates to the supervisor's serial path at ``workers <= 1`` and
    its supervised multiprocessing pool otherwise — behaviour, metrics
    and journal bytes are unchanged from the pre-seam engine.
    """

    name = "pool"

    def execute(self, supervisor, pending: list[InjectionPlan], seed: int,
                collect) -> list[InjectionPlan]:
        supervisor.run_pool(pending, seed, collect)
        return []
