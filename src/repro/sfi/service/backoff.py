"""Capped exponential backoff with deterministic seeded jitter.

Retry timing is part of the campaign's observable behaviour (tests
assert on it, journals of chaotic runs replay against it), so the
jitter that de-synchronizes retry herds must not come from wall clock
or OS entropy.  The factor is drawn from a stream keyed by
``(seed, stream, attempt)`` — the same triple-keying discipline as the
per-injection RNG streams — so a retried shard backs off by the same
delay in every replay of the campaign, while distinct shards (and
distinct attempts of one shard) still spread out.
"""

from __future__ import annotations

import random

#: Default ceiling on one delay: a shard that keeps failing waits at
#: most this long between attempts regardless of attempt count.
DEFAULT_CAP = 30.0

#: Jitter range: the exponential delay is scaled into [0.5, 1.0) so the
#: cap stays a true upper bound while retries de-synchronize.
_JITTER_LOW = 0.5


def backoff_delay(base: float, attempt: int, *, cap: float = DEFAULT_CAP,
                  seed: int = 0, stream: int = 0) -> float:
    """Delay before retry ``attempt`` (1-based) of one failure stream.

    ``base`` is the first-retry delay; it doubles per attempt up to
    ``cap``, then a deterministic jitter factor in ``[0.5, 1.0)`` drawn
    from ``(seed, stream, attempt)`` is applied.  ``base=0`` yields 0
    (tests that disable backoff stay instant), and the returned delay
    never exceeds ``cap``.
    """
    if attempt < 1:
        raise ValueError(f"attempt is 1-based, got {attempt}")
    if base <= 0:
        return 0.0
    raw = min(float(cap), base * (2 ** (attempt - 1)))
    rng = random.Random(f"backoff:{seed}:{stream}:{attempt}")
    return raw * rng.uniform(_JITTER_LOW, 1.0)
