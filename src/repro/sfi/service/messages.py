"""Transport message vocabulary and wire codecs.

Every frame on the coordinator/worker (and control) connections is one
of the dataclasses below, flattened to ``{"type": ..., **fields}``.
Message fields must be JSON-serializable — plain scalars and containers
of them — which the ``REPRO-W01`` lint rule enforces statically on any
``*Message`` dataclass: a field typed as a set, bytes or a domain
object would silently break the wire the first time it was populated.

Campaign configuration crosses the wire as a plain dict
(:func:`config_to_dict` / :func:`config_from_dict`): the coordinator
flattens its :class:`~repro.sfi.campaign.CampaignConfig` (enums to
their values, nested dataclasses to dicts) and the worker reconstructs
an equal frozen config, so the worker-side experiment cache keyed on
config equality stays hot across leases.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.avp.generator import MixWeights
from repro.cpu.params import CoreParams
from repro.rtl.fault import InjectionMode

from repro.sfi.campaign import CampaignConfig, InjectionPlan
from repro.sfi.classify import ClassifyOptions

#: Bumped on any incompatible wire change; hello/welcome exchange it and
#: mismatched peers are refused instead of misparsed.
PROTOCOL_VERSION = 1


@dataclass(frozen=True)
class Message:
    """Base class: ``TYPE`` names the frame, fields are the payload."""

    TYPE = "message"

    def to_wire(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["type"] = self.TYPE
        return payload

    @classmethod
    def from_wire(cls, payload: dict) -> "Message":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in payload.items()
                      if key in fields})


# -- worker -> coordinator ---------------------------------------------

@dataclass(frozen=True)
class HelloMessage(Message):
    """First frame of a worker connection."""

    TYPE = "hello"

    worker: str = "worker"
    protocol: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class HeartbeatMessage(Message):
    """Liveness beacon; sent on an interval whether or not a lease is
    held, so the coordinator distinguishes slow from dead."""

    TYPE = "heartbeat"

    token: int = -1


@dataclass(frozen=True)
class RecordMessage(Message):
    """One completed injection of a leased shard.

    ``token`` is the fencing token of the lease the worker believes it
    holds; the coordinator accepts the record only while that token is
    still the lease's active issue.
    """

    TYPE = "record"

    token: int = -1
    pos: int = -1
    record: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ExtraMessage(Message):
    """Out-of-band sidecar payload (fast-path / provenance), forwarded
    through the supervisor's ``collect.extra`` channel."""

    TYPE = "extra"

    token: int = -1
    kind: str = ""
    pos: int = -1
    payload: dict = field(default_factory=dict)


@dataclass(frozen=True)
class TelemetryMessage(Message):
    """Heartbeat-piggybacked telemetry frame.

    Purely observational: carries the worker's *cumulative* metrics
    snapshot (changed metrics only) and finished spans, both packed via
    :func:`repro.obs.fleet.pack_payload`.  ``seq`` is per-incarnation
    and strictly increasing so the coordinator can drop replays; ``pid``
    changes mark a restarted worker (fresh cumulative baseline).
    ``now`` is the sender's monotonic clock at frame build time — the
    coordinator uses it to rebase span times into its own clock domain.
    """

    TYPE = "telemetry"

    version: int = 1
    worker: str = ""
    pid: int = -1
    seq: int = 0
    now: float = 0.0
    metrics: str = ""
    spans: str = ""


@dataclass(frozen=True)
class ShardDoneMessage(Message):
    """A leased shard finished every item."""

    TYPE = "done"

    token: int = -1
    population: int = 0


@dataclass(frozen=True)
class ShardErrorMessage(Message):
    """A leased shard raised; the lease will be retried or split."""

    TYPE = "error"

    token: int = -1
    message: str = ""


# -- coordinator -> worker ---------------------------------------------

@dataclass(frozen=True)
class WelcomeMessage(Message):
    """Reply to hello: campaign config and heartbeat contract."""

    TYPE = "welcome"

    protocol: int = PROTOCOL_VERSION
    config: dict = field(default_factory=dict)
    heartbeat_interval: float = 1.0
    # Telemetry contract (0.0 = the worker streams nothing, the PR 6
    # behaviour).  Optional fields are wire-compatible both ways:
    # ``from_wire`` drops unknown keys on old peers.
    telemetry_interval: float = 0.0
    campaign: str = ""


@dataclass(frozen=True)
class LeaseMessage(Message):
    """One shard lease: run ``items`` under fencing ``token``."""

    TYPE = "lease"

    token: int = -1
    shard_id: int = -1
    seed: int = 0
    items: list = field(default_factory=list)


@dataclass(frozen=True)
class ShutdownMessage(Message):
    """Campaign over; the worker may exit (or reconnect for the next)."""

    TYPE = "shutdown"

    reason: str = "campaign complete"


# -- monitor connections ------------------------------------------------

@dataclass(frozen=True)
class MonitorHelloMessage(Message):
    """First frame of a read-only monitor connection.

    A monitor is never granted leases and never heartbeat-reaped; the
    coordinator just pushes :class:`FleetSnapshotMessage` frames at it.
    """

    TYPE = "monitor"

    protocol: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class FleetSnapshotMessage(Message):
    """Coordinator -> monitor: the current fleet view, packed via
    :func:`repro.obs.fleet.pack_payload` (campaign name, per-worker
    cumulative snapshots, fleet totals, convergence summary)."""

    TYPE = "fleet"

    snapshot: str = ""


_MESSAGE_TYPES: dict[str, type[Message]] = {
    cls.TYPE: cls for cls in (
        HelloMessage, HeartbeatMessage, RecordMessage, ExtraMessage,
        TelemetryMessage, ShardDoneMessage, ShardErrorMessage,
        WelcomeMessage, LeaseMessage, ShutdownMessage,
        MonitorHelloMessage, FleetSnapshotMessage,
    )
}


def decode_message(payload: dict) -> Message:
    """Typed message for one decoded frame; unknown types raise
    ``ValueError`` (protocol mismatch, caught per-connection)."""
    kind = payload.get("type")
    cls = _MESSAGE_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown message type {kind!r}")
    return cls.from_wire(payload)


# -- plan items ---------------------------------------------------------

def plan_item_to_dict(item: InjectionPlan) -> dict:
    return {"position": item.position, "site_index": item.site_index,
            "testcase_index": item.testcase_index,
            "occurrence": item.occurrence}


def plan_item_from_dict(payload: dict) -> InjectionPlan:
    return InjectionPlan(position=payload["position"],
                         site_index=payload["site_index"],
                         testcase_index=payload["testcase_index"],
                         occurrence=payload.get("occurrence", 0))


# -- campaign config ----------------------------------------------------

def config_to_dict(config: CampaignConfig) -> dict:
    """Flatten a campaign config to JSON-safe scalars and dicts."""
    payload = dataclasses.asdict(config)
    payload["injection_mode"] = config.injection_mode.value
    payload["classify_options"] = dataclasses.asdict(
        config.classify_options)
    payload["weights"] = (dataclasses.asdict(config.weights)
                          if config.weights is not None else None)
    payload["core_params"] = (dataclasses.asdict(config.core_params)
                              if config.core_params is not None else None)
    return payload


def config_from_dict(payload: dict) -> CampaignConfig:
    """Rebuild the frozen config a coordinator flattened.

    The reconstruction is equality-preserving (asserted by the service
    tests), so a worker's cached prepared experiment is reused across
    every lease of one campaign.
    """
    kwargs = dict(payload)
    kwargs.pop("type", None)
    kwargs["injection_mode"] = InjectionMode(kwargs["injection_mode"])
    kwargs["classify_options"] = ClassifyOptions(
        **kwargs.get("classify_options", {}))
    if kwargs.get("weights") is not None:
        kwargs["weights"] = MixWeights(**kwargs["weights"])
    if kwargs.get("core_params") is not None:
        kwargs["core_params"] = CoreParams(**kwargs["core_params"])
    known = {f.name for f in dataclasses.fields(CampaignConfig)}
    return CampaignConfig(**{key: value for key, value in kwargs.items()
                             if key in known})
