"""Distributed campaign service: lease-based multi-host execution.

The paper's statistical argument needs trial counts past what one
machine's process pool delivers; this package generalizes shard
execution behind a :class:`~repro.sfi.service.transport.ShardTransport`
seam so the same supervised campaign runs on the in-process pool
(:class:`~repro.sfi.service.transport.PoolTransport`, the default) or
across TCP worker processes
(:class:`~repro.sfi.service.coordinator.SocketTransport` +
``repro-sfi worker``).

Robustness is coordinator-owned: shards are handed out as *leases* with
heartbeat-backed deadlines and monotonically increasing fencing tokens
(:mod:`repro.sfi.service.leases`), stale post-partition results are
rejected instead of double-journaled, retries back off exponentially
with deterministic seeded jitter (:mod:`repro.sfi.service.backoff`),
and loss of every remote worker degrades to the in-process pool
mid-campaign.  A :class:`~repro.sfi.service.queue.CampaignQueue`
(``repro-sfi serve`` / ``submit``) layers many queued campaigns on top,
with the PR 1 journal as the single durable source of truth.

``coordinator``, ``worker`` and ``queue`` are imported by module path
(they pull in the supervisor); this front re-exports only the
dependency-light seam.
"""

from repro.sfi.service.backoff import backoff_delay
from repro.sfi.service.messages import (
    Message,
    config_from_dict,
    config_to_dict,
    plan_item_from_dict,
    plan_item_to_dict,
)
from repro.sfi.service.transport import PoolTransport, ShardTransport
from repro.sfi.service.wire import (
    FrameError,
    FrameReader,
    recv_message,
    send_message,
)

__all__ = [
    "FrameError",
    "FrameReader",
    "Message",
    "PoolTransport",
    "ShardTransport",
    "backoff_delay",
    "config_from_dict",
    "config_to_dict",
    "plan_item_from_dict",
    "plan_item_to_dict",
    "recv_message",
    "send_message",
]
