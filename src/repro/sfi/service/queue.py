"""Campaign queue: a durable scheduler on top of the lease coordinator.

``repro-sfi serve`` runs a :class:`ServiceServer`: one control port for
``submit``/``status``/``cancel`` clients and one worker port that shard
workers join.  Campaign specs live as JSON files in a spool directory
(:class:`CampaignQueue`); every state transition rewrites the spec file
atomically, and each campaign journals to its own file in the spool —
the journal stays the single durable source of truth, so a SIGKILLed
server restarts, re-queues whatever was ``running``, and resumes it
from its journal without re-running a single journaled injection.

Control connections speak the same length-prefixed JSON frames as the
worker protocol, but with plain ``{"op": ...}`` requests — the clients
are one-shot (connect, ask, read reply, close), so no message-class
ceremony is needed.
"""

from __future__ import annotations

import json
import os
import socket
import sys
import threading
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.sfi.campaign import CampaignConfig, plan_injections
from repro.sfi.service.coordinator import SocketTransport
from repro.sfi.service.messages import config_from_dict, config_to_dict
from repro.sfi.service.wire import FrameError, recv_message, send_message
from repro.sfi.supervisor import CampaignProgress, CampaignSupervisor


@dataclass
class CampaignSpec:
    """One spooled campaign: identity, inputs, and lifecycle state.

    Either ``sites`` is explicit, or ``flips`` asks the server to sample
    that many sites at execute time — the sample is a pure function of
    ``(seed, flips)`` (the same ``Random(seed ^ 0x5F1)`` the campaign
    CLI uses), so a resumed or re-run spec regenerates its exact plan.
    """

    id: str
    seq: int
    sites: list[int]
    seed: int
    config: dict                      # config_to_dict payload
    flips: int = 0
    state: str = "queued"
    detail: str = ""                  # human-readable outcome/err
    records: int = 0                  # journaled records at last update

    def to_json(self) -> str:
        return json.dumps(asdict(self), separators=(",", ":"))


class CampaignQueue:
    """Spool-directory persistence for campaign specs.

    Not thread-safe by itself; :class:`ServiceServer` serializes access
    behind one lock.  Every mutation rewrites the spec file via rename,
    so a crash leaves either the old or the new state, never a torn one.
    """

    def __init__(self, spool: str | os.PathLike) -> None:
        self.spool = Path(spool)
        self.spool.mkdir(parents=True, exist_ok=True)
        self._specs: dict[str, CampaignSpec] = {}
        for path in sorted(self.spool.glob("sfi-*.json")):
            try:
                payload = json.loads(path.read_text())
                spec = CampaignSpec(**payload)
            except (json.JSONDecodeError, TypeError):
                continue  # foreign or torn file; leave it alone
            self._specs[spec.id] = spec

    def recover(self) -> list[str]:
        """Re-queue campaigns that were ``running`` when the previous
        server died; their journals make the re-run a resume."""
        requeued = []
        for spec in self._ordered():
            if spec.state == "running":
                spec.state = "queued"
                spec.detail = "re-queued after server restart"
                self._persist(spec)
                requeued.append(spec.id)
        return requeued

    def submit(self, sites: list[int], seed: int,
               config: CampaignConfig, flips: int = 0) -> CampaignSpec:
        seq = 1 + max((spec.seq for spec in self._specs.values()),
                      default=0)
        spec = CampaignSpec(id=f"sfi-{seq:06d}", seq=seq,
                            sites=list(sites), seed=seed,
                            config=config_to_dict(config), flips=flips)
        self._specs[spec.id] = spec
        self._persist(spec)
        return spec

    def status(self, campaign_id: str | None = None) -> list[dict]:
        specs = self._ordered() if campaign_id is None else \
            [spec for spec in self._ordered() if spec.id == campaign_id]
        return [{"id": spec.id, "state": spec.state,
                 "sites": len(spec.sites) or spec.flips,
                 "seed": spec.seed,
                 "records": spec.records, "detail": spec.detail}
                for spec in specs]

    def cancel(self, campaign_id: str) -> str | None:
        """Cancel a queued campaign; returns its new state (None if the
        id is unknown).  A running campaign is the server's to stop."""
        spec = self._specs.get(campaign_id)
        if spec is None:
            return None
        if spec.state == "queued":
            spec.state = "cancelled"
            spec.detail = "cancelled before start"
            self._persist(spec)
        return spec.state

    def claim_next(self) -> CampaignSpec | None:
        for spec in self._ordered():
            if spec.state == "queued":
                spec.state = "running"
                spec.detail = ""
                self._persist(spec)
                return spec
        return None

    def finish(self, campaign_id: str, state: str, detail: str = "",
               records: int | None = None) -> None:
        spec = self._specs[campaign_id]
        spec.state = state
        spec.detail = detail
        if records is not None:
            spec.records = records
        self._persist(spec)

    def journal_path(self, campaign_id: str) -> Path:
        return self.spool / f"{campaign_id}.journal"

    def _ordered(self) -> list[CampaignSpec]:
        return sorted(self._specs.values(), key=lambda spec: spec.seq)

    def _persist(self, spec: CampaignSpec) -> None:
        path = self.spool / f"{spec.id}.json"
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(spec.to_json() + "\n")
        os.replace(tmp, path)


class _Cancelled(Exception):
    """Raised inside the running campaign to abort it cooperatively."""


class _CancelProbe(CampaignProgress):
    """Progress observer that aborts the campaign when the server's
    cancel flag is set — checked per record, so a cancel lands within
    one injection's latency and the journal keeps everything so far."""

    def __init__(self, flag: threading.Event) -> None:
        self.flag = flag

    def on_record(self, position: int, record) -> None:
        if self.flag.is_set():
            raise _Cancelled


@dataclass
class ServerConfig:
    """Knobs for :class:`ServiceServer` (mirrors the CLI flags)."""

    host: str = "127.0.0.1"
    control_port: int = 0
    worker_port: int = 0
    workers_local: int = 0            # in-process pool size when no
                                      # remote workers join (0 = serial)
    heartbeat_interval: float = 0.5
    heartbeat_grace: float = 4.0
    lease_items: int = 8
    worker_wait: float = 5.0
    min_workers: int = 0
    warehouse: str | None = None      # SQLite path; completed campaigns
                                      # auto-ingest there (None = off)


class ServiceServer:
    """The `repro-sfi serve` process: queue + executor + control plane.

    One executor thread drains the queue (one campaign at a time — the
    worker fleet is shared, and SFI campaigns saturate it); a listener
    thread answers control requests.  ``run_forever`` blocks until
    :meth:`shutdown`.
    """

    def __init__(self, spool: str | os.PathLike,
                 config: ServerConfig | None = None,
                 metrics=None) -> None:
        self.config = config or ServerConfig()
        self.queue = CampaignQueue(spool)
        self.metrics = metrics
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._cancel_running = threading.Event()
        self._running_id: str | None = None
        self._control = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._control.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._control.bind((self.config.host, self.config.control_port))
        self._control.listen(8)
        self._control.settimeout(0.2)
        self.control_port = self._control.getsockname()[1]
        # The worker port must be stable across campaigns (workers
        # reconnect between them), so reserve it up front if unset.
        if self.config.worker_port == 0:
            probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            probe.bind((self.config.host, 0))
            self.config.worker_port = probe.getsockname()[1]
            probe.close()
        self.worker_port = self.config.worker_port
        requeued = self.queue.recover()
        self.recovered = requeued

    # -- lifecycle -----------------------------------------------------

    def run_forever(self) -> None:
        listener = threading.Thread(target=self._serve_control,
                                    daemon=True)
        listener.start()
        try:
            while not self._stop.is_set():
                spec = None
                with self._lock:
                    spec = self.queue.claim_next()
                if spec is None:
                    self._wake.wait(timeout=0.2)
                    self._wake.clear()
                    continue
                self._execute(spec)
        finally:
            self._control.close()

    def shutdown(self) -> None:
        self._stop.set()
        self._cancel_running.set()
        self._wake.set()

    # -- executor ------------------------------------------------------

    def _execute(self, spec: CampaignSpec) -> None:
        self._cancel_running.clear()
        self._running_id = spec.id
        journal = self.queue.journal_path(spec.id)
        config = config_from_dict(spec.config)
        transport = SocketTransport(
            host=self.config.host, port=self.config.worker_port,
            heartbeat_interval=self.config.heartbeat_interval,
            heartbeat_grace=self.config.heartbeat_grace,
            lease_items=self.config.lease_items,
            worker_wait=self.config.worker_wait,
            min_workers=self.config.min_workers,
            metrics=self.metrics)
        supervisor = CampaignSupervisor(
            config,
            workers=self.config.workers_local or 1,
            journal=journal, resume=journal.exists(),
            transport=transport, metrics=self.metrics,
            progress=_CancelProbe(self._cancel_running))
        try:
            sites = spec.sites
            if not sites and spec.flips > 0:
                from random import Random

                from repro.sfi.campaign import SfiExperiment
                from repro.sfi.sampling import random_sample
                probe = SfiExperiment(config)
                sites = random_sample(probe.latch_map, spec.flips,
                                      Random(spec.seed ^ 0x5F1))
                supervisor.population_bits = len(probe.latch_map)
            plan = plan_injections(sites, config.suite_size)
            result = supervisor.run_plan(plan, spec.seed)
        except _Cancelled:
            with self._lock:
                self.queue.finish(spec.id, "cancelled",
                                  "cancelled while running")
        except Exception as exc:  # noqa: BLE001 - spec records outcome
            with self._lock:
                self.queue.finish(spec.id, "failed",
                                  f"{type(exc).__name__}: {exc}")
        else:
            with self._lock:
                self.queue.finish(spec.id, "done",
                                  f"{result.total} records",
                                  records=result.total)
            self._ingest(spec.id, journal)
        finally:
            self._running_id = None

    def _ingest(self, campaign_id: str, journal) -> None:
        """Auto-ingest a finished campaign into the warehouse (if one is
        configured).  Best-effort: the journal stays the source of truth
        and an ingest failure must not fail the campaign."""
        if not self.config.warehouse:
            return
        try:
            from repro.warehouse import Warehouse
            with Warehouse(self.config.warehouse,
                           metrics=self.metrics) as warehouse:
                warehouse.ingest_journal(journal, name=campaign_id)
        except Exception as exc:  # noqa: BLE001 - observability side-path
            print(f"[serve] warehouse ingest of {campaign_id} failed: "
                  f"{type(exc).__name__}: {exc}", file=sys.stderr)

    # -- control plane -------------------------------------------------

    def _serve_control(self) -> None:
        while not self._stop.is_set():
            try:
                sock, _ = self._control.accept()
            except TimeoutError:
                continue
            except OSError:
                return
            try:
                sock.settimeout(5.0)
                request = recv_message(sock)
                if request is not None:
                    send_message(sock, self._handle(request))
            except (OSError, FrameError):
                pass
            finally:
                try:
                    sock.close()
                except OSError:
                    pass

    def _handle(self, request: dict) -> dict:
        op = request.get("op")
        with self._lock:
            if op == "submit":
                try:
                    config = config_from_dict(request.get("config") or {})
                except (KeyError, ValueError, TypeError) as exc:
                    return {"ok": False, "error": f"bad config: {exc}"}
                sites = request.get("sites") or []
                flips = int(request.get("flips", 0))
                if (not isinstance(sites, list) or not sites) \
                        and flips <= 0:
                    return {"ok": False,
                            "error": "submit needs sites or flips"}
                spec = self.queue.submit(sites,
                                         int(request.get("seed", 0)),
                                         config, flips=flips)
                self._wake.set()
                return {"ok": True, "id": spec.id}
            if op == "status":
                return {"ok": True,
                        "campaigns": self.queue.status(request.get("id")),
                        "running": self._running_id,
                        "worker_port": self.worker_port}
            if op == "cancel":
                target = request.get("id")
                state = self.queue.cancel(target)
                if state is None:
                    return {"ok": False, "error": f"unknown id {target!r}"}
                if state == "running" and target == self._running_id:
                    self._cancel_running.set()
                    return {"ok": True, "state": "cancelling"}
                return {"ok": True, "state": state}
            if op == "shutdown":
                self.shutdown()
                return {"ok": True}
        return {"ok": False, "error": f"unknown op {op!r}"}


def control_request(host: str, port: int, request: dict,
                    timeout: float = 10.0) -> dict:
    """One-shot control client: connect, send ``request``, return the
    reply (used by ``repro-sfi submit``/``status``/``cancel``)."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.settimeout(timeout)
        send_message(sock, request)
        reply = recv_message(sock)
    if reply is None:
        raise ConnectionError(f"{host}:{port}: server closed without reply")
    return reply
