"""Statistical Fault Injection — the paper's primary contribution.

Campaign orchestration over the emulated full-system model, latch-bit
sampling strategies, outcome classification, repeated-sample statistics
and hardening what-ifs.
"""

from repro.sfi.campaign import (
    CampaignConfig,
    InjectionPlan,
    SfiExperiment,
    plan_injections,
)
from repro.sfi.chip_campaign import (
    ChipCampaignResult,
    ChipExperiment,
    ChipInjectionRecord,
)
from repro.sfi.parallel import run_parallel_campaign, shard_sites
from repro.sfi.storage import (
    RECORD_ROW_FIELDS,
    CampaignJournal,
    CampaignStorageError,
    FencedAppendError,
    JournalCursor,
    JournalDelta,
    JournalVerifyReport,
    load_campaign,
    merge_campaigns,
    record_from_dict,
    record_to_row,
    save_campaign,
    scan_journal,
    verify_journal,
)
from repro.sfi.supervisor import (
    CampaignExecutionError,
    CampaignProgress,
    CampaignSupervisor,
    run_supervised_campaign,
)
from repro.sfi.classify import ClassifyOptions, classify
from repro.sfi.experiments import SampleSizePoint, sample_size_experiment
from repro.sfi.hardening import HardeningReport, harden, harden_rings
from repro.sfi.outcomes import OUTCOME_ORDER, Outcome
from repro.sfi.results import CampaignResult, InjectionRecord
from repro.sfi.sampling import (
    EmptyPopulationError,
    kind_sample,
    prior_weighted_sample,
    random_sample,
    ring_fraction_sample,
    static_prior_allocation,
    stratified_sample,
    unit_sample,
)
from repro.sfi.targeted import (
    macro_campaign,
    per_kind_campaigns,
    per_ring_campaigns,
    per_unit_campaigns,
)

__all__ = [
    "CampaignConfig",
    "CampaignExecutionError",
    "CampaignJournal",
    "CampaignProgress",
    "CampaignStorageError",
    "CampaignSupervisor",
    "ChipCampaignResult",
    "ChipExperiment",
    "ChipInjectionRecord",
    "EmptyPopulationError",
    "FencedAppendError",
    "InjectionPlan",
    "JournalCursor",
    "JournalDelta",
    "JournalVerifyReport",
    "RECORD_ROW_FIELDS",
    "record_from_dict",
    "record_to_row",
    "scan_journal",
    "verify_journal",
    "plan_injections",
    "run_parallel_campaign",
    "run_supervised_campaign",
    "shard_sites",
    "load_campaign",
    "macro_campaign",
    "merge_campaigns",
    "save_campaign",
    "CampaignResult",
    "ClassifyOptions",
    "HardeningReport",
    "InjectionRecord",
    "OUTCOME_ORDER",
    "Outcome",
    "SampleSizePoint",
    "SfiExperiment",
    "classify",
    "harden",
    "harden_rings",
    "kind_sample",
    "per_kind_campaigns",
    "per_ring_campaigns",
    "per_unit_campaigns",
    "prior_weighted_sample",
    "random_sample",
    "ring_fraction_sample",
    "sample_size_experiment",
    "static_prior_allocation",
    "stratified_sample",
    "unit_sample",
]
