"""Parallel campaign execution.

"Multiple concurrent copies of the simulation environment can be run
relatively easily, which is not the case with the beam experiments"
(§2.2).  This module shards a campaign across worker processes, each of
which builds its own copy of the prepared machine from the (picklable)
campaign configuration and runs its slice; the shards merge into one
:class:`~repro.sfi.results.CampaignResult`.

Execution is delegated to :class:`~repro.sfi.supervisor.CampaignSupervisor`,
so shards are individually tracked jobs with timeouts, retries and
incremental journaling — see that module for the failure policy.  Because
every injection's RNG stream is keyed by ``(seed, site, occurrence)``
(never the shard index), the merged result is bit-identical for any
``workers`` value, including the serial fallback.
"""

from __future__ import annotations

from repro.sfi.campaign import CampaignConfig
from repro.sfi.results import CampaignResult
from repro.sfi.supervisor import CampaignSupervisor


def shard_sites(sites: list[int], shards: int) -> list[list[int]]:
    """Split a site list into ``shards`` contiguous, size-balanced slices."""
    if shards < 1:
        raise ValueError("need at least one shard")
    base, extra = divmod(len(sites), shards)
    slices = []
    start = 0
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        slices.append(sites[start:start + size])
        start += size
    return [s for s in slices if s]


def run_parallel_campaign(config: CampaignConfig, sites: list[int],
                          seed: int = 0, workers: int | None = None,
                          population_bits: int = 0,
                          **supervisor_options) -> CampaignResult:
    """Run ``sites`` as a supervised campaign across ``workers`` processes.

    Each worker prepares an identical machine (same config, same AVP
    suite, same checkpoints) and runs its shard of the injection plan;
    results are bit-identical for any ``workers`` value.  When
    ``population_bits`` is 0 the workers' own latch population is used,
    so serial and parallel runs report the same coverage fractions.
    Extra keyword arguments (``journal``, ``resume``, ``shard_timeout``,
    ``max_retries``, ``progress``, ...) configure the supervisor.
    """
    supervisor = CampaignSupervisor(config, workers=workers,
                                    population_bits=population_bits,
                                    **supervisor_options)
    return supervisor.run(sites, seed)
