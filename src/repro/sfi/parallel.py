"""Parallel campaign execution.

"Multiple concurrent copies of the simulation environment can be run
relatively easily, which is not the case with the beam experiments"
(§2.2).  This module shards a campaign across worker processes, each of
which builds its own copy of the prepared machine from the (picklable)
campaign configuration and runs its slice; the shards merge into one
:class:`~repro.sfi.results.CampaignResult`.
"""

from __future__ import annotations

import multiprocessing
import os

from repro.sfi.campaign import CampaignConfig, SfiExperiment
from repro.sfi.results import CampaignResult

# Worker-side cache: one prepared machine per (config, process).
_WORKER_EXPERIMENT: SfiExperiment | None = None
_WORKER_CONFIG: CampaignConfig | None = None


def _worker_run(args: tuple) -> list:
    """Run one shard inside a worker process."""
    global _WORKER_EXPERIMENT, _WORKER_CONFIG
    config, sites, seed = args
    if _WORKER_EXPERIMENT is None or _WORKER_CONFIG != config:
        _WORKER_EXPERIMENT = SfiExperiment(config)
        _WORKER_CONFIG = config
    result = _WORKER_EXPERIMENT.run_campaign(sites, seed=seed)
    return result.records


def shard_sites(sites: list[int], shards: int) -> list[list[int]]:
    """Split a site list into ``shards`` contiguous, size-balanced slices."""
    if shards < 1:
        raise ValueError("need at least one shard")
    base, extra = divmod(len(sites), shards)
    slices = []
    start = 0
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        slices.append(sites[start:start + size])
        start += size
    return [s for s in slices if s]


def run_parallel_campaign(config: CampaignConfig, sites: list[int],
                          seed: int = 0, workers: int | None = None,
                          population_bits: int = 0) -> CampaignResult:
    """Run ``sites`` as a campaign across ``workers`` processes.

    Each worker prepares an identical machine (same config, same AVP
    suite, same checkpoints), so results are independent of the sharding;
    per-injection cycles are seeded per shard, so the merged result is
    deterministic for a given (seed, workers) pair.
    """
    if workers is None:
        workers = min(4, os.cpu_count() or 1)
    shards = shard_sites(sites, workers)
    if len(shards) <= 1:
        experiment = SfiExperiment(config)
        return experiment.run_campaign(sites, seed=seed)
    jobs = [(config, shard, seed + index) for index, shard in enumerate(shards)]
    context = multiprocessing.get_context("spawn")
    with context.Pool(processes=len(shards)) as pool:
        shard_records = pool.map(_worker_run, jobs)
    merged = CampaignResult(population_bits=population_bits)
    for records in shard_records:
        merged.records.extend(records)
    return merged
