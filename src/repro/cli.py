"""Command-line interface for the SFI reproduction.

Installed as ``repro-sfi`` (see ``pyproject.toml``), also runnable as
``python -m repro.cli``.  Subcommands map onto the paper's experiment
modes::

    repro-sfi info                         # model inventory
    repro-sfi campaign --flips 1000        # whole-core random SFI
    repro-sfi units --flips-per-unit 400   # Figures 3 & 4
    repro-sfi kinds --flips-per-kind 400   # Figure 5
    repro-sfi beam --events 1000           # Table 2's beam side
    repro-sfi workload                     # Table 1
    repro-sfi trace --flips 300 --show 5   # cause-and-effect narratives
    repro-sfi trace --journal camp.jsonl   # same, from a saved journal
    repro-sfi explain 17 --journal camp.jsonl  # taint provenance of one flip
    repro-sfi propagation --flips 200      # per-unit propagation matrix
    repro-sfi monitor --journal camp.jsonl # tail a running campaign
    repro-sfi stats --metrics out.prom     # render a metrics snapshot
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.analysis import (
    contribution_table,
    render_cause_effect,
    render_fig3,
    render_fig4,
    render_kind_results,
    render_table1,
    render_trace_summary,
    summarize_traces,
)
from repro.rtl import InjectionMode
from repro.sfi import (
    CampaignConfig,
    ClassifyOptions,
    SfiExperiment,
    per_kind_campaigns,
    per_unit_campaigns,
)
from repro.sfi.outcomes import OUTCOME_ORDER, Outcome
from repro.stats import wilson_interval


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument("--suite-size", type=int, default=4,
                        help="AVP testcases in the workload pool")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of tables")


def _config(args, **overrides) -> CampaignConfig:
    kwargs = dict(suite_size=args.suite_size)
    if getattr(args, "raw", False):
        kwargs["checker_mask"] = 0
        kwargs["classify_options"] = ClassifyOptions(latent_as_vanished=True)
    if getattr(args, "sticky", False):
        kwargs["injection_mode"] = InjectionMode.STICKY
    if getattr(args, "no_fastpath", False):
        kwargs["fastpath"] = False
    ckpt_stride = getattr(args, "ckpt_stride", None)
    if ckpt_stride is not None:
        kwargs["ckpt_stride"] = ckpt_stride or None
    backend = getattr(args, "backend", None)
    if backend is not None:
        kwargs["backend"] = backend
    wave_lanes = getattr(args, "wave_lanes", None)
    if wave_lanes is not None:
        kwargs["wave_lanes"] = wave_lanes
    kwargs.update(overrides)
    return CampaignConfig(**kwargs)


def _result_payload(result) -> dict:
    counts = result.counts()
    payload = {"total": result.total, "outcomes": {}}
    for outcome in OUTCOME_ORDER:
        low, high = wilson_interval(counts[outcome], max(1, result.total))
        payload["outcomes"][outcome.value] = {
            "count": counts[outcome],
            "fraction": counts[outcome] / max(1, result.total),
            "ci95": [low, high],
        }
    return payload


def _print_result(result, as_json: bool) -> None:
    if as_json:
        json.dump(_result_payload(result), sys.stdout, indent=2)
        print()
        return
    counts = result.counts()
    print(f"{'Outcome':<16}{'count':>8}{'fraction':>10}   95% CI")
    for outcome in OUTCOME_ORDER:
        low, high = wilson_interval(counts[outcome], max(1, result.total))
        print(f"{outcome.value:<16}{counts[outcome]:>8}"
              f"{counts[outcome] / max(1, result.total):>10.2%}"
              f"   [{low:.2%}, {high:.2%}]")


# ----------------------------------------------------------------------
# Subcommands.

def cmd_info(args) -> int:
    experiment = SfiExperiment(_config(args))
    latch_map = experiment.latch_map
    if args.json:
        json.dump({
            "latch_bits": len(latch_map),
            "units": latch_map.unit_bit_counts(),
            "rings": {ring: len(latch_map.indices_for_ring(ring))
                      for ring in latch_map.rings()},
            "references": [{"seed": r.testcase.seed, "cycles": r.cycles,
                            "instructions": r.committed, "cpi": r.cpi}
                           for r in experiment.references],
        }, sys.stdout, indent=2)
        print()
        return 0
    print(f"Injectable latch bits: {len(latch_map):,}")
    print("Per unit:")
    for unit, bits in sorted(latch_map.unit_bit_counts().items()):
        print(f"  {unit:5s} {bits:7,}")
    print("Per scan ring:")
    for ring in latch_map.rings():
        print(f"  {ring:8s} {len(latch_map.indices_for_ring(ring)):7,}")
    print("Workload references:")
    for reference in experiment.references:
        print(f"  seed {reference.testcase.seed}: "
              f"{reference.committed} instructions, "
              f"{reference.cycles} cycles (CPI {reference.cpi:.2f})")
    return 0


class _TraceLogProgress:
    """Progress observer feeding an :class:`repro.obs.TraceWriter`
    (composed with narration via TeeProgress)."""

    def __init__(self, writer) -> None:
        self.writer = writer

    def on_record(self, position: int, record) -> None:
        self.writer.write(position, record)

    def __getattr__(self, name):
        # Remaining CampaignProgress events are no-ops.
        return lambda *args, **kwargs: None


class _ExecutedCounter:
    """Progress observer separating this run's work from journal
    recovery, so the summary rate never divides by resumed records."""

    def __init__(self) -> None:
        self.executed = 0
        self.recovered = 0

    def on_start(self, total: int, pending: int) -> None:
        self.recovered = total - pending

    def on_record(self, position: int, record) -> None:
        self.executed += 1

    def __getattr__(self, name):
        return lambda *args, **kwargs: None


def cmd_campaign(args) -> int:
    config = _config(args)
    start = time.perf_counter()
    observed = bool(args.metrics or args.metrics_jsonl or args.trace_log)
    # Metrics/trace sinks route through the supervised engine even at
    # workers=1, so shard wall-time histograms and streaming records
    # exist on every instrumented run.
    supervised = (args.workers > 1 or args.journal is not None
                  or args.resume or observed or args.listen is not None)
    registry = None
    trace_writer = None
    if observed:
        from repro.obs import MetricsRegistry, TraceWriter, set_default_registry
        registry = MetricsRegistry()
        set_default_registry(registry)
        if args.trace_log:
            trace_writer = TraceWriter(args.trace_log)
    try:
        if supervised:
            from random import Random

            from repro.sfi.parallel import run_parallel_campaign
            from repro.sfi.sampling import random_sample
            from repro.sfi.supervisor import PrintProgress, TeeProgress
            if args.resume and not args.journal:
                print("--resume requires --journal", file=sys.stderr)
                return 2
            probe = SfiExperiment(config)
            # Site selection is a pure function of (seed, flips), so a
            # resumed run regenerates the same plan its journal was
            # written against.  The explicitly seeded Random is the
            # determinism contract REPRO-D01 enforces repo-wide.
            sites = random_sample(probe.latch_map, args.flips,
                                  Random(args.seed ^ 0x5F1))
            counter = _ExecutedCounter()
            observers = [counter]
            if not args.json:
                observers.append(PrintProgress(
                    every=max(1, args.flips // 10)))
            if trace_writer is not None:
                observers.append(_TraceLogProgress(trace_writer))
            telemetry_on = getattr(args, "telemetry", 0.0) > 0
            trace = None
            if telemetry_on:
                from repro.obs.fleet import SpanRecorder
                trace = SpanRecorder()
            transport = None
            if args.listen is not None:
                from repro.sfi.service.coordinator import SocketTransport
                convergence = None
                if telemetry_on:
                    from repro.obs.convergence import ConvergenceTracker
                    convergence = ConvergenceTracker()
                host, port = _parse_endpoint(args.listen,
                                             default_host="0.0.0.0")
                transport = SocketTransport(
                    host=host, port=port,
                    lease_items=args.lease_items,
                    worker_wait=args.worker_wait,
                    min_workers=args.min_workers,
                    max_retries=args.max_retries,
                    metrics=registry,
                    telemetry_interval=args.telemetry,
                    campaign=args.journal or "",
                    convergence=convergence)
                if not args.json:
                    print(f"[coordinator] listening for workers on "
                          f"{host}:{transport.port}")
            result = run_parallel_campaign(
                config, sites, seed=args.seed,
                workers=args.workers,
                population_bits=len(probe.latch_map),
                journal=args.journal,
                resume=args.resume,
                shard_timeout=args.shard_timeout,
                max_retries=args.max_retries,
                metrics=registry,
                reference_cycles=[r.cycles for r in probe.references],
                transport=transport,
                trace=trace,
                progress=TeeProgress(*observers) if observers else None)
            executed = counter.executed
            recovered = counter.recovered
            if trace is not None and args.journal:
                from repro.obs.fleet import write_span_log
                spans = list(trace.drain())
                if transport is not None:
                    spans.extend(transport.worker_spans)
                span_path = args.journal + ".spans"
                write_span_log(span_path, spans, campaign=args.journal)
                if not args.json:
                    print(f"{len(spans)} fleet spans -> {span_path}")
            if registry is not None and transport is not None \
                    and transport.fleet is not None:
                # Fold the worker-streamed cumulatives into the exported
                # snapshot (same merge semantics as shard results).
                registry.merge(transport.fleet.fleet)
        else:
            experiment = SfiExperiment(config)
            result = experiment.run_random_campaign(args.flips,
                                                    seed=args.seed)
            executed, recovered = result.total, 0
    finally:
        if trace_writer is not None:
            trace_writer.close()
    if registry is not None:
        from repro.obs import write_jsonl, write_prometheus
        if args.metrics:
            write_prometheus(registry, args.metrics)
        if args.metrics_jsonl:
            write_jsonl(registry, args.metrics_jsonl)
    elapsed = time.perf_counter() - start
    if not args.json:
        # Rate over the injections this process actually ran: a resumed
        # campaign's journal-recovered records cost no wall-clock here.
        print(f"{result.total} injections in {elapsed:.1f}s "
              f"({1000 * elapsed / max(1, executed):.0f} ms each"
              + (f"; {recovered} recovered from journal" if recovered
                 else "") + ")")
        if trace_writer is not None:
            print(f"{trace_writer.written} span chains -> {args.trace_log} "
                  f"({trace_writer.filtered} vanished filtered)")
    _print_result(result, args.json)
    return 0


def cmd_units(args) -> int:
    experiment = SfiExperiment(_config(args))
    results = per_unit_campaigns(experiment, args.flips_per_unit,
                                 seed=args.seed)
    if args.json:
        json.dump({unit: _result_payload(result)
                   for unit, result in results.items()}, sys.stdout, indent=2)
        print()
        return 0
    print(render_fig3(results))
    print()
    print(render_fig4(contribution_table(
        results, experiment.latch_map.unit_bit_counts())))
    return 0


def cmd_kinds(args) -> int:
    experiment = SfiExperiment(_config(args))
    results = per_kind_campaigns(experiment, args.flips_per_kind,
                                 seed=args.seed)
    if args.json:
        json.dump({kind.value: _result_payload(result)
                   for kind, result in results.items()}, sys.stdout, indent=2)
        print()
        return 0
    print(render_kind_results(results))
    return 0


def cmd_beam(args) -> int:
    from repro.beam import BeamExperiment, FluxModel
    beam = BeamExperiment(_config(args),
                          flux=FluxModel(sram_cross_section=args.sram_sigma))
    result = beam.run_events(args.events, seed=args.seed)
    if not args.json:
        print(f"{result.total} beam events over "
              f"{beam.latch_bits:,} latch + {beam.array_bits:,} array bits")
    _print_result(result, args.json)
    return 0


def cmd_workload(args) -> int:
    from repro.avp import AvpGenerator
    from repro.workload import (
        SPEC_COMPONENTS,
        measure_cpi,
        measure_opcode_mix,
        top90_class_mix,
    )
    avp_programs = [AvpGenerator().generate(seed).program
                    for seed in range(args.seed, args.seed + args.programs)]
    avp_mix = top90_class_mix(measure_opcode_mix(avp_programs))
    avp_cpi = measure_cpi(avp_programs[:2])
    spec_mixes = {}
    spec_cpis = {}
    for component in SPEC_COMPONENTS:
        programs = component.programs(count=args.programs)
        spec_mixes[component.name] = top90_class_mix(
            measure_opcode_mix(programs))
        spec_cpis[component.name] = measure_cpi(programs[:1])
    if args.json:
        json.dump({
            "avp": {cls.value: share for cls, share in avp_mix.items()},
            "avp_cpi": avp_cpi,
            "spec": {name: {cls.value: share for cls, share in mix.items()}
                     for name, mix in spec_mixes.items()},
            "spec_cpi": spec_cpis,
        }, sys.stdout, indent=2)
        print()
        return 0
    print(render_table1(avp_mix, avp_cpi, spec_mixes, spec_cpis))
    return 0


def cmd_trace(args) -> int:
    if args.journal:
        # Render from a saved journal — read-only, no re-simulation, and
        # safe on a journal another process is still appending to.
        from repro.sfi.results import CampaignResult
        from repro.sfi.storage import CampaignStorageError, read_journal
        try:
            header, covered = read_journal(args.journal)
        except CampaignStorageError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        result = CampaignResult(
            population_bits=header.get("population_bits", 0))
        positions = sorted(covered)
        for position in positions:
            result.add(covered[position])
        if args.trace_log:
            from repro.obs import TraceWriter
            with TraceWriter(args.trace_log) as writer:
                for position in positions:
                    writer.write(position, covered[position])
            print(f"{writer.written} span chains -> {args.trace_log} "
                  f"({writer.filtered} vanished filtered)")
    else:
        experiment = SfiExperiment(_config(args))
        result = experiment.run_random_campaign(args.flips, seed=args.seed)
        if args.trace_log:
            from repro.obs import TraceWriter
            with TraceWriter(args.trace_log) as writer:
                for position, record in enumerate(result.records):
                    writer.write(position, record)
            print(f"{writer.written} span chains -> {args.trace_log} "
                  f"({writer.filtered} vanished filtered)")
    visible = [record for record in result.records
               if record.outcome is not Outcome.VANISHED]
    for record in visible[:args.show]:
        print(render_cause_effect(record))
        print()
    print(render_trace_summary(summarize_traces(result)))
    return 0


def cmd_explain(args) -> int:
    """Re-run one campaign injection with taint tracking and render its
    propagation story.

    Plans and injection cycles are pure functions of ``(seed, flips,
    suite_size)`` (the REPRO-D01 determinism contract), so the trial is
    regenerated exactly — from a journal header, or from the same
    ``--flips``/``--seed`` the campaign ran with.  The re-run record is
    cross-checked against the journaled one when available.
    """
    from random import Random

    from repro.analysis import render_propagation_story
    from repro.sfi.campaign import injection_rng, plan_injections
    from repro.sfi.sampling import random_sample
    from repro.sfi.storage import CampaignStorageError, read_journal

    seed, flips, suite_size = args.seed, args.flips, args.suite_size
    journaled = None
    if args.journal:
        try:
            header, covered = read_journal(args.journal)
        except CampaignStorageError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        seed = header.get("seed", seed)
        flips = header.get("total_sites", flips)
        suite_size = header.get("meta", {}).get("suite_size", suite_size)
        journaled = covered.get(args.position)
    if flips is None:
        print("explain needs --journal or --flips to regenerate the "
              "campaign plan", file=sys.stderr)
        return 2
    if not 0 <= args.position < flips:
        print(f"position {args.position} outside campaign "
              f"(0..{flips - 1})", file=sys.stderr)
        return 2
    experiment = SfiExperiment(_config(args, suite_size=suite_size))
    sites = random_sample(experiment.latch_map, flips,
                          Random(seed ^ 0x5F1))
    plan = plan_injections(sites, len(experiment.suite))
    item = plan[args.position]
    inject_cycle = injection_rng(seed, item.site_index, item.occurrence) \
        .randrange(0, experiment.references[item.testcase_index].cycles)
    record = experiment.run_one(item.site_index, item.testcase_index,
                                inject_cycle, provenance=True)
    if journaled is not None and journaled.outcome is not record.outcome:
        print(f"journal mismatch: position {args.position} was journaled "
              f"as {journaled.outcome.value!r} but replays as "
              f"{record.outcome.value!r} — campaign flags (--raw/--sticky/"
              f"--suite-size) probably differ", file=sys.stderr)
        return 2
    payload = experiment.last_provenance
    if args.json:
        json.dump({"pos": args.position, "payload": payload},
                  sys.stdout, indent=2)
        print()
        return 0
    print(render_propagation_story(payload))
    return 0


def cmd_propagation(args) -> int:
    """Taint-track a campaign and render the per-unit propagation matrix,
    detection-latency statistics, and masking attribution."""
    from repro.analysis import render_provenance_report, write_provenance_jsonl

    config = _config(args, provenance=True)
    if args.workers > 1:
        from random import Random

        from repro.sfi.sampling import random_sample
        from repro.sfi.supervisor import CampaignSupervisor
        probe = SfiExperiment(config)
        sites = random_sample(probe.latch_map, args.flips,
                              Random(args.seed ^ 0x5F1))
        supervisor = CampaignSupervisor(config, workers=args.workers,
                                        population_bits=len(probe.latch_map))
        supervisor.run(sites, seed=args.seed)
        report = supervisor.provenance_report
        payloads = supervisor.provenance_payloads
    else:
        experiment = SfiExperiment(config)
        payloads = {}
        experiment.provenance_hook = \
            lambda pos, payload: payloads.setdefault(pos, payload)
        experiment.run_random_campaign(args.flips, seed=args.seed)
        report = experiment.provenance_report
    if args.jsonl:
        write_provenance_jsonl(payloads, args.jsonl)
    if args.json:
        json.dump(report.to_dict(), sys.stdout, indent=2)
        print()
        return 0
    print(render_provenance_report(report))
    if args.jsonl:
        print(f"{len(payloads)} per-injection payloads -> {args.jsonl}")
    return 0


def cmd_lint(args) -> int:
    from pathlib import Path

    from repro.lint import (
        render_jsonl,
        render_text,
        run_lint,
        write_baseline,
        write_jsonl,
    )
    from repro.lint.policy import render_policy

    if args.show_policy:
        print(render_policy())
        return 0
    root = Path(args.root) if args.root else None
    try:
        report = run_lint(
            root=root,
            include_audit=not args.no_audit,
            include_structural=args.structural,
            baseline_path=args.baseline,
            design_path=args.design)
    except (OSError, ValueError) as exc:
        print(f"lint failed: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        from repro.lint.engine import BASELINE_FILENAME, find_repo_file
        target = args.baseline or find_repo_file(
            root or Path(), BASELINE_FILENAME) or BASELINE_FILENAME
        write_baseline(report.findings + report.suppressed, str(target))
        print(f"{len(report.findings) + len(report.suppressed)} finding(s) "
              f"accepted into {target}")
        return 0
    if args.jsonl:
        write_jsonl(report.findings, args.jsonl)
    if args.format == "jsonl":
        sys.stdout.write(render_jsonl(report.findings))
    else:
        if report.findings:
            print(render_text(report.findings))
        summary = (f"lint: {report.files_scanned} files, "
                   f"{len(report.findings)} finding(s), "
                   f"{len(report.suppressed)} suppressed"
                   f"{', audit ok' if report.audit_ran else ''}"
                   f"{', structural ok' if report.structural_ran else ''}")
        if report.budget_source:
            summary += f" (budgets: {report.budget_source})"
        print(summary)
        for key in sorted(report.stale_baseline):
            print(f"stale baseline entry (violation is gone — remove it): "
                  f"{key[0]} {key[1]}: {key[2]}")
    exit_code = report.exit_code(strict=args.strict)
    if args.strict:
        # Strict mode is the ratchet gate: it is only meaningful against
        # a real baseline.  A missing or empty baseline means the gate
        # would silently pass on a tree it has never ratcheted.
        from repro.lint import load_baseline
        from repro.lint.engine import (
            BASELINE_FILENAME,
            default_root,
            find_repo_file,
        )
        baseline_file = args.baseline or find_repo_file(
            root if root is not None else default_root(), BASELINE_FILENAME)
        if (baseline_file is None or not Path(baseline_file).is_file()
                or not load_baseline(str(baseline_file))):
            print("lint --strict: baseline missing or empty (expected a "
                  f"non-empty {BASELINE_FILENAME}; run `repro-sfi lint "
                  "--write-baseline` to ratchet the current findings)",
                  file=sys.stderr)
            return 1
    return exit_code


def cmd_bounds(args) -> int:
    """Static masking bounds + the static-vs-SFI reconciliation gate."""
    from repro.analysis.static_bounds import (
        compute_bounds,
        load_sidecar,
        reconcile,
        render_bounds,
        render_cone_browser,
        write_sidecar,
    )
    from repro.emulator.structural import extract_graph

    if args.load:
        graph, bounds = load_sidecar(args.load)
        print(f"loaded sidecar {args.load} (model {graph.model_digest})")
    else:
        graph = extract_graph(suite_size=args.suite_size,
                              suite_seed=args.suite_seed,
                              settle_cycles=args.settle_cycles)
        bounds = compute_bounds(graph)

    reconcile_report = None
    if args.journal:
        from repro.sfi.storage import read_journal
        records = []
        for path in args.journal:
            _header, covered = read_journal(path)
            records.extend(covered[pos] for pos in sorted(covered))
        reconcile_report = reconcile(graph, bounds, records)
        # Reconciliation may have traced extra seeds into the graph;
        # recompute so the persisted bounds reflect the final read sets.
        bounds = compute_bounds(graph)

    if args.out:
        write_sidecar(args.out, graph, bounds)
    if args.html:
        from pathlib import Path
        Path(args.html).write_text(render_cone_browser(graph, bounds),
                                   encoding="utf-8")
    if args.db:
        from repro.warehouse import Warehouse
        with Warehouse(args.db) as warehouse:
            warehouse.ingest_structural(graph, bounds)
        print(f"sidecar ingested into {args.db}")

    if args.json:
        payload = bounds.to_payload()
        if reconcile_report is not None:
            payload["reconcile"] = reconcile_report.to_payload()
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        print(render_bounds(bounds))
        if args.out:
            print(f"sidecar -> {args.out}")
        if args.html:
            print(f"cone browser -> {args.html}")
        if reconcile_report is not None:
            checked = reconcile_report.records_checked
            gated = reconcile_report.records_gated
            print(f"reconcile: {checked} journaled record(s), {gated} "
                  f"covered by a static masking proof"
                  + (f", {len(reconcile_report.seeds_traced)} extra "
                     f"testcase seed(s) traced"
                     if reconcile_report.seeds_traced else ""))
            for check in reconcile_report.unit_checks:
                verdict = "ok" if check["ok"] else "VIOLATION"
                print(f"  {check['unit']:<6} bound {check['bound']:.3f} "
                      f"<= measured {check['measured_derating']:.3f} "
                      f"({check['trials']} trials): {verdict}")
            for violation in reconcile_report.violations:
                print(f"  VIOLATION [{violation['kind']}] "
                      f"{violation['site']} seed {violation['seed']}: "
                      f"{violation['detail']}")
    if reconcile_report is not None and not reconcile_report.ok:
        print(f"reconciliation gate FAILED: "
              f"{len(reconcile_report.violations)} record-level "
              f"violation(s), "
              f"{sum(not c['ok'] for c in reconcile_report.unit_checks)} "
              f"unit bound violation(s) — statically-proven-masked "
              f"latches produced non-VANISHED outcomes (model or "
              f"analyzer bug)", file=sys.stderr)
        return 1
    return 0


def _parse_endpoint(value: str, default_host: str = "127.0.0.1") -> tuple:
    """``host:port`` or bare ``port`` -> (host, port)."""
    host, _, port = value.rpartition(":")
    return (host or default_host, int(port))


def cmd_worker(args) -> int:
    """Join a lease coordinator as a remote shard worker."""
    from repro.sfi.service.worker import WorkerError, run_worker
    host, port = _parse_endpoint(args.connect)

    def narrate(event, detail):
        if not args.quiet:
            print(f"[worker] {event}: {detail}")

    try:
        executed = run_worker(
            host, port, name=args.name,
            max_connect_attempts=args.connect_attempts,
            max_campaigns=args.campaigns or None,
            progress=narrate)
    except WorkerError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130
    if not args.quiet:
        print(f"[worker] done: {executed} lease(s) executed")
    return 0


def cmd_serve(args) -> int:
    """Run the campaign queue service (control plane + worker port)."""
    from repro.sfi.service.queue import ServerConfig, ServiceServer
    registry = None
    if args.metrics:
        from repro.obs import MetricsRegistry
        registry = MetricsRegistry()
    warehouse = None
    if not args.no_warehouse:
        from pathlib import Path
        warehouse = args.warehouse or str(Path(args.spool)
                                          / "warehouse.sqlite")
    server = ServiceServer(
        args.spool,
        ServerConfig(host=args.host,
                     control_port=args.control_port,
                     worker_port=args.worker_port,
                     workers_local=args.local_workers,
                     lease_items=args.lease_items,
                     worker_wait=args.worker_wait,
                     min_workers=args.min_workers,
                     warehouse=warehouse),
        metrics=registry)
    print(f"[serve] control {args.host}:{server.control_port}, "
          f"workers {args.host}:{server.worker_port}, "
          f"spool {args.spool}")
    for campaign_id in server.recovered:
        print(f"[serve] re-queued {campaign_id} (was running; will "
              f"resume from its journal)")
    try:
        server.run_forever()
    except KeyboardInterrupt:
        server.shutdown()
    finally:
        if registry is not None and args.metrics:
            from repro.obs import write_prometheus
            write_prometheus(registry, args.metrics)
    return 0


def _control(args, request: dict) -> dict | None:
    from repro.sfi.service.queue import control_request
    host, port = _parse_endpoint(args.server)
    try:
        return control_request(host, port, request)
    except (OSError, ConnectionError) as exc:
        print(f"cannot reach server {host}:{port}: {exc}",
              file=sys.stderr)
        return None


def cmd_submit(args) -> int:
    reply = _control(args, {
        "op": "submit", "flips": args.flips, "seed": args.seed,
        "config": _service_config_payload(args)})
    if reply is None:
        return 2
    if not reply.get("ok"):
        print(f"submit rejected: {reply.get('error')}", file=sys.stderr)
        return 2
    print(reply["id"])
    return 0


def _service_config_payload(args) -> dict:
    from repro.sfi.service.messages import config_to_dict
    return config_to_dict(_config(args))


def cmd_status(args) -> int:
    if args.journal:
        return _status_journal(args)
    reply = _control(args, {"op": "status", "id": args.id})
    if reply is None:
        return 2
    if args.json:
        json.dump(reply, sys.stdout, indent=2)
        print()
        return 0
    print(f"worker port: {reply.get('worker_port')}   "
          f"running: {reply.get('running') or '-'}")
    campaigns = reply.get("campaigns", [])
    if not campaigns:
        print("no campaigns")
        return 0
    print(f"{'id':<12}{'state':<11}{'sites':>7}{'records':>9}  detail")
    for spec in campaigns:
        print(f"{spec['id']:<12}{spec['state']:<11}{spec['sites']:>7}"
              f"{spec['records']:>9}  {spec['detail']}")
    return 0


def _status_journal(args) -> int:
    """Offline campaign status: journal progress plus statistical
    convergence (the live coordinator folds the same counts, so the two
    views agree exactly on a finished journal)."""
    from repro.obs import read_journal_progress
    from repro.obs.convergence import ConvergenceTracker, render_convergence
    progress = read_journal_progress(args.journal)
    if not progress.done and progress.total == 0:
        print(f"{args.journal}: no readable journal records yet",
              file=sys.stderr)
        return 2
    tracker = ConvergenceTracker.from_counts(
        progress.unit_outcomes, target_width=args.target_width)
    if args.json:
        json.dump({"journal": str(args.journal), "done": progress.done,
                   "total": progress.total,
                   "complete": progress.complete,
                   "convergence": tracker.snapshot()},
                  sys.stdout, indent=2)
        print()
        return 0
    state = "complete" if progress.complete else "in progress"
    print(f"{args.journal}: {progress.done}/{progress.total or '?'} "
          f"injections ({state})")
    print(render_convergence(tracker))
    return 0


def cmd_cancel(args) -> int:
    reply = _control(args, {"op": "cancel", "id": args.id})
    if reply is None:
        return 2
    if not reply.get("ok"):
        print(f"cancel failed: {reply.get('error')}", file=sys.stderr)
        return 2
    print(f"{args.id}: {reply['state']}")
    return 0


def cmd_journal(args) -> int:
    """Offline journal tooling (currently: `journal verify`)."""
    from repro.sfi.storage import verify_journal
    report = verify_journal(args.path)
    if args.json:
        json.dump({"path": report.path, "ok": report.ok,
                   "records": report.records,
                   "torn_tail": report.torn_tail,
                   "lease_events": report.lease_events,
                   "issues": report.issues}, sys.stdout, indent=2)
        print()
    else:
        for issue in report.issues:
            print(issue)
        if report.torn_tail:
            print(f"{report.path}: torn trailing line (crash mid-append; "
                  f"recovery will drop it)")
        status = "OK" if report.ok else "CORRUPT"
        print(f"{report.path}: {status} — {report.records} record(s), "
              f"{report.lease_events} lease event(s), "
              f"{len(report.issues)} issue(s)")
    return 0 if report.ok else 1


def cmd_monitor(args) -> int:
    if args.connect:
        return _monitor_fleet(args)
    if not args.journal:
        print("monitor needs --journal (tail a journal) or --connect "
              "(live fleet view from a coordinator)", file=sys.stderr)
        return 2
    from repro.obs import monitor_campaign
    return monitor_campaign(
        args.journal,
        metrics_path=args.metrics,
        interval=args.interval,
        follow=not args.once,
        max_updates=args.max_updates,
        target_width=args.target_width,
        convergence=not args.no_convergence)


def _monitor_fleet(args) -> int:
    """Live fleet view: join a telemetry-enabled coordinator as a
    read-only monitor and render the snapshots it pushes."""
    import socket

    from repro.obs.convergence import render_convergence
    from repro.obs.fleet import unpack_payload, render_fleet
    from repro.sfi.service.messages import (
        FleetSnapshotMessage,
        MonitorHelloMessage,
    )
    from repro.sfi.service.wire import FrameError, recv_message, send_message

    host, port = _parse_endpoint(args.connect)
    try:
        sock = socket.create_connection((host, port), timeout=10.0)
    except OSError as exc:
        print(f"cannot reach coordinator {host}:{port}: {exc}",
              file=sys.stderr)
        return 2
    frames = 0
    last: dict = {}          # worker -> (monotonic stamp, injections)
    try:
        sock.settimeout(max(args.interval * 10, 30.0))
        send_message(sock, MonitorHelloMessage().to_wire())
        while True:
            try:
                payload = recv_message(sock)
            except (FrameError, OSError) as exc:
                print(f"[monitor] connection lost: {exc}", file=sys.stderr)
                return 0 if frames else 2
            if payload is None:
                # Orderly close: the campaign finished.
                return 0
            if payload.get("type") != FleetSnapshotMessage.TYPE:
                continue
            try:
                snapshot = unpack_payload(payload.get("snapshot") or "")
            except ValueError:
                continue
            frames += 1
            now = time.monotonic()
            rates = _fleet_rates(snapshot, last, now)
            print(render_fleet(snapshot, rates=rates))
            if snapshot.get("convergence"):
                print(render_convergence(snapshot["convergence"], limit=4))
            sys.stdout.flush()
            if args.once or (args.max_updates is not None
                             and frames >= args.max_updates):
                return 0
    except KeyboardInterrupt:
        return 130
    finally:
        sock.close()


def _fleet_rates(snapshot: dict, last: dict, now: float) -> dict:
    """Per-worker injections/s from consecutive fleet snapshots."""
    from repro.obs.fleet import _counter_total
    rates = {}
    for name, info in snapshot.get("workers", {}).items():
        injections = _counter_total(info.get("snapshot", []),
                                    "sfi_injections_total")
        stamp, previous = last.get(name, (None, None))
        if stamp is not None and now > stamp and injections >= previous:
            rates[name] = (injections - previous) / (now - stamp)
        last[name] = (now, injections)
    return rates


def cmd_stats(args) -> int:
    from repro.obs import load_metrics_file, render_stats
    registry = load_metrics_file(args.metrics)
    if registry is None:
        print(f"{args.metrics}: unreadable or empty metrics snapshot",
              file=sys.stderr)
        return 2
    if args.json:
        json.dump(registry.snapshot(), sys.stdout, indent=2)
        print()
        return 0
    print(render_stats(registry))
    return 0


def cmd_ingest(args) -> int:
    """Load campaign journals into the result warehouse."""
    from repro.sfi.storage import CampaignStorageError
    from repro.warehouse import JournalTailer, Warehouse, WarehouseError
    registry = None
    if args.metrics:
        from repro.obs import MetricsRegistry
        registry = MetricsRegistry()
    if args.name and len(args.journal) > 1:
        print("--name only applies to a single journal", file=sys.stderr)
        return 2
    failures = 0
    results = []
    try:
        with Warehouse(args.db, metrics=registry) as warehouse:
            for journal in args.journal:
                if args.follow:
                    tailer = JournalTailer(warehouse, journal,
                                           name=args.name,
                                           provenance=args.provenance,
                                           leases=not args.no_leases)
                    stats = tailer.follow(interval=args.interval,
                                          max_polls=args.max_polls)
                    if stats is None:
                        print(f"{journal}: journal never appeared",
                              file=sys.stderr)
                        failures += 1
                        continue
                else:
                    try:
                        stats = warehouse.ingest_journal(
                            journal, name=args.name,
                            provenance=args.provenance,
                            leases=not args.no_leases)
                    except CampaignStorageError as exc:
                        print(f"{journal}: {exc}", file=sys.stderr)
                        failures += 1
                        continue
                results.append(stats)
                if not args.json:
                    state = "complete" if stats.complete else \
                        f"{stats.records}/{stats.total_sites or '?'}"
                    print(f"[ingest] {stats.name}: +{stats.added} "
                          f"record(s) ({state}), "
                          f"{stats.lease_events} lease event(s), "
                          f"{stats.provenance_rows} provenance row(s)"
                          + (f", {stats.span_rows} span(s)"
                             if stats.span_rows else "")
                          + (f", {stats.skipped} line(s) skipped"
                             if stats.skipped else ""))
    except WarehouseError as exc:
        print(f"{args.db}: {exc}", file=sys.stderr)
        return 2
    if args.json:
        json.dump([vars(stats) for stats in results], sys.stdout, indent=2)
        print()
    if registry is not None and args.metrics:
        from repro.obs import write_prometheus
        write_prometheus(registry, args.metrics)
    return 1 if failures else 0


def cmd_query(args) -> int:
    """Answer aggregate questions from the warehouse."""
    from repro.warehouse import Warehouse, WarehouseError
    from repro.warehouse import queries
    try:
        with Warehouse(args.db) as warehouse:
            campaign = getattr(args, "campaign", None)
            if args.what == "campaigns":
                value: object = [dict(row) for row in warehouse.campaigns()]
                text = queries.render_campaigns(warehouse)
            elif args.what == "units":
                value = queries.unit_outcomes(warehouse, campaign)
                text = queries.render_unit_outcomes(value)
            elif args.what == "ser":
                value = queries.ser_trend(warehouse)
                text = queries.render_ser_trend(value)
            elif args.what == "latency":
                value = queries.detection_latency_percentiles(
                    warehouse, campaign)
                value["percentiles"] = {str(k): v for k, v
                                        in value["percentiles"].items()}
                text = queries.render_latency(
                    {"detected": value["detected"],
                     "percentiles": {float(k): v for k, v
                                     in value["percentiles"].items()}})
            elif args.what == "fastpath":
                value = queries.fastpath_stats(warehouse)
                text = queries.render_fastpath(value)
            elif args.what == "leases":
                value = queries.lease_health(warehouse)
                text = queries.render_leases(value)
            elif args.what == "structural":
                value = queries.bounds_vs_measured(warehouse, campaign)
                text = queries.render_bounds_vs_measured(value)
            elif args.what == "convergence":
                from repro.obs.convergence import render_convergence
                tracker = queries.convergence(
                    warehouse, campaign,
                    target_width=args.target_width)
                value = tracker.snapshot()
                text = render_convergence(tracker)
            elif args.what == "spans":
                if campaign is not None:
                    value = queries.campaign_critical_path(warehouse,
                                                           campaign)
                    text = queries.render_critical_path(value)
                else:
                    value = queries.span_phases(warehouse)
                    text = queries.render_span_phases(value)
            else:  # plans
                value = queries.query_plans(warehouse)
                text = "\n".join(
                    f"{'ok ' if plan['ok'] else 'BAD'} {plan['name']}: "
                    f"{plan['plan']}" for plan in value)
                if not all(plan["ok"] for plan in value):
                    print(text, file=sys.stderr)
                    return 1
            print(queries.to_json(value) if args.json else text)
    except WarehouseError as exc:
        print(f"{exc}", file=sys.stderr)
        return 2
    return 0


def cmd_report(args) -> int:
    """Render the warehouse as a self-contained HTML dashboard."""
    from pathlib import Path

    from repro.warehouse import Warehouse, WarehouseError, render_dashboard
    try:
        with Warehouse(args.db) as warehouse:
            html = render_dashboard(warehouse, title=args.title)
    except WarehouseError as exc:
        print(f"{args.db}: {exc}", file=sys.stderr)
        return 2
    out = Path(args.out)
    out.write_text(html)
    print(f"[report] wrote {out} ({len(html):,} bytes, self-contained)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sfi",
        description="Statistical Fault Injection (DSN 2008) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="model inventory and references")
    _add_common(p)
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("campaign", help="whole-core random SFI campaign")
    _add_common(p)
    p.add_argument("--flips", type=int, default=500)
    p.add_argument("--raw", action="store_true",
                   help="mask every hardware checker (Table 3's Raw mode)")
    p.add_argument("--sticky", action="store_true",
                   help="sticky injection mode instead of toggle")
    p.add_argument("--ckpt-stride", type=int, default=None, metavar="K",
                   help="checkpoint-ladder rung every K reference cycles "
                        "(0 disables rungs; default 64)")
    p.add_argument("--no-fastpath", action="store_true",
                   help="disable the fast path (checkpoint ladder + "
                        "golden-digest early exit); records are "
                        "bit-identical either way")
    p.add_argument("--backend", choices=("scalar", "bitplane"),
                   default="scalar",
                   help="trial execution backend: 'bitplane' packs up to "
                        "63 trials per machine word and resolves them "
                        "against the compiled golden schedule; records "
                        "are byte-identical to the scalar backend")
    p.add_argument("--wave-lanes", type=int, default=None, metavar="N",
                   help="bitplane backend: trials per wave (1-63, "
                        "default 63)")
    p.add_argument("--workers", type=int, default=1,
                   help="parallel simulation copies (paper §2.2)")
    p.add_argument("--journal", metavar="PATH",
                   help="journal completed injections to this JSONL file "
                        "(crash-consistent; enables --resume)")
    p.add_argument("--resume", action="store_true",
                   help="resume a killed campaign from its --journal, "
                        "skipping already-covered injections")
    p.add_argument("--shard-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="kill and retry a worker shard that exceeds this")
    p.add_argument("--max-retries", type=int, default=2,
                   help="per-shard retries before the shard is split "
                        "and requeued (default 2)")
    p.add_argument("--metrics", metavar="PATH",
                   help="write a Prometheus textfile metrics snapshot "
                        "(campaign/shard timings, per-outcome counters)")
    p.add_argument("--metrics-jsonl", metavar="PATH",
                   help="write the metrics snapshot as JSONL")
    p.add_argument("--trace-log", metavar="PATH",
                   help="stream one JSONL span chain per non-vanished "
                        "injection (see repro.obs.trace)")
    p.add_argument("--listen", metavar="[HOST:]PORT", default=None,
                   help="run as a distributed-campaign coordinator: "
                        "listen for `repro-sfi worker` processes and "
                        "lease shards to them (records are byte-"
                        "identical to a single-process run)")
    p.add_argument("--lease-items", type=int, default=8,
                   help="plan items per lease when distributing "
                        "(default 8)")
    p.add_argument("--worker-wait", type=float, default=10.0,
                   metavar="SECONDS",
                   help="with work outstanding and no workers "
                        "connected, degrade to in-process execution "
                        "after this long (default 10)")
    p.add_argument("--min-workers", type=int, default=0,
                   help="wait for this many workers before granting "
                        "the first lease")
    p.add_argument("--telemetry", type=float, default=0.0,
                   metavar="SECONDS",
                   help="fleet telemetry: workers stream metrics and "
                        "spans back roughly every SECONDS, the "
                        "coordinator tracks live convergence and serves "
                        "`repro-sfi monitor --connect`, and the merged "
                        "span tree lands in <journal>.spans (0 "
                        "disables; journals are byte-identical either "
                        "way)")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("units", help="per-unit campaigns (Figures 3 & 4)")
    _add_common(p)
    p.add_argument("--flips-per-unit", type=int, default=300)
    p.set_defaults(func=cmd_units)

    p = sub.add_parser("kinds", help="per-latch-type campaigns (Figure 5)")
    _add_common(p)
    p.add_argument("--flips-per-kind", type=int, default=300)
    p.set_defaults(func=cmd_kinds)

    p = sub.add_parser("beam", help="proton-beam simulation (Table 2)")
    _add_common(p)
    p.add_argument("--events", type=int, default=500)
    p.add_argument("--sram-sigma", type=float, default=1.3,
                   help="SRAM:latch cross-section ratio")
    p.set_defaults(func=cmd_beam)

    p = sub.add_parser("workload", help="AVP vs SPECInt mixes (Table 1)")
    _add_common(p)
    p.add_argument("--programs", type=int, default=3)
    p.set_defaults(func=cmd_workload)

    p = sub.add_parser("trace", help="cause-and-effect traces")
    _add_common(p)
    p.add_argument("--flips", type=int, default=300)
    p.add_argument("--show", type=int, default=5)
    p.add_argument("--journal", metavar="PATH",
                   help="render traces from a saved campaign journal "
                        "instead of running new injections")
    p.add_argument("--trace-log", metavar="PATH",
                   help="also write machine-readable JSONL span chains")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("explain",
                       help="taint-provenance story for one campaign "
                            "injection (re-run with tracking)")
    _add_common(p)
    p.add_argument("position", type=int,
                   help="campaign position of the injection to explain")
    p.add_argument("--journal", metavar="PATH",
                   help="derive seed/flips/suite-size from this campaign "
                        "journal and cross-check the replayed outcome")
    p.add_argument("--flips", type=int, default=None,
                   help="campaign size, when no --journal is given "
                        "(must match the original campaign)")
    p.add_argument("--raw", action="store_true",
                   help="match a campaign run with --raw")
    p.add_argument("--sticky", action="store_true",
                   help="match a campaign run with --sticky")
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("propagation",
                       help="taint-tracked campaign: per-unit propagation "
                            "matrix, detection latency, masking")
    _add_common(p)
    p.add_argument("--flips", type=int, default=200)
    p.add_argument("--raw", action="store_true",
                   help="mask every hardware checker (Table 3's Raw mode)")
    p.add_argument("--sticky", action="store_true",
                   help="sticky injection mode instead of toggle")
    p.add_argument("--workers", type=int, default=1,
                   help="parallel simulation copies (the merged report "
                        "is identical for any worker count)")
    p.add_argument("--jsonl", metavar="PATH",
                   help="write per-injection provenance payloads to this "
                        "JSONL sidecar")
    p.set_defaults(func=cmd_propagation)

    p = sub.add_parser(
        "lint",
        help="domain-aware static analysis: determinism lint + "
             "fault-space audit")
    p.add_argument("--strict", action="store_true",
                   help="also fail on warnings and on stale baseline "
                        "entries (the CI gate)")
    p.add_argument("--format", choices=("text", "jsonl"), default="text",
                   help="report format on stdout (default text)")
    p.add_argument("--jsonl", metavar="PATH",
                   help="additionally write findings JSONL to this file "
                        "(written even when empty, for CI artifacts)")
    p.add_argument("--baseline", metavar="PATH",
                   help="suppression baseline (default: lint-baseline.jsonl "
                        "found next to the repo's DESIGN.md)")
    p.add_argument("--write-baseline", action="store_true",
                   help="accept the current findings into the baseline "
                        "instead of failing on them")
    p.add_argument("--root", metavar="PATH",
                   help="source tree to lint (default: the installed "
                        "repro package)")
    p.add_argument("--design", metavar="PATH",
                   help="DESIGN.md to reconcile latch budgets against "
                        "(default: auto-discovered)")
    p.add_argument("--no-audit", action="store_true",
                   help="skip the fault-space audit (AST passes only)")
    p.add_argument("--structural", action="store_true",
                   help="also extract the structural latch graph from the "
                        "live model and evaluate the REPRO-G rules "
                        "(seconds of traced golden runs)")
    p.add_argument("--show-policy", action="store_true",
                   help="print the per-path rule policy table and exit")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "bounds",
        help="static masking bounds from the structural latch graph, "
             "plus the static-vs-SFI reconciliation gate over journaled "
             "campaigns")
    p.add_argument("--suite-size", type=int, default=6,
                   help="AVP testcases to trace (default 6, the campaign "
                        "default)")
    p.add_argument("--suite-seed", type=int, default=2008,
                   help="suite seed to trace (default 2008)")
    p.add_argument("--settle-cycles", type=int, default=2000,
                   help="post-quiescence cycles to keep tracing "
                        "(default 2000, covering the drain window)")
    p.add_argument("--load", metavar="PATH",
                   help="reuse a previously written sidecar instead of "
                        "re-extracting the graph")
    p.add_argument("--journal", metavar="PATH", action="append",
                   default=[],
                   help="reconcile this campaign journal against the "
                        "static analysis (repeatable; exit 1 on any "
                        "gate violation)")
    p.add_argument("--out", metavar="PATH",
                   help="write the graph+bounds sidecar JSON here")
    p.add_argument("--html", metavar="PATH",
                   help="write the self-contained HTML cone browser here")
    p.add_argument("--db", metavar="PATH",
                   help="also ingest the sidecar into this warehouse")
    p.add_argument("--json", action="store_true",
                   help="emit bounds (and reconcile verdict) as JSON")
    p.set_defaults(func=cmd_bounds)

    p = sub.add_parser("worker",
                       help="join a distributed campaign as a remote "
                            "shard worker")
    p.add_argument("--connect", metavar="HOST:PORT", required=True,
                   help="the coordinator's --listen (or serve worker-"
                        "port) endpoint")
    p.add_argument("--name", default="",
                   help="worker name in coordinator logs (default: "
                        "hostname-pid)")
    p.add_argument("--campaigns", type=int, default=1,
                   help="serve this many campaigns then exit; 0 keeps "
                        "reconnecting forever (default 1)")
    p.add_argument("--connect-attempts", type=int, default=10,
                   help="connect retries (capped exponential backoff) "
                        "before giving up; 0 retries forever")
    p.add_argument("--quiet", action="store_true",
                   help="suppress narration")
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser("serve",
                       help="run the campaign queue service "
                            "(submit/status/cancel + worker port)")
    p.add_argument("--spool", metavar="DIR", required=True,
                   help="spool directory for campaign specs and "
                        "journals (created if missing)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--control-port", type=int, default=2008,
                   help="port for submit/status/cancel clients "
                        "(default 2008; 0 picks a free port)")
    p.add_argument("--worker-port", type=int, default=0,
                   help="port shard workers join (default: pick a free "
                        "port and print it)")
    p.add_argument("--local-workers", type=int, default=0,
                   help="in-process pool size for work no remote "
                        "worker picks up (default 0 = serial)")
    p.add_argument("--lease-items", type=int, default=8)
    p.add_argument("--worker-wait", type=float, default=5.0,
                   help="seconds without remote workers before a "
                        "campaign falls back in-process (default 5)")
    p.add_argument("--min-workers", type=int, default=0)
    p.add_argument("--metrics", metavar="PATH",
                   help="write a Prometheus metrics snapshot on exit")
    p.add_argument("--warehouse", metavar="PATH", default=None,
                   help="warehouse database completed campaigns are "
                        "auto-ingested into (default: warehouse.sqlite "
                        "inside the spool)")
    p.add_argument("--no-warehouse", action="store_true",
                   help="disable auto-ingest of completed campaigns")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("submit",
                       help="queue a campaign on a running serve "
                            "instance")
    _add_common(p)
    p.add_argument("--server", metavar="HOST:PORT", default="127.0.0.1:2008")
    p.add_argument("--flips", type=int, default=500)
    p.add_argument("--raw", action="store_true")
    p.add_argument("--sticky", action="store_true")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("status",
                       help="list a serve instance's campaigns, or "
                            "(--journal) one campaign's progress and "
                            "statistical convergence")
    p.add_argument("--server", metavar="HOST:PORT", default="127.0.0.1:2008")
    p.add_argument("--id", default=None, help="show one campaign only")
    p.add_argument("--journal", metavar="PATH", default=None,
                   help="offline mode: report this journal's progress "
                        "and per-unit Wilson-interval convergence "
                        "instead of asking a server")
    p.add_argument("--target-width", type=float, default=0.02,
                   help="full CI width every estimate should reach "
                        "(default 0.02 = ±1%%)")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_status)

    p = sub.add_parser("cancel", help="cancel a queued or running campaign")
    p.add_argument("id", help="campaign id (see `repro-sfi status`)")
    p.add_argument("--server", metavar="HOST:PORT", default="127.0.0.1:2008")
    p.set_defaults(func=cmd_cancel)

    p = sub.add_parser("journal", help="offline journal tooling")
    journal_sub = p.add_subparsers(dest="journal_command", required=True)
    p = journal_sub.add_parser(
        "verify",
        help="integrity-check a campaign journal: torn tail, duplicate "
             "records, fencing-token regressions (exit 1 on corruption)")
    p.add_argument("path", help="journal file to verify")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_journal)

    p = sub.add_parser("monitor",
                       help="live view of a running campaign: tail its "
                            "journal, or --connect to a telemetry-"
                            "enabled coordinator for the fleet view")
    p.add_argument("--journal", metavar="PATH",
                   help="the campaign's --journal file to tail")
    p.add_argument("--connect", metavar="HOST:PORT", default=None,
                   help="join a coordinator started with --telemetry as "
                        "a read-only monitor (streamed worker metrics, "
                        "fleet totals, live convergence)")
    p.add_argument("--metrics", metavar="PATH",
                   help="also show headline series from this metrics "
                        "snapshot (Prometheus textfile or JSONL)")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between updates (default 2)")
    p.add_argument("--once", action="store_true",
                   help="print one frame and exit instead of following")
    p.add_argument("--max-updates", type=int, default=None,
                   help="stop after this many frames (default: until "
                        "the campaign completes)")
    p.add_argument("--target-width", type=float, default=0.02,
                   help="convergence target: full CI width every "
                        "estimate should reach (default 0.02 = ±1%%)")
    p.add_argument("--no-convergence", action="store_true",
                   help="skip the per-unit convergence table")
    p.set_defaults(func=cmd_monitor)

    p = sub.add_parser("stats",
                       help="render a finished run's metrics snapshot")
    p.add_argument("--metrics", metavar="PATH", required=True,
                   help="metrics snapshot (Prometheus textfile or JSONL)")
    p.add_argument("--json", action="store_true",
                   help="emit the raw snapshot as JSON")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("ingest",
                       help="load campaign journals into the result "
                            "warehouse (idempotent; --follow tails a "
                            "live campaign)")
    p.add_argument("journal", nargs="+",
                   help="campaign journal file(s) to ingest")
    p.add_argument("--db", metavar="PATH", default="warehouse.sqlite",
                   help="warehouse SQLite file (default warehouse.sqlite; "
                        "created if missing)")
    p.add_argument("--name", default=None,
                   help="warehouse identity for the campaign (default: "
                        "the journal's resolved path; single journal only)")
    p.add_argument("--provenance", metavar="PATH", default=None,
                   help="provenance JSONL sidecar to join (default: "
                        "<journal>.provenance when present)")
    p.add_argument("--no-leases", action="store_true",
                   help="skip the .leases sidecar")
    p.add_argument("--follow", action="store_true",
                   help="stream: poll the journal by byte offset until "
                        "the campaign completes")
    p.add_argument("--interval", type=float, default=1.0,
                   help="--follow poll interval in seconds (default 1)")
    p.add_argument("--max-polls", type=int, default=None,
                   help="stop --follow after this many polls")
    p.add_argument("--metrics", metavar="PATH",
                   help="write ingest metrics (sfi_ingest_*) snapshot")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_ingest)

    p = sub.add_parser("query",
                       help="aggregate questions over the warehouse "
                            "(per-unit outcomes, SER trend, latency "
                            "percentiles, fast-path, lease health)")
    p.add_argument("what", choices=("campaigns", "units", "ser", "latency",
                                    "fastpath", "leases", "structural",
                                    "convergence", "spans", "plans"),
                   help="which question to answer ('convergence': Wilson "
                        "CI widths and trials-to-target; 'spans': phase "
                        "totals, or the critical path with --campaign)")
    p.add_argument("--db", metavar="PATH", default="warehouse.sqlite")
    p.add_argument("--campaign", default=None,
                   help="restrict units/latency/convergence/spans to "
                        "one campaign (warehouse name)")
    p.add_argument("--target-width", type=float, default=0.02,
                   help="convergence target: full CI width every "
                        "estimate should reach (default 0.02 = ±1%%)")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("report",
                       help="render the warehouse as a self-contained "
                            "static HTML dashboard (no external fetches)")
    p.add_argument("--db", metavar="PATH", default="warehouse.sqlite")
    p.add_argument("--out", metavar="PATH", default="sfi-report.html",
                   help="output HTML file (default sfi-report.html)")
    p.add_argument("--title", default="SFI result warehouse")
    p.set_defaults(func=cmd_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe; exit
        # quietly with the conventional SIGPIPE status instead of a
        # traceback.  Detach stdout so interpreter shutdown does not
        # raise again while flushing.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 128 + 13


if __name__ == "__main__":
    sys.exit(main())
