"""Latch touch tracing for golden reference runs.

The fast path's *masked* early exit (see ``sfi/campaign.py``) needs one
fact about the fault-free run: after which cycle is a given latch never
read or written again?  If the faulty machine matches the golden state
everywhere except the injected latch, and the golden run never touches
that latch afterwards, then both runs evolve identically from here with
the flip frozen in place — the trial's remaining cycles are already
known.

:func:`trace_touches` records that fact by swapping every core latch's
class to a zero-slot subclass whose ``value``/``par`` attributes are
properties stamping ``last_touch[id(latch)] = core.cycles`` on each
access, then routing storage through the base class's slot descriptors.
All functional reads and writes go through those two attributes
(``read``/``write``/``parity_ok``/``bit``/``flip`` included), so the
trace *over*-approximates at worst — observability polls inside the
traced window mark latches as touched — which only suppresses exits,
never permits an unsound one.  The swap is reverted on exit, so campaign
hot paths pay nothing.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.rtl.latch import Latch

_VALUE = Latch.value  # the slot descriptors: storage behind the properties
_PAR = Latch.par

#: The active trace, consulted by every traced attribute access.  A
#: module global (not thread-local): reference runs are single-threaded
#: and worker processes each get their own module state.
_ACTIVE: TouchTrace | None = None


class TouchTrace:
    """Last-touch cycle per latch (keyed by ``id(latch)``)."""

    __slots__ = ("core", "last_touch")

    def __init__(self, core) -> None:
        self.core = core
        self.last_touch: dict[int, int] = {}


class _TracedLatch(Latch):
    """Layout-compatible :class:`Latch` whose state accesses are stamped."""

    __slots__ = ()

    @property
    def value(self) -> int:
        trace = _ACTIVE
        if trace is not None:
            trace.last_touch[id(self)] = trace.core.cycles
        return _VALUE.__get__(self)

    @value.setter
    def value(self, new: int) -> None:
        trace = _ACTIVE
        if trace is not None:
            trace.last_touch[id(self)] = trace.core.cycles
        _VALUE.__set__(self, new)

    @property
    def par(self) -> int:
        trace = _ACTIVE
        if trace is not None:
            trace.last_touch[id(self)] = trace.core.cycles
        return _PAR.__get__(self)

    @par.setter
    def par(self, new: int) -> None:
        trace = _ACTIVE
        if trace is not None:
            trace.last_touch[id(self)] = trace.core.cycles
        _PAR.__set__(self, new)


@contextmanager
def trace_touches(core):
    """Record the last cycle each of ``core``'s latches is accessed.

    Yields a :class:`TouchTrace`; the class swap (and the recording) ends
    when the context exits.  Use :func:`untraced` inside the window for
    observational reads (snapshots, digests) that must not count as
    machine activity.
    """
    global _ACTIVE
    latches = core.all_latches()
    trace = TouchTrace(core)
    for latch in latches:
        latch.__class__ = _TracedLatch
    _ACTIVE = trace
    try:
        yield trace
    finally:
        _ACTIVE = None
        for latch in latches:
            latch.__class__ = Latch


@contextmanager
def untraced():
    """Suspend touch recording (for snapshot/digest reads of the state)."""
    global _ACTIVE
    previous, _ACTIVE = _ACTIVE, None
    try:
        yield
    finally:
        _ACTIVE = previous
