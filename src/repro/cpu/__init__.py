"""The P6-lite core model: a latch-accurate, cycle-based POWER6-class
in-order core with hardware checkers, checkpoint-retry recovery, watchdog
hang detection and checkstop logic."""

from repro.cpu.checkers import CHECKSTOP_ONLY, Checker
from repro.cpu.chip import Power6Chip
from repro.cpu.events import EventKind, EventLog, MachineEvent
from repro.cpu.core import CoreSnapshot, Power6Core
from repro.cpu.params import UNIT_NAMES, CoreParams

__all__ = [
    "CHECKSTOP_ONLY",
    "Checker",
    "CoreParams",
    "CoreSnapshot",
    "EventKind",
    "EventLog",
    "MachineEvent",
    "Power6Chip",
    "Power6Core",
    "UNIT_NAMES",
]
