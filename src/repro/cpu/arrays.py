"""SRAM array models.

Caches and the recovery unit's checkpoint are SRAM arrays, not latches: the
paper's SFI campaigns sample *latches* only ("latches were randomly
selected ... among all the latches in the processor core") while the beam
experiment also upsets array cells ("including SRAM array events").  These
classes give arrays the same bit-accurate, injectable treatment as latches
so the beam simulator can strike them.
"""

from __future__ import annotations

from repro.rtl.parity import EccStatus, ecc_decode, ecc_encode, parity


class SramArray:
    """A parity-protected SRAM array of 32-bit words.

    Functional writes maintain the per-word parity bit; beam strikes flip
    data or parity bits without maintaining it, exactly like the latch
    model.
    """

    def __init__(self, name: str, words: int, width: int = 32) -> None:
        self.name = name
        self.width = width
        self.mask = (1 << width) - 1
        self.data = [0] * words
        self.par = [0] * words

    def __len__(self) -> int:
        return len(self.data)

    @property
    def bit_count(self) -> int:
        """Injectable bits: data bits plus one parity bit per word."""
        return len(self.data) * (self.width + 1)

    def write(self, index: int, value: int) -> None:
        value &= self.mask
        self.data[index] = value
        self.par[index] = value.bit_count() & 1

    def read(self, index: int) -> tuple[int, bool]:
        """Read a word; returns ``(value, parity_ok)``."""
        value = self.data[index]
        return value, (value.bit_count() & 1) == self.par[index]

    def flip(self, index: int, bit: int) -> None:
        """Beam strike: flip one bit (``bit == width`` flips the parity bit)."""
        if bit == self.width:
            self.par[index] ^= 1
        else:
            self.data[index] ^= 1 << bit

    def clear(self) -> None:
        self.data = [0] * len(self.data)
        self.par = [0] * len(self.par)

    def snapshot(self) -> tuple[list[int], list[int]]:
        return list(self.data), list(self.par)

    def restore(self, snap: tuple[list[int], list[int]]) -> None:
        self.data = list(snap[0])
        self.par = list(snap[1])


class EccArray:
    """A SEC-DED protected array of 32-bit words (the RUT checkpoint).

    Single-bit strikes are correctable on read/scrub; double-bit strikes
    are uncorrectable and surface as a checkstop when consumed.
    """

    def __init__(self, name: str, words: int) -> None:
        self.name = name
        self.data = [0] * words
        self.check = [ecc_encode(0)] * words

    def __len__(self) -> int:
        return len(self.data)

    @property
    def bit_count(self) -> int:
        """Injectable bits: 32 data + 7 check bits per word."""
        return len(self.data) * 39

    def write(self, index: int, value: int) -> None:
        value &= 0xFFFFFFFF
        self.data[index] = value
        self.check[index] = ecc_encode(value)

    def write_raw(self, index: int, value: int, check: int) -> None:
        """Write a (data, check) pair without re-encoding (models a raw
        datapath deposit whose check bits travelled with the data)."""
        self.data[index] = value & 0xFFFFFFFF
        self.check[index] = check & 0x7F

    def read(self, index: int) -> tuple[int, EccStatus]:
        """Read with correction; a CORRECTED read scrubs the array."""
        data, check, status = ecc_decode(self.data[index], self.check[index])
        if status is EccStatus.CORRECTED:
            self.data[index] = data
            self.check[index] = check
        return data, status

    def flip(self, index: int, bit: int) -> None:
        """Beam strike: flip one bit (bits 32..38 hit the check field)."""
        if bit >= 32:
            self.check[index] ^= 1 << (bit - 32)
        else:
            self.data[index] ^= 1 << bit

    def snapshot(self) -> tuple[list[int], list[int]]:
        return list(self.data), list(self.check)

    def restore(self, snap: tuple[list[int], list[int]]) -> None:
        self.data = list(snap[0])
        self.check = list(snap[1])


__all__ = ["EccArray", "SramArray", "parity"]
