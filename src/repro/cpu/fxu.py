"""Fixed Point Unit.

Executes integer ALU ops, compares, LR moves, resolved branches and system
ops (everything one-cycle except multiply/divide), and owns the GPR file.
Operands are parity-checked at the point of use; the result latch carries
its parity to the commit stage so a flip anywhere along the path is caught
by exactly one checker.
"""

from __future__ import annotations

from repro.isa import alu
from repro.isa.opcodes import Opcode, op_info
from repro.rtl.module import HwModule

from repro.cpu.checkers import Checker
from repro.cpu.debugblock import DebugBlock
from repro.cpu.regfile import RegisterBank

_ZEXT_IMM = frozenset({Opcode.ANDI, Opcode.ORI, Opcode.XORI})

_COMPUTE = {
    Opcode.ADD: alu.add32, Opcode.ADDI: alu.add32,
    Opcode.SUB: alu.sub32,
    Opcode.MULLW: alu.mul32, Opcode.DIVW: alu.div32,
    Opcode.AND: alu.and32, Opcode.ANDI: alu.and32,
    Opcode.OR: alu.or32, Opcode.ORI: alu.or32,
    Opcode.XOR: alu.xor32, Opcode.XORI: alu.xor32,
    Opcode.SLW: alu.slw32, Opcode.SLWI: alu.slw32,
    Opcode.SRW: alu.srw32, Opcode.SRWI: alu.srw32,
    Opcode.SRAW: alu.sraw32,
    Opcode.CMPW: alu.cmp_signed, Opcode.CMPWI: alu.cmp_signed,
    Opcode.CMPLW: alu.cmp_unsigned,
}


class Fxu(HwModule):
    """Fixed-point execution stage plus the GPR file."""

    def __init__(self, core, params) -> None:
        super().__init__("fxu")
        self.core = core
        ring = "FXU"
        self.val = self.add_latch("val", 1, ring=ring)
        self.op = self.add_latch("op", 6, ring=ring)
        self.rt = self.add_latch("rt", 5, ring=ring)
        self.a = self.add_latch("a", 32, protected=True, ring=ring)
        self.b = self.add_latch("b", 32, protected=True, ring=ring)
        self.cnt = self.add_latch("cnt", 4, ring=ring)
        self.res = self.add_latch("res", 32, protected=True, ring=ring)
        self.done = self.add_latch("done", 1, ring=ring)
        self.npc = self.add_latch("npc", 32, protected=True, ring=ring)
        self.flags = self.add_latch("flags", 8, ring=ring)
        self.itag = self.add_latch("itag", 6, ring=ring)
        # FXU-side physical GPR copy (the LSU holds its own copy).
        self.gpr_exec = self.add_child(RegisterBank("fxu.gprs", 32,
                                                    ring="REGFILE"))
        # Special-purpose register file (SPRGs, timers, ...): architected
        # state the AVP never touches, idle under the workload.
        self.sprs = self.add_child(RegisterBank("fxu.sprs", 16,
                                                ring="REGFILE"))
        self.debug = self.add_child(DebugBlock(
            "fxu.debug", params.scaled_debug_bits("FXU"), ring))

    # Flag bit layout shared with the commit stage.
    (F_WGPR, F_WFPR, F_WCR, F_WLR, F_STORE, F_BYTE, F_HALT,
     F_WCTR) = (1 << i for i in range(8))

    def can_accept(self) -> bool:
        return not self.val.value and not self.core.pervasive.unit_held("FXU")

    def pipeline_reset(self) -> None:
        for latch in (self.val, self.op, self.rt, self.a, self.b, self.cnt,
                      self.res, self.done, self.npc, self.flags, self.itag):
            latch.reset()

    def dispatch(self, dec, operands, pc: int, next_pc: int,
                 itag: int = 0) -> None:
        op = dec.op
        if op in (Opcode.MFLR,):
            a = self.core.idu.lr.value
            b = 0
        elif op in (Opcode.MFCTR,):
            a = self.core.idu.ctr.value
            b = 0
        elif op is Opcode.BDNZ:
            a = alu.sub32(self.core.idu.ctr.value, 1)
            b = 0
        elif op is Opcode.BL:
            a = alu.add32(pc, 4)
            b = 0
        else:
            a = operands.get(("g", dec.ra), 0)
            if op in _ZEXT_IMM:
                b = dec.imm & 0xFFFF
            elif op_info(op).has_imm:
                b = dec.imm & 0xFFFFFFFF
            else:
                b = operands.get(("g", dec.rb), 0)
        flags = 0
        if dec.writes_gpr:
            flags |= self.F_WGPR
        if dec.writes_cr:
            flags |= self.F_WCR
        if dec.writes_lr:
            flags |= self.F_WLR
        if dec.writes_ctr:
            flags |= self.F_WCTR
        if op is Opcode.HALT:
            flags |= self.F_HALT
        self.val.write(1)
        self.done.write(0)
        self.op.write(int(op))
        self.rt.write(dec.rt)
        self.a.write(a)
        self.b.write(b)
        self.npc.write(next_pc)
        self.flags.write(flags)
        self.cnt.write(max(0, op_info(op).latency - 1))
        self.itag.write(itag)

    def cycle(self) -> None:
        if not self.val.value or self.core.pervasive.unit_held("FXU"):
            return
        if self.done.value:
            # Result staged; hand it to the commit stage when it is free.
            if not self.res.parity_ok():
                if self.core.raise_error(Checker.FXU_RESULT_PARITY):
                    return
            if self.core.rut.accept(self.op, self.rt, self.res, self.flags,
                                    None, self.npc, self.itag):
                self.val.write(0)
                self.done.write(0)
            return
        count = self.cnt.value
        if count:
            self.cnt.write(count - 1)
            return
        if not self.a.parity_ok() or not self.b.parity_ok():
            if self.core.raise_error(Checker.FXU_OPERAND_PARITY):
                return
        op_value = self.op.value
        compute = _COMPUTE.get(op_value)
        result = compute(self.a.value, self.b.value) if compute else self.a.value
        self.res.write(result)
        self.done.write(1)
