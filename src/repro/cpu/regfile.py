"""Parity-protected register files (REGFILE-type latches).

Modelled with POWER6's real structure: the core is 2-way SMT (a second,
idle thread context doubles the architected register state) and the GPR
and FPR files are physically duplicated per execution cluster — the
FXU-side copy feeds arithmetic reads and *lives in the FXU*, while the
LSU-side copy feeds address/store-data reads and lives in the LSU.  Both
copies are written at commit.  Only the copy a consumer actually reads
can detect a flip, and the idle thread's registers are never consumed at
all — which is why flips in REGFILE latches mostly vanish (Figure 5)
even though the workload's own registers are hot.
"""

from __future__ import annotations

from repro.rtl.latch import Latch, LatchKind
from repro.rtl.module import HwModule

#: Read-port routing: arithmetic-cluster copy vs load/store-cluster copy.
COPY_EXEC = 0
COPY_LS = 1


class RegisterBank(HwModule):
    """One physical register-file copy (all SMT thread contexts)."""

    def __init__(self, name: str, count: int, ring: str,
                 threads: int = 2) -> None:
        super().__init__(name)
        self.count = count
        self.threads = threads
        self.banks: list[list[Latch]] = []
        for thread in range(threads):
            self.banks.append(self.add_bank(
                f"t{thread}", count, 32, kind=LatchKind.REGFILE,
                protected=True, ring=ring))

    def latch(self, index: int, thread: int = 0) -> Latch:
        return self.banks[thread % self.threads][index % self.count]


class RegisterFile:
    """Facade over the physical copies of one architected register file.

    Not a hardware module itself — the copies are owned by (and counted
    in) the units they physically sit in.
    """

    def __init__(self, copies: list[RegisterBank]) -> None:
        if not copies:
            raise ValueError("a register file needs at least one copy")
        self.copies = copies
        self.count = copies[0].count

    def __len__(self) -> int:
        return self.count

    def read(self, index: int, copy: int = COPY_EXEC) -> tuple[int, bool]:
        """Read one active-thread register through one physical copy."""
        latch = self.copies[copy % len(self.copies)].latch(index)
        return latch.value, latch.parity_ok()

    def write(self, index: int, value: int) -> None:
        """Commit-side write: every physical copy of the register."""
        for bank in self.copies:
            bank.latch(index).write(value)

    def values(self) -> list[int]:
        """Raw architected values (active thread), for state comparison."""
        return [self.copies[0].latch(i).value for i in range(self.count)]

    def load_values(self, values: list[int]) -> None:
        for index, value in enumerate(values):
            self.write(index, value)
