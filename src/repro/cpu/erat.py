"""Effective-to-real address translation (ERAT) arrays.

POWER-class cores translate every fetch and every data access through
small, fully-associative ERAT caches whose entries are parity-protected
latches.  They are among the hottest latch populations in the LSU/IFU:

* an entry parity error is correctable (invalidate + refill);
* a VPN corruption that makes two entries match the same page is a
  *multi-hit* — detected by dedicated compare logic and fatal (checkstop);
* an RPN corruption with clean parity silently translates to the wrong
  physical page — a genuine silent-data-corruption path.

The modelled translation is identity (RPN is refilled with the VPN), so
the machine is functionally transparent while keeping every one of those
failure modes live.
"""

from __future__ import annotations

from repro.rtl.module import HwModule

PAGE_BITS = 8  # 256-byte pages keep several entries hot under the AVP
VPN_WIDTH = 20
RPN_WIDTH = 20


class Erat(HwModule):
    """A small fully-associative translation cache."""

    def __init__(self, name: str, entries: int, ring: str) -> None:
        super().__init__(name)
        self.entries = entries
        self.vpn = self.add_bank("vpn", entries, VPN_WIDTH, protected=True,
                                 ring=ring)
        self.rpn = self.add_bank("rpn", entries, RPN_WIDTH, protected=True,
                                 ring=ring)
        self.valid = self.add_latch("valid", entries, ring=ring)
        self.victim = self.add_latch("victim", max(1, (entries - 1).bit_length()),
                                     ring=ring)

    def translate(self, addr: int) -> tuple[str, int]:
        """Translate ``addr``.

        Returns ``(status, physical_addr)`` with status one of ``"ok"``,
        ``"parity"`` (matching entry has a parity error — caller treats it
        as a correctable event and retries) or ``"multihit"`` (fatal).
        A miss refills an entry (identity mapping) and translates.
        """
        vpn = (addr >> PAGE_BITS) & ((1 << VPN_WIDTH) - 1)
        offset = addr & ((1 << PAGE_BITS) - 1)
        valid = self.valid.value
        matches = [i for i in range(self.entries)
                   if (valid >> i) & 1 and self.vpn[i].value == vpn]
        if len(matches) > 1:
            return "multihit", 0
        if matches:
            entry = matches[0]
            if not self.vpn[entry].parity_ok() or not self.rpn[entry].parity_ok():
                return "parity", entry
            return "ok", (self.rpn[entry].value << PAGE_BITS) | offset
        # Miss: allocate round-robin with an identity mapping.
        victim = self.victim.value % self.entries
        self.vpn[victim].write(vpn)
        self.rpn[victim].write(vpn)
        self.valid.write(valid | (1 << victim))
        self.victim.write((victim + 1) % self.entries)
        return "ok", (vpn << PAGE_BITS) | offset

    def invalidate_entry(self, entry: int) -> None:
        self.valid.write(self.valid.value & ~(1 << (entry % self.entries)))

    def invalidate_all(self) -> None:
        self.valid.write(0)
