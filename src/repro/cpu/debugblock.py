"""Debug/instrumentation latch blocks.

Real units carry large populations of latches with no influence on
architected execution: performance counters, trace-capture staging, spare
and ECO latches, debug muxes.  They are a major source of the architectural
derating the paper measures — a strike there is real but functionally
masked.  The block materialises its counters lazily (their values never
feed functional logic), which keeps the cycle loop fast without changing
any observable outcome.
"""

from __future__ import annotations

from repro.rtl.latch import LatchKind
from repro.rtl.module import HwModule


class DebugBlock(HwModule):
    """A block of functionally dead latches attached to a unit."""

    def __init__(self, name: str, bits: int, ring: str) -> None:
        super().__init__(name)
        remaining = bits
        index = 0
        # A mix of counter-shaped (32b), trace-shaped (64b is modelled as
        # two 32b words) and spare (8b) latches.
        shapes = [32, 32, 8, 32, 16, 8]
        while remaining > 0:
            width = min(shapes[index % len(shapes)], remaining)
            self.add_latch(f"dbg{index}", width, kind=LatchKind.FUNC,
                           protected=False, ring=ring)
            remaining -= width
            index += 1
