"""Two-core chip model.

The paper's emulated image is a full POWER6 *chip* — "the simulated model
of the IBM POWER6 contains ~350k latch bits across two cores".  This
module assembles two cores (each with private memory, running its own
AVP stream, as two LPAR images would) behind a chip-level checkstop
fan-in: either core's fail-stop stops the chip, while recoverable errors
stay contained to the faulting core.  Chip-level campaigns can therefore
measure *fault isolation*: a flip in core 0 must never corrupt core 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.core import CoreSnapshot, Power6Core
from repro.cpu.params import CoreParams
from repro.isa.program import Program
from repro.rtl.latch import Latch


@dataclass
class ChipSnapshot:
    """Snapshots of every core, taken at one chip-cycle boundary."""

    cores: list[CoreSnapshot]
    chip_checkstop: bool


class Power6Chip:
    """A chip of ``core_count`` cores with a common checkstop network."""

    def __init__(self, params: CoreParams | None = None,
                 core_count: int = 2) -> None:
        if core_count < 1:
            raise ValueError("a chip needs at least one core")
        self.params = params or CoreParams()
        self.cores = [Power6Core(self.params, name=f"core{i}")
                      for i in range(core_count)]
        self.chip_checkstop = False

    # ------------------------------------------------------------------
    # Structure.

    def latch_bits(self) -> int:
        return sum(core.latch_bits() for core in self.cores)

    def all_latches(self) -> list[Latch]:
        latches: list[Latch] = []
        for core in self.cores:
            latches.extend(core.all_latches())
        return latches

    def owner_of(self, latch: Latch) -> tuple[int, str]:
        """(core index, unit name) for a latch anywhere on the chip."""
        for index, core in enumerate(self.cores):
            try:
                return index, core.unit_of(latch)
            except KeyError:
                continue
        raise KeyError(f"latch {latch.name!r} not on this chip")

    # ------------------------------------------------------------------
    # Execution.

    def load_programs(self, programs: list[Program]) -> None:
        """One program image per core (each core has private memory)."""
        if len(programs) != len(self.cores):
            raise ValueError(
                f"need {len(self.cores)} programs, got {len(programs)}")
        for core, program in zip(self.cores, programs):
            core.load_program(program)
        self.chip_checkstop = False

    def cycle(self) -> None:
        """One chip clock: every running core advances; the chip-level
        checkstop network fans in (a fail-stop on any core stops all)."""
        if self.chip_checkstop:
            return
        for core in self.cores:
            if not core.quiesced:
                core.cycle()
        if any(core.checkstopped for core in self.cores):
            self.chip_checkstop = True

    @property
    def quiesced(self) -> bool:
        return self.chip_checkstop or all(core.quiesced for core in self.cores)

    def run(self, max_cycles: int = 200_000) -> int:
        cycles = 0
        while not self.quiesced and cycles < max_cycles:
            self.cycle()
            cycles += 1
        return cycles

    # ------------------------------------------------------------------
    # State management.

    def snapshot(self) -> ChipSnapshot:
        return ChipSnapshot(cores=[core.snapshot() for core in self.cores],
                            chip_checkstop=self.chip_checkstop)

    def restore(self, snap: ChipSnapshot) -> None:
        for core, core_snap in zip(self.cores, snap.cores):
            core.restore(core_snap)
        self.chip_checkstop = snap.chip_checkstop
