"""Recovery Unit (RUT).

Maintains the ECC-protected checkpoint of the architected state that
retry-recovery restores from, and owns the commit stage every instruction
flows through.  As on POWER6, the checkpoint storage itself is an SRAM
array (beam-injectable, not part of the latch population); the RUT's
*latches* are the commit/staging datapath and sequencing control — hot
state whose corruption the paper found to be disproportionately harmful.
"""

from __future__ import annotations

from repro.rtl.module import HwModule
from repro.rtl.parity import EccStatus

from repro.cpu.arrays import EccArray
from repro.cpu.checkers import Checker
from repro.cpu.debugblock import DebugBlock
from repro.cpu.fxu import Fxu

# Checkpoint word layout.
CKPT_GPR_BASE = 0
CKPT_FPR_BASE = 32
CKPT_CR = 64
CKPT_LR = 65
CKPT_PC = 66
CKPT_CTR = 67
CKPT_WORDS = 68


class Rut(HwModule):
    """Commit stage, checkpoint array and checkpoint scrubber."""

    def __init__(self, core, params) -> None:
        super().__init__("rut")
        self.core = core
        ring = "RUT"
        self.cmt_val = self.add_latch("cmt_val", 1, ring=ring)
        self.cmt_op = self.add_latch("cmt_op", 6, ring=ring)
        self.cmt_rt = self.add_latch("cmt_rt", 5, ring=ring)
        self.cmt_res = self.add_latch("cmt_res", 32, protected=True, ring=ring)
        self.cmt_addr = self.add_latch("cmt_addr", 32, protected=True, ring=ring)
        self.cmt_npc = self.add_latch("cmt_npc", 32, protected=True, ring=ring)
        self.cmt_flags = self.add_latch("cmt_flags", 8, ring=ring)
        # Checkpoint write staging: deliberately unprotected control — the
        # narrow window through which an undetected flip can poison the
        # checkpoint (the paper's RUT control-logic sensitivity).
        self.sta_val = self.add_latch("sta_val", 1, ring=ring)
        self.sta_idx = self.add_latch("sta_idx", 7, ring=ring)
        self.sta_data = self.add_latch("sta_data", 32, ring=ring)
        self.scrub_idx = self.add_latch("scrub_idx", 7, ring=ring)
        self.next_itag = self.add_latch("next_itag", 6, ring=ring)
        self.syndrome = self.add_latch("syndrome", 8, ring=ring)
        self.ckpt = EccArray("rut.ckpt", CKPT_WORDS)
        self.debug = self.add_child(DebugBlock(
            "rut.debug", params.scaled_debug_bits("RUT"), ring))

    # ------------------------------------------------------------------

    def pipeline_reset(self) -> None:
        for latch in (self.cmt_val, self.cmt_op, self.cmt_rt, self.cmt_res,
                      self.cmt_addr, self.cmt_npc, self.cmt_flags,
                      self.sta_val, self.sta_idx, self.sta_data,
                      self.next_itag):
            latch.reset()

    def init_checkpoint(self, pc: int) -> None:
        """Seed the checkpoint with the reset architected state."""
        for idx in range(CKPT_WORDS):
            self.ckpt.write(idx, 0)
        self.ckpt.write(CKPT_PC, pc)

    def pending_store(self) -> bool:
        """True while an architecturally committed store sits in the commit
        stage (loads must wait for it to reach the store queue)."""
        return bool(self.cmt_val.value and self.cmt_flags.value & Fxu.F_STORE)

    # ------------------------------------------------------------------

    def accept(self, op_latch, rt_latch, res_latch, flags_latch,
               addr_latch, npc_latch, itag_latch=None) -> bool:
        """Execution units hand finished instructions to the commit stage.

        Returns False (and leaves the unit holding the instruction) when
        the stage is occupied or it is not this instruction's turn — the
        ITAG comparator enforces program-order retirement across units of
        different latencies.  Result/address/PC parity travels with the
        data.
        """
        if self.cmt_val.value:
            return False
        if itag_latch is not None and (itag_latch.value & 0x3F) != self.next_itag.value:
            return False
        self.cmt_op.write(op_latch.value)
        self.cmt_rt.write(rt_latch.value)
        self.cmt_res.value, self.cmt_res.par = res_latch.value, res_latch.par
        if addr_latch is not None:
            self.cmt_addr.value, self.cmt_addr.par = addr_latch.value, addr_latch.par
        self.cmt_npc.value, self.cmt_npc.par = npc_latch.value, npc_latch.par
        self.cmt_flags.write(flags_latch.value)
        self.cmt_val.write(1)
        return True

    def commit_cycle(self) -> None:
        core = self.core
        if core.pervasive.unit_held("COMMIT"):
            return
        # Drain the checkpoint-write staging latch first (one cycle after
        # the commit that produced it).
        if self.sta_val.value:
            # A corrupted index poisons the wrong checkpoint word — the
            # silent-corruption path through the recovery machinery.
            self.ckpt.write(self.sta_idx.value % CKPT_WORDS, self.sta_data.value)
            self.sta_val.write(0)
        if not self.cmt_val.value:
            return
        flags = self.cmt_flags.value
        if flags & Fxu.F_STORE:
            if not core.lsu.stq_can_accept():
                return  # backpressure: hold in commit
            if not self.cmt_addr.parity_ok() or not self.cmt_res.parity_ok():
                if core.raise_error(Checker.RUT_COMMIT_PARITY):
                    return
            core.lsu.stq_push(self.cmt_addr, self.cmt_res,
                              bool(flags & Fxu.F_BYTE))
        elif flags & Fxu.F_WGPR:
            if not self.cmt_res.parity_ok():
                if core.raise_error(Checker.RUT_COMMIT_PARITY):
                    return
            rt = self.cmt_rt.value
            core.gprs.write(rt, self.cmt_res.value)
            self._stage_ckpt(CKPT_GPR_BASE + (rt & 31), self.cmt_res.value)
        elif flags & Fxu.F_WFPR:
            if not self.cmt_res.parity_ok():
                if core.raise_error(Checker.RUT_COMMIT_PARITY):
                    return
            rt = self.cmt_rt.value
            core.fprs.write(rt, self.cmt_res.value)
            self._stage_ckpt(CKPT_FPR_BASE + (rt & 31), self.cmt_res.value)
        if flags & Fxu.F_WCR:
            core.idu.cr.write(self.cmt_res.value & 0xF)
            self.ckpt.write(CKPT_CR, self.cmt_res.value & 0xF)
        if flags & Fxu.F_WLR:
            if not self.cmt_res.parity_ok():
                if core.raise_error(Checker.RUT_COMMIT_PARITY):
                    return
            core.idu.lr.write(self.cmt_res.value)
            self.ckpt.write(CKPT_LR, self.cmt_res.value)
        if flags & Fxu.F_WCTR:
            if not self.cmt_res.parity_ok():
                if core.raise_error(Checker.RUT_COMMIT_PARITY):
                    return
            core.idu.ctr.write(self.cmt_res.value)
            self.ckpt.write(CKPT_CTR, self.cmt_res.value)
        if not self.cmt_npc.parity_ok():
            if core.raise_error(Checker.RUT_COMMIT_PARITY):
                return
        self.ckpt.write(CKPT_PC, self.cmt_npc.value)
        if flags & Fxu.F_HALT:
            core.halt()
        core.idu.release_scoreboard(flags, self.cmt_rt.value)
        self.cmt_val.write(0)
        self.next_itag.write((self.next_itag.value + 1) & 0x3F)
        core.note_commit()

    def _stage_ckpt(self, idx: int, data: int) -> None:
        self.sta_val.write(1)
        self.sta_idx.write(idx)
        self.sta_data.write(data)

    def drain_staging(self) -> None:
        """Complete any in-flight checkpoint write.

        The recovery sequencer calls this before restoring: a commit's
        checkpoint update must not be lost just because the error arrived
        one cycle behind it, or checkpoint and architected state diverge.
        """
        if self.sta_val.value:
            self.ckpt.write(self.sta_idx.value % CKPT_WORDS, self.sta_data.value)
            self.sta_val.write(0)

    # ------------------------------------------------------------------

    def scrub_cycle(self) -> None:
        """Background checkpoint scrubber (one word per scrub interval)."""
        core = self.core
        if core.cycles % core.params.ckpt_scrub_interval:
            return
        if not core.pervasive.scrub_enabled():
            return
        idx = self.scrub_idx.value
        if idx >= CKPT_WORDS:
            idx = 0
        _, status = self.ckpt.read(idx)
        if status is EccStatus.CORRECTED:
            core.raise_corrected(Checker.RUT_CKPT_ECC)
        elif status is EccStatus.UNCORRECTABLE:
            core.pervasive.checkstop(Checker.RUT_CKPT_ECC)
        self.scrub_idx.write((idx + 1) % CKPT_WORDS)
