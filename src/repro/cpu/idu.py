"""Instruction Decode/Dispatch Unit.

Decodes the head of the fetch buffer, performs hazard checks against the
busy scoreboard, reads operands (with point-of-use parity checks), resolves
branches, and dispatches one instruction per cycle to the FXU, FPU or LSU.
Owns the architected CR and LR latches and the busy scoreboard — a flipped
busy bit with no in-flight producer is a genuine hang source, caught by
the pervasive watchdog.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import alu
from repro.isa.encoding import decode
from repro.isa.opcodes import FPR_WRITERS, GPR_WRITERS, Opcode, is_valid_opcode, op_info
from repro.rtl.module import HwModule

from repro.cpu.checkers import Checker
from repro.cpu.debugblock import DebugBlock
from repro.cpu.regfile import COPY_EXEC, COPY_LS

_STORE_GPR = frozenset({Opcode.STW, Opcode.STB})
_LSU_OPS = frozenset({Opcode.LWZ, Opcode.LBZ, Opcode.STW, Opcode.STB,
                      Opcode.LFS, Opcode.STFS})
_FPU_OPS = frozenset({Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV})
_XFORM_FXU = frozenset({Opcode.ADD, Opcode.SUB, Opcode.MULLW, Opcode.DIVW,
                        Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SLW,
                        Opcode.SRW, Opcode.SRAW, Opcode.CMPW, Opcode.CMPLW})
_IFORM_FXU = frozenset({Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
                        Opcode.SLWI, Opcode.SRWI, Opcode.CMPWI})
_ZEXT_IMM = frozenset({Opcode.ANDI, Opcode.ORI, Opcode.XORI})


@dataclass
class _Decoded:
    """Dispatch-relevant fields extracted from one instruction."""

    op: Opcode
    rt: int
    ra: int
    rb: int
    imm: int
    gpr_sources: tuple
    fpr_sources: tuple
    reads_cr: bool
    reads_lr: bool
    reads_ctr: bool
    writes_gpr: bool
    writes_fpr: bool
    writes_cr: bool
    writes_lr: bool
    writes_ctr: bool


class Idu(HwModule):
    """Decode/dispatch stage, plus architected CR/LR and the scoreboard."""

    def __init__(self, core, params) -> None:
        super().__init__("idu")
        self.core = core
        self.params = params
        ring = "IDU"
        self.cr = self.add_latch("cr", 4, protected=True, ring=ring)
        self.lr = self.add_latch("lr", 32, protected=True, ring=ring)
        self.ctr = self.add_latch("ctr", 32, protected=True, ring=ring)
        self.gpr_busy = self.add_latch("gpr_busy", 32, ring=ring)
        self.fpr_busy = self.add_latch("fpr_busy", 32, ring=ring)
        # bit0=CR, bit1=LR, bit2=CTR
        self.flag_busy = self.add_latch("flag_busy", 3, ring=ring)
        self.dec_ctrl = self.add_latch("dec_ctrl", 24, ring=ring)
        self.stall_reason = self.add_latch("stall_reason", 3, ring=ring)
        # Dispatch-order instruction tag: the commit stage retires strictly
        # in ITAG order, so execution units of different latencies cannot
        # commit out of order.
        self.itag = self.add_latch("itag", 6, ring=ring)
        self.debug = self.add_child(DebugBlock(
            "idu.debug", params.scaled_debug_bits("IDU"), ring))

    # ------------------------------------------------------------------

    def pipeline_reset(self) -> None:
        self.gpr_busy.reset()
        self.fpr_busy.reset()
        self.flag_busy.reset()
        self.dec_ctrl.reset()
        self.stall_reason.reset()
        self.itag.reset()

    def release_scoreboard(self, commit_flags: int, rt: int) -> None:
        """Commit-side scoreboard release, derived from the committed
        instruction's flags and target register (no side state)."""
        from repro.cpu.fxu import Fxu
        if commit_flags & Fxu.F_WGPR:
            self.gpr_busy.write_bit(rt & 31, 0)
        if commit_flags & Fxu.F_WFPR:
            self.fpr_busy.write_bit(rt & 31, 0)
        flags = self.flag_busy.value
        if commit_flags & Fxu.F_WCR:
            flags &= ~1
        if commit_flags & Fxu.F_WLR:
            flags &= ~2
        if commit_flags & Fxu.F_WCTR:
            flags &= ~4
        self.flag_busy.write(flags)

    # ------------------------------------------------------------------

    @staticmethod
    def _decode_fields(instr) -> _Decoded:
        op = Opcode(instr.op)
        gpr_sources: tuple = ()
        fpr_sources: tuple = ()
        reads_cr = reads_lr = reads_ctr = False
        if op in _XFORM_FXU:
            gpr_sources = (instr.ra, instr.rb)
        elif op in _IFORM_FXU:
            gpr_sources = (instr.ra,)
        elif op in _LSU_OPS:
            gpr_sources = (instr.ra,)
            if op in _STORE_GPR:
                gpr_sources = (instr.ra, instr.rt)
            elif op is Opcode.STFS:
                fpr_sources = (instr.rt,)
        elif op in _FPU_OPS:
            fpr_sources = (instr.ra, instr.rb)
        elif op is Opcode.BC:
            reads_cr = True
        elif op is Opcode.BLR or op is Opcode.MFLR:
            reads_lr = True
        elif op is Opcode.MTLR or op is Opcode.MTCTR:
            gpr_sources = (instr.ra,)
        elif op is Opcode.MFCTR or op is Opcode.BDNZ:
            reads_ctr = True
        return _Decoded(
            op=op, rt=instr.rt, ra=instr.ra, rb=instr.rb, imm=instr.imm,
            gpr_sources=gpr_sources, fpr_sources=fpr_sources,
            reads_cr=reads_cr, reads_lr=reads_lr, reads_ctr=reads_ctr,
            writes_gpr=op in GPR_WRITERS, writes_fpr=op in FPR_WRITERS,
            writes_cr=op in (Opcode.CMPW, Opcode.CMPWI, Opcode.CMPLW),
            writes_lr=op in (Opcode.BL, Opcode.MTLR),
            writes_ctr=op in (Opcode.MTCTR, Opcode.BDNZ),
        )

    def _hazard(self, dec: _Decoded) -> bool:
        # Per-bit scoreboard probes: only the registers an instruction
        # names are consulted, so an upset busy bit for a register the
        # program never touches is dead state, not a hazard.
        for reg in dec.gpr_sources:
            if self.gpr_busy.bit(reg):
                return True
        if dec.writes_gpr and self.gpr_busy.bit(dec.rt):
            return True
        for reg in dec.fpr_sources:
            if self.fpr_busy.bit(reg):
                return True
        if dec.writes_fpr and self.fpr_busy.bit(dec.rt):
            return True
        flags = self.flag_busy.value
        if (dec.reads_cr or dec.writes_cr) and flags & 1:
            return True
        if (dec.reads_lr or dec.writes_lr) and flags & 2:
            return True
        if (dec.reads_ctr or dec.writes_ctr) and flags & 4:
            return True
        return False

    def cycle(self) -> None:
        core = self.core
        ifu = core.ifu
        if core.pervasive.dispatch_held():
            return
        if not ifu.head_valid():
            return
        instr_latch, pc_latch = ifu.head()
        if not instr_latch.parity_ok() or not pc_latch.parity_ok():
            if core.raise_error(Checker.IFU_FBUF_PARITY):
                return  # masked checker: the corrupt word decodes below
        word = instr_latch.value
        pc = pc_latch.value
        instr = decode(word)
        if not is_valid_opcode(instr.op) or instr.op == Opcode.ATTN:
            if core.raise_error(Checker.IDU_ILLEGAL_OPCODE):
                return
            # Checker masked: the undefined word executes as a no-op.
            ifu.pop()
            return
        dec = self._decode_fields(instr)
        if self._hazard(dec):
            self.stall_reason.write(1)
            return

        # Structural hazard: the target execution unit must be free.
        info = op_info(dec.op)
        unit = {"FXU": core.fxu, "BRU": core.fxu, "SYS": core.fxu,
                "LSU": core.lsu, "FPU": core.fpu}[info.unit]
        if not unit.can_accept():
            self.stall_reason.write(2)
            return

        # Operand reads, with point-of-use parity checks.  Reads route
        # through the physical register-file copy that feeds the consuming
        # cluster (LSU reads the load/store-side copy).
        copy = COPY_LS if info.unit == "LSU" else COPY_EXEC
        operands = {}
        for reg in dec.gpr_sources:
            value, ok = core.gprs.read(reg, copy)
            if not ok and core.raise_error(Checker.IDU_REGREAD_PARITY):
                return
            operands[("g", reg)] = value
        for reg in dec.fpr_sources:
            value, ok = core.fprs.read(reg, copy)
            if not ok and core.raise_error(Checker.IDU_REGREAD_PARITY):
                return
            operands[("f", reg)] = value
        if dec.reads_cr and not self.cr.parity_ok():
            if core.raise_error(Checker.IDU_CR_LR_PARITY):
                return
        if dec.reads_lr and not self.lr.parity_ok():
            if core.raise_error(Checker.IDU_CR_LR_PARITY):
                return
        if dec.reads_ctr and not self.ctr.parity_ok():
            if core.raise_error(Checker.IDU_CR_LR_PARITY):
                return

        # Branch resolution (at decode); every instruction still flows to
        # the commit stage so the recovery checkpoint tracks PC/LR.
        next_pc = alu.add32(pc, 4)
        op = dec.op
        redirect = None
        if op is Opcode.B:
            redirect = next_pc = alu.add32(pc, 4 * dec.imm)
        elif op is Opcode.BC:
            if ((self.cr.value >> dec.rt) & 1) == dec.ra:
                redirect = next_pc = alu.add32(pc, 4 * dec.imm)
        elif op is Opcode.BL:
            redirect = next_pc = alu.add32(pc, 4 * dec.imm)
        elif op is Opcode.BLR:
            redirect = next_pc = self.lr.value & ~3 & 0xFFFFFFFF
        elif op is Opcode.BDNZ:
            if alu.sub32(self.ctr.value, 1) != 0:
                redirect = next_pc = alu.add32(pc, 4 * dec.imm)

        self.dec_ctrl.write((int(op) << 10) | (dec.rt << 5) | dec.ra)
        ifu.pop()
        if redirect is not None:
            ifu.redirect(redirect)

        # Scoreboard reservations; commit releases them from its flags.
        if dec.writes_gpr:
            self.gpr_busy.write_bit(dec.rt, 1)
        if dec.writes_fpr:
            self.fpr_busy.write_bit(dec.rt, 1)
        flags = self.flag_busy.value
        if dec.writes_cr:
            flags |= 1
        if dec.writes_lr:
            flags |= 2
        if dec.writes_ctr:
            flags |= 4
        self.flag_busy.write(flags)

        itag = self.itag.value
        self.itag.write((itag + 1) & 0x3F)
        unit.dispatch(dec, operands, pc, next_pc, itag)
        self.stall_reason.write(0)
