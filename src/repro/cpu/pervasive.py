"""Core pervasive logic.

Hosts the fault-isolation registers (FIRs), the watchdog/hang detector,
the recovery sequencer, the configuration-integrity checkers and the
scan-only MODE/GPTR latch populations.  This is the unit the paper labels
"Core (Pervasive Logic)": it contributes relatively few recoveries but
dominates hangs and checkstops (Figure 4), because its latches either hold
persistent configuration or are the error-handling machinery itself.
"""

from __future__ import annotations

from repro.rtl.latch import LatchKind
from repro.rtl.module import HwModule
from repro.rtl.parity import EccStatus

from repro.cpu.checkers import CHECKSTOP_ONLY, Checker
from repro.cpu.events import EventKind
from repro.cpu.debugblock import DebugBlock
from repro.cpu.rut import CKPT_CR, CKPT_CTR, CKPT_LR, CKPT_PC, CKPT_WORDS

# Recovery sequencer states.
R_IDLE = 0
R_FREEZE = 1
R_RESTORE = 2
R_REFETCH = 3
LEGAL_REC_STATES = (R_IDLE, R_FREEZE, R_RESTORE, R_REFETCH)

# GPTR clock-stop bit assignments.
_CLKSTOP_BITS = {"FETCH": 0, "DISP": 1, "FXU": 2, "LSU": 3, "FPU": 4, "COMMIT": 5}

_CLKCFG_RESET = 0x10         # one-hot PLL-multiplier select
_PLLCFG_RESET = 0b01011010   # fixed calibration pattern
_VIDCFG_RESET = 0x3C         # voltage-id calibration pattern
_REFCFG_RESET = 0x02         # one-hot reference-clock select


class Pervasive(HwModule):
    """FIRs, watchdog, recovery sequencer, MODE and GPTR scan rings."""

    def __init__(self, core, params) -> None:
        super().__init__("pervasive")
        self.core = core
        self.params = params
        ring = "CORE"

        # Fault isolation and error-handling state (FUNC latches).
        self.fir_rec = self.add_latch("fir_rec", 24, ring=ring)
        self.fir_xstop = self.add_latch("fir_xstop", 24, ring=ring)
        self.fir_info = self.add_latch("fir_info", 24, ring=ring)
        self.corrected_ctr = self.add_latch("corrected_ctr", 16, ring=ring)
        self.rec_count = self.add_latch("rec_count", 8, ring=ring)
        self.rec_since_commit = self.add_latch("rec_since_commit", 4, ring=ring)
        self.wd_ctr = self.add_latch("wd_ctr", 16, ring=ring)
        self.hang = self.add_latch("hang", 1, ring=ring)
        self.xstop = self.add_latch("xstop", 1, ring=ring)
        self.rstate = self.add_latch("rstate", 3, ring=ring)
        self.rcnt = self.add_latch("rcnt", 8, ring=ring)
        self.restore_idx = self.add_latch("restore_idx", 7, ring=ring)
        self.rec_pc = self.add_latch("rec_pc", 32, ring=ring)
        self.rec_reason = self.add_latch("rec_reason", 5, ring=ring)

        # MODE scan ring: persistent machine configuration.
        self.mode_chk_en = self.add_latch(
            "mode_chk_en", 24, kind=LatchKind.MODE, ring="MODE",
            reset_value=(1 << 24) - 1)
        self.mode_rec_en = self.add_latch(
            "mode_rec_en", 1, kind=LatchKind.MODE, ring="MODE", reset_value=1)
        self.mode_xstop_on_err = self.add_latch(
            "mode_xstop_on_err", 1, kind=LatchKind.MODE, ring="MODE")
        self.mode_wd_sel = self.add_latch(
            "mode_wd_sel", 3, kind=LatchKind.MODE, ring="MODE", reset_value=4)
        self.mode_scrub_en = self.add_latch(
            "mode_scrub_en", 1, kind=LatchKind.MODE, ring="MODE", reset_value=1)
        self.mode_cache_en = self.add_latch(
            "mode_cache_en", 2, kind=LatchKind.MODE, ring="MODE", reset_value=3)
        self.mode_clkcfg = self.add_latch(
            "mode_clkcfg", 8, kind=LatchKind.MODE, ring="MODE",
            reset_value=_CLKCFG_RESET)
        self.mode_pllcfg = self.add_latch(
            "mode_pllcfg", 8, kind=LatchKind.MODE, ring="MODE",
            reset_value=_PLLCFG_RESET)
        self.mode_vidcfg = self.add_latch(
            "mode_vidcfg", 8, kind=LatchKind.MODE, ring="MODE",
            reset_value=_VIDCFG_RESET)
        self.mode_refcfg = self.add_latch(
            "mode_refcfg", 8, kind=LatchKind.MODE, ring="MODE",
            reset_value=_REFCFG_RESET)
        self.mode_thresh = self.add_latch(
            "mode_thresh", 8, kind=LatchKind.MODE, ring="MODE", reset_value=0x20)
        self.mode_spare = self.add_latch(
            "mode_spare", 32, kind=LatchKind.MODE, ring="MODE")

        # GPTR scan ring: test/debug access registers.
        self.gptr_clkstop = self.add_latch(
            "gptr_clkstop", 8, kind=LatchKind.GPTR, ring="GPTR")
        self.gptr_forceerr = self.add_latch(
            "gptr_forceerr", 4, kind=LatchKind.GPTR, ring="GPTR")
        self.gptr_scansel = self.add_latch(
            "gptr_scansel", 24, kind=LatchKind.GPTR, ring="GPTR")
        self.gptr_lbist = self.add_latch(
            "gptr_lbist", 48, kind=LatchKind.GPTR, ring="GPTR")
        self.gptr_trace = self.add_latch(
            "gptr_trace", 32, kind=LatchKind.GPTR, ring="GPTR")
        self.gptr_abist = self.add_latch(
            "gptr_abist", 32, kind=LatchKind.GPTR, ring="GPTR")

        self.debug = self.add_child(DebugBlock(
            "pervasive.debug", params.scaled_debug_bits("CORE"), ring))

    def detection_latches(self) -> list:
        """The error-detection / error-handling network.

        Everything a fault must reach for the machine to *notice* it:
        the FIRs, the corrected/recovery counters, the watchdog and its
        hang/checkstop outputs, and the recovery sequencer state.  The
        structural analyzer treats these as sinks: a latch whose cone of
        influence reaches none of them (and no architected state) cannot
        produce any outcome but Vanished.
        """
        return [self.fir_rec, self.fir_xstop, self.fir_info,
                self.corrected_ctr, self.rec_count, self.rec_since_commit,
                self.wd_ctr, self.hang, self.xstop, self.rstate,
                self.rcnt, self.restore_idx, self.rec_pc, self.rec_reason]

    # ------------------------------------------------------------------
    # Configuration reads.

    def checker_enabled(self, checker: Checker) -> bool:
        return bool((self.mode_chk_en.value >> int(checker)) & 1)

    def watchdog_threshold(self) -> int:
        return 16 << (self.mode_wd_sel.value & 7)

    def scrub_enabled(self) -> bool:
        return bool(self.mode_scrub_en.value & 1) and self.rstate.value == R_IDLE

    def icache_enabled(self) -> bool:
        return bool(self.mode_cache_en.value & 1)

    def dcache_enabled(self) -> bool:
        return bool(self.mode_cache_en.value & 2)

    def fetch_held(self) -> bool:
        return bool(self.gptr_clkstop.value & (1 << _CLKSTOP_BITS["FETCH"]))

    def dispatch_held(self) -> bool:
        return bool(self.gptr_clkstop.value & (1 << _CLKSTOP_BITS["DISP"]))

    def unit_held(self, unit: str) -> bool:
        bit = _CLKSTOP_BITS.get(unit)
        return bool(bit is not None and (self.gptr_clkstop.value >> bit) & 1)

    # ------------------------------------------------------------------
    # Error-handling fabric.

    def report_error(self, checker: Checker) -> bool:
        """Entry point for a detected error.  Returns True when the error
        was handled (caller aborts the faulting operation); False when the
        checker is masked and the bad data must propagate."""
        if self.xstop.value or self.hang.value:
            return True
        if not self.checker_enabled(checker):
            self.core.event_log.record(self.core.cycles, EventKind.ERROR_MASKED,
                                       checker.name)
            return False
        already_latched = bool((self.fir_rec.value >> int(checker)) & 1)
        if already_latched and self.rstate.value != R_IDLE:
            # The FIR is level-latched: a persistent condition re-asserting
            # its own bit while its recovery is in progress is not a new
            # error (only a *different* checker firing mid-recovery
            # escalates to checkstop).
            return True
        self.fir_rec.write(self.fir_rec.value | (1 << int(checker)))
        self.core.event_log.record(
            self.core.cycles, EventKind.ERROR_DETECTED,
            f"{checker.name} (ifar=0x{self.core.ifu.ifar.value:08x})")
        unrecoverable = (
            checker in CHECKSTOP_ONLY
            or bool(self.mode_xstop_on_err.value & 1)
            or not (self.mode_rec_en.value & 1)
            or self.rstate.value != R_IDLE
        )
        if unrecoverable:
            self.checkstop(checker)
        else:
            self.rstate.write(R_FREEZE)
            self.rcnt.write(0)
            self.rec_reason.write(int(checker))
            self.core.event_log.record(self.core.cycles,
                                       EventKind.RECOVERY_START, checker.name)
        return True

    def report_corrected(self, checker: Checker) -> bool:
        """A locally corrected error (no recovery sequence needed)."""
        if not self.checker_enabled(checker):
            return False
        self.fir_info.write(self.fir_info.value | (1 << int(checker)))
        self.corrected_ctr.write((self.corrected_ctr.value + 1) & 0xFFFF)
        self.core.event_log.record(self.core.cycles,
                                   EventKind.CORRECTED_LOCAL, checker.name)
        return True

    def checkstop(self, checker: Checker) -> None:
        if not self.xstop.value:
            self.core.event_log.record(self.core.cycles, EventKind.CHECKSTOP,
                                       checker.name)
        self.fir_xstop.write(self.fir_xstop.value | (1 << int(checker)))
        self.xstop.write(1)

    # ------------------------------------------------------------------

    def cycle(self) -> None:
        if self.xstop.value:
            return
        if self.fir_xstop.value:
            # The checkstop FIR network drives the global checkstop: any
            # set bit (including an upset one) stops the machine.
            self.xstop.write(1)
            return
        self._check_test_controls()
        if self.xstop.value:
            return
        self._check_config()
        self._check_fsms()
        if self.xstop.value:
            return
        state = self.rstate.value
        if state == R_IDLE:
            self._watchdog()
        elif state == R_FREEZE:
            self._freeze_cycle()
        elif state == R_RESTORE:
            self._restore_cycle()
        elif state == R_REFETCH:
            self._refetch_cycle()
        # Illegal rstate encodings are caught by _check_fsms (checkstop).

    def _check_test_controls(self) -> None:
        if self.gptr_forceerr.value & 0xF:
            # A latched force-error control re-raises every cycle; the
            # second occurrence lands during recovery and checkstops.
            self.report_error(Checker.CORE_FSM_ILLEGAL)

    def _check_config(self) -> None:
        if not self.checker_enabled(Checker.CORE_FSM_ILLEGAL):
            return
        clkcfg = self.mode_clkcfg.value
        if (clkcfg == 0 or clkcfg & (clkcfg - 1)
                or self.mode_pllcfg.value & 0xF != _PLLCFG_RESET & 0xF):
            # Corrupted persistent clock configuration cannot be cured by
            # retry (scan-only state survives recovery): fail-stop.  The
            # voltage-id / reference-clock fields are latched but only
            # sampled at boot, so runtime flips there are dormant.
            self.checkstop(Checker.CORE_FSM_ILLEGAL)

    def _check_fsms(self) -> None:
        if self.rstate.value not in LEGAL_REC_STATES:
            # The recovery sequencer itself is corrupt: unrecoverable.
            self.checkstop(Checker.CORE_FSM_ILLEGAL)
            return
        if not self.checker_enabled(Checker.CORE_FSM_ILLEGAL):
            return
        core = self.core
        from repro.cpu.ifu import LEGAL_FETCH_STATES
        from repro.cpu.lsu import LEGAL_LSU_STATES
        if (core.ifu.fstate.value not in LEGAL_FETCH_STATES
                or core.lsu.state.value not in LEGAL_LSU_STATES):
            self.report_error(Checker.CORE_FSM_ILLEGAL)

    def _watchdog(self) -> None:
        core = self.core
        if core.halted:
            return
        if core.commits_prev:
            self.wd_ctr.write(0)
            return
        count = (self.wd_ctr.value + 1) & 0xFFFF
        self.wd_ctr.write(count)
        if count < self.watchdog_threshold():
            return
        # First response to a detected hang is a recovery attempt — a
        # stall caused by corrupt pipeline state (e.g. a stuck busy bit)
        # is cured by the retry.  Only when retries stop helping does the
        # machine report a hang.
        self.wd_ctr.write(0)
        can_retry = (bool(self.mode_rec_en.value & 1)
                     and self.rec_since_commit.value
                     <= self.params.max_recoveries_without_progress)
        if not can_retry or not self.report_error(Checker.CORE_HANG_DETECT):
            if not self.hang.value:
                self.core.event_log.record(self.core.cycles,
                                           EventKind.HANG_DETECTED,
                                           "watchdog expired, retries exhausted")
            self.hang.write(1)

    # ------------------------------------------------------------------
    # Recovery sequencer.

    def _freeze_cycle(self) -> None:
        self.core.rut.drain_staging()
        count = (self.rcnt.value + 1) & 0xFF
        self.rcnt.write(count)
        if count > 64:
            # Recovery cannot make progress (store queue never drained).
            self.checkstop(Checker.CORE_FSM_ILLEGAL)
            return
        if self.core.lsu.stq_empty() and count >= self.params.recovery_flush_cycles:
            self.rstate.write(R_RESTORE)
            self.restore_idx.write(0)

    def _restore_cycle(self) -> None:
        core = self.core
        idx = self.restore_idx.value
        for _ in range(self.params.recovery_restore_words_per_cycle):
            if idx >= CKPT_WORDS:
                break
            data, status = core.rut.ckpt.read(idx)
            if status is EccStatus.UNCORRECTABLE:
                self.checkstop(Checker.RUT_CKPT_ECC)
                return
            if status is EccStatus.CORRECTED:
                self.report_corrected(Checker.RUT_CKPT_ECC)
            if idx < 32:
                core.gprs.write(idx, data)
            elif idx < 64:
                core.fprs.write(idx - 32, data)
            elif idx == CKPT_CR:
                core.idu.cr.write(data & 0xF)
            elif idx == CKPT_LR:
                core.idu.lr.write(data)
            elif idx == CKPT_CTR:
                core.idu.ctr.write(data)
            elif idx == CKPT_PC:
                self.rec_pc.write(data)
            idx += 1
        self.restore_idx.write(idx & 0x7F)
        if idx >= CKPT_WORDS:
            self.core.event_log.record(
                self.core.cycles, EventKind.RECOVERY_RESTORED,
                f"checkpoint pc=0x{self.rec_pc.value:08x}")
            self.rstate.write(R_REFETCH)

    def _refetch_cycle(self) -> None:
        core = self.core
        for unit in (core.ifu, core.idu, core.fxu, core.fpu, core.lsu, core.rut):
            unit.pipeline_reset()
        core.ifu.redirect(self.rec_pc.value)
        self.wd_ctr.write(0)
        self.rec_count.write((self.rec_count.value + 1) & 0xFF)
        since = (self.rec_since_commit.value + 1) & 0xF
        self.rec_since_commit.write(since)
        self.corrected_ctr.write((self.corrected_ctr.value + 1) & 0xFFFF)
        if since > self.params.max_recoveries_without_progress:
            if self.rec_reason.value == int(Checker.CORE_HANG_DETECT):
                # A recovery-proof stall is a hang, not a machine error.
                if not self.hang.value:
                    self.core.event_log.record(self.core.cycles,
                                               EventKind.HANG_DETECTED,
                                               "stall survived recovery retries")
                self.hang.write(1)
            else:
                # Retrying is not making forward progress: fail-stop.
                self.checkstop(Checker.CORE_FSM_ILLEGAL)
            return
        self.core.event_log.record(self.core.cycles, EventKind.RECOVERY_DONE,
                                   f"recovery #{self.rec_count.value}")
        self.rstate.write(R_IDLE)
