"""The P6-lite core: unit wiring, the cycle loop, and state management.

``Power6Core`` glues the units together, provides the per-cycle evaluation
order (commit → execute → decode → fetch, the standard reverse-order trick
for synchronous designs), the error-reporting entry points the units call,
and full-state snapshot/restore used by the emulator's checkpointing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.iss import ArchState
from repro.isa.memory import Memory
from repro.isa.program import Program
from repro.rtl.latch import Latch
from repro.rtl.scanchain import ScanRing, build_rings

from repro.cpu.checkers import Checker
from repro.cpu.fpu import Fpu
from repro.cpu.fxu import Fxu
from repro.cpu.idu import Idu
from repro.cpu.ifu import Ifu
from repro.cpu.lsu import Lsu
from repro.cpu.params import CoreParams
from repro.cpu.pervasive import R_IDLE, Pervasive
from repro.cpu.events import EventKind, EventLog
from repro.cpu.nest import Nest
from repro.cpu.regfile import RegisterFile
from repro.cpu.rut import CKPT_CR, CKPT_CTR, CKPT_LR, CKPT_PC, Rut


@dataclass
class CoreSnapshot:
    """Complete machine state captured at a cycle boundary."""

    latches: list[tuple[int, int]]
    memory: dict[int, int]
    arrays: list
    cycles: int
    halted: bool
    commits_prev: int
    committed: int
    events: tuple = ((), 0)


class Power6Core:
    """One core of the modelled chip."""

    def __init__(self, params: CoreParams | None = None, name: str = "core0") -> None:
        self.params = params or CoreParams()
        self.name = name
        self.memory = Memory()
        self.cycles = 0
        self.halted = False
        self.commits_this_cycle = 0
        self.commits_prev = 0
        self.committed = 0
        self.event_log = EventLog()
        # Sampled observability hook: when set (repro.obs.CoreProfiler),
        # called every `profile_interval` cycles.  Costs one attribute
        # load + None check per cycle when unset.
        self.profile_hook = None
        self.profile_interval = 2048
        # Per-cycle provenance hook: when set (repro.cpu.tainttrace), it
        # marks the cycle boundary for the taint pending window.  Unlike
        # profile_hook it must fire every cycle, so provenance-enabled
        # trials pay the call; unset it is the same load + None check.
        self.taint_hook = None

        self.pervasive = Pervasive(self, self.params)
        self.rut = Rut(self, self.params)
        self.ifu = Ifu(self, self.params)
        self.idu = Idu(self, self.params)
        self.fxu = Fxu(self, self.params)
        self.fpu = Fpu(self, self.params)
        self.lsu = Lsu(self, self.params)
        self.units = {
            "IFU": self.ifu, "IDU": self.idu, "FXU": self.fxu,
            "FPU": self.fpu, "LSU": self.lsu, "RUT": self.rut,
            "CORE": self.pervasive,
        }
        self.nest = None
        if self.params.include_nest:
            self.nest = Nest(self, self.params)
            self.units["NEST"] = self.nest
        # Architected register files span two physical copies each: the
        # execution-cluster copy and the load/store-cluster copy.
        self.gprs = RegisterFile([self.fxu.gpr_exec, self.lsu.gpr_ls])
        self.fprs = RegisterFile([self.fpu.fpr_exec, self.lsu.fpr_ls])
        self._all_latches: list[Latch] = []
        self._unit_of_latch: dict[int, str] = {}
        for unit_name, unit in self.units.items():
            for latch in unit.all_latches():
                self._all_latches.append(latch)
                self._unit_of_latch[id(latch)] = unit_name
        self._arrays = [self.ifu.icache.array, self.lsu.dcache.array,
                        self.rut.ckpt]

    # ------------------------------------------------------------------
    # Structure queries (used by the emulator and the SFI framework).

    def all_latches(self) -> list[Latch]:
        return list(self._all_latches)

    def unit_of(self, latch: Latch) -> str:
        return self._unit_of_latch[id(latch)]

    def latch_bits(self) -> int:
        return sum(latch.width for latch in self._all_latches)

    def scan_rings(self) -> dict[str, ScanRing]:
        return build_rings(self._all_latches)

    def arrays(self) -> list:
        return list(self._arrays)

    # ------------------------------------------------------------------
    # Error-reporting fabric (units call these).

    def raise_error(self, checker: Checker) -> bool:
        """Report a detected error; True means the caller aborts the op."""
        return self.pervasive.report_error(checker)

    def raise_corrected(self, checker: Checker) -> bool:
        """Report a locally corrected error (no recovery sequence)."""
        return self.pervasive.report_corrected(checker)

    def note_commit(self) -> None:
        self.commits_this_cycle += 1
        self.committed += 1
        self.pervasive.rec_since_commit.write(0)

    def halt(self) -> None:
        if not self.halted:
            self.event_log.record(self.cycles, EventKind.HALT,
                                  f"after {self.committed} instructions")
        self.halted = True

    # ------------------------------------------------------------------
    # Status queries for outcome classification.

    @property
    def checkstopped(self) -> bool:
        return bool(self.pervasive.xstop.value)

    @property
    def hung(self) -> bool:
        return bool(self.pervasive.hang.value)

    @property
    def recovery_count(self) -> int:
        return self.pervasive.rec_count.value

    @property
    def corrected_count(self) -> int:
        return self.pervasive.corrected_ctr.value

    def error_free(self) -> bool:
        """True when no checker has ever fired (for baseline validation)."""
        perv = self.pervasive
        return not (perv.fir_rec.value or perv.fir_xstop.value
                    or perv.fir_info.value or perv.xstop.value
                    or perv.hang.value)

    # ------------------------------------------------------------------
    # Program loading and execution.

    def load_program(self, program: Program) -> None:
        """Reset the machine and install a program image."""
        for unit in self.units.values():
            unit.reset_latches()
        for array in self._arrays:
            if hasattr(array, "clear"):
                array.clear()
        self.memory = Memory()
        self.memory.load_program(program.words, program.base)
        for addr, value in program.data.items():
            self.memory.store_word(addr, value)
        entry = program.entry if program.entry is not None else program.base
        self.ifu.redirect(entry)
        self.rut.init_checkpoint(entry)
        self.cycles = 0
        self.halted = False
        self.commits_this_cycle = 0
        self.commits_prev = 0
        self.committed = 0
        self.event_log.clear()

    def cycle(self) -> None:
        """Advance the machine by one clock."""
        self.cycles += 1
        self.commits_this_cycle = 0
        hook = self.profile_hook
        if hook is not None and self.cycles % self.profile_interval == 0:
            hook(self)
        hook = self.taint_hook
        if hook is not None:
            hook(self)
        perv = self.pervasive
        perv.cycle()
        if perv.xstop.value:
            self.commits_prev = 0
            return
        if perv.rstate.value != R_IDLE:
            # Pipeline frozen during recovery; committed stores still drain.
            self.lsu.drain()
            self.commits_prev = 0
            return
        if self.nest is not None:
            self.nest.cycle()
        self.rut.commit_cycle()
        if not self.halted:
            self.fxu.cycle()
            self.fpu.cycle()
            self.lsu.cycle()
            self.idu.cycle()
            self.ifu.cycle()
        self.lsu.drain()
        self.rut.scrub_cycle()
        self.commits_prev = self.commits_this_cycle

    @property
    def quiesced(self) -> bool:
        """Nothing further can happen: halted with all stores drained, or a
        terminal error state was reached."""
        nest_idle = self.nest.quiesced() if self.nest is not None else True
        return (self.checkstopped or self.hung
                or (self.halted and self.lsu.stq_empty() and nest_idle
                    and not self.rut.cmt_val.value))

    def run(self, max_cycles: int = 100_000) -> int:
        """Run until the machine quiesces; returns cycles consumed."""
        start = self.cycles
        while not self.quiesced and self.cycles - start < max_cycles:
            self.cycle()
        return self.cycles - start

    # ------------------------------------------------------------------
    # Architected-state access.

    def arch_state(self) -> ArchState:
        state = ArchState(
            gprs=self.gprs.values(),
            fprs=self.fprs.values(),
            cr=self.idu.cr.value,
            lr=self.idu.lr.value,
            ctr=self.idu.ctr.value,
            pc=self.ifu.ifar.value,
            halted=self.halted,
        )
        return state

    def checkpoint_state(self) -> ArchState:
        """Architected state as recorded in the RUT checkpoint."""
        ckpt = self.rut.ckpt
        return ArchState(
            gprs=[ckpt.data[i] for i in range(32)],
            fprs=[ckpt.data[32 + i] for i in range(32)],
            cr=ckpt.data[CKPT_CR],
            lr=ckpt.data[CKPT_LR],
            ctr=ckpt.data[CKPT_CTR],
            pc=ckpt.data[CKPT_PC],
            halted=self.halted,
        )

    # ------------------------------------------------------------------
    # State digests (the fast path's golden-match primitive).

    def state_digest(self, exclude: frozenset | None = None,
                     include_cycle: bool = True) -> int:
        """Order-stable digest of the complete *machine* state.

        Covers everything that determines future behaviour — every latch
        value and parity shadow, memory (nonzero words, so write order
        and dead zero-stores cannot desynchronise equal states), SRAM
        array contents, cycle/halt/commit bookkeeping — and deliberately
        excludes the event log, which is observational: two runs whose
        digests match evolve identically from here even though their
        logs differ (the injected run carries an INJECTION event).

        ``exclude`` masks a set of latches out of the digest, given as
        positions in :meth:`all_latches` order: excluded latches hash as
        a placeholder in both value and parity sections, so two states
        match exactly when they agree everywhere *outside* the set.  The
        bit-plane backend's set-masked early exit compares against a
        golden trail digested with the same exclusion; ``None`` (and the
        empty set) is bit-for-bit the original full digest.

        ``include_cycle=False`` drops the cycle counter from the digest,
        producing a *lag-free* digest: a trial delayed by recovery can
        match the golden trajectory at an earlier cycle — same machine,
        shifted in time — which the bit-plane drain exploits to rejoin
        recovered lanes onto the golden tail.

        Built section-by-section (scalars, per-latch values, memory,
        arrays) so the cost is one tuple-hash pass over the state rather
        than a serialisation; at a few thousand latches this is cheap
        enough to sample every ``digest_stride`` cycles on the campaign
        hot path.
        """
        latches = self._all_latches
        if exclude:
            values = tuple(None if i in exclude else latch.value
                           for i, latch in enumerate(latches))
            pars = tuple(None if i in exclude else latch.par
                         for i, latch in enumerate(latches))
        else:
            values = tuple(latch.value for latch in latches)
            pars = tuple(latch.par for latch in latches)
        return hash((
            self.cycles if include_cycle else None,
            self.halted, self.commits_prev, self.committed,
            values,
            pars,
            tuple(sorted(self.memory.nonzero_words().items())),
            tuple(tuple(tuple(part) for part in array.snapshot())
                  for array in self._arrays),
        ))

    # ------------------------------------------------------------------
    # Snapshot/restore (the emulator's checkpoint mechanism).

    def snapshot(self) -> CoreSnapshot:
        return CoreSnapshot(
            latches=[(latch.value, latch.par) for latch in self._all_latches],
            memory=self.memory.snapshot(),
            arrays=[array.snapshot() for array in self._arrays],
            cycles=self.cycles,
            halted=self.halted,
            commits_prev=self.commits_prev,
            committed=self.committed,
            events=self.event_log.snapshot(),
        )

    def restore(self, snap: CoreSnapshot) -> None:
        for latch, (value, par) in zip(self._all_latches, snap.latches):
            latch.value = value
            latch.par = par
        self.memory.restore(snap.memory)
        for array, saved in zip(self._arrays, snap.arrays):
            array.restore(saved)
        self.cycles = snap.cycles
        self.halted = snap.halted
        self.commits_prev = snap.commits_prev
        self.committed = snap.committed
        self.commits_this_cycle = 0
        self.event_log.restore(snap.events)
