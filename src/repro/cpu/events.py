"""Machine event log: the cause-and-effect tracing substrate.

One of the paper's three headline capabilities is "cause and effect
tracing of system errors (effect) to the originating bit flip (cause) in
a full-system environment".  The event log records every RAS-visible
transition with its cycle — error detections (which checker, at what
PC), recovery sequencing, corrected events, hang/checkstop assertion,
instruction-stream landmarks — so a campaign record can narrate the
full causal chain from the flip to the final outcome.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class EventKind(enum.Enum):
    """RAS-visible machine events."""

    INJECTION = "injection"
    ERROR_DETECTED = "error-detected"
    ERROR_MASKED = "error-masked"          # checker disabled; data flowed
    CORRECTED_LOCAL = "corrected-local"    # in-place fix (cache/ERAT/ECC)
    RECOVERY_START = "recovery-start"
    RECOVERY_RESTORED = "recovery-restored"
    RECOVERY_DONE = "recovery-done"
    HANG_DETECTED = "hang"
    CHECKSTOP = "checkstop"
    HALT = "halt"


@dataclass(frozen=True)
class MachineEvent:
    """One timestamped event."""

    cycle: int
    kind: EventKind
    detail: str

    def __str__(self) -> str:
        return f"cycle {self.cycle:>7}: {self.kind.value:<18} {self.detail}"


class EventLog:
    """Bounded in-order event recorder attached to a core."""

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self.events: list[MachineEvent] = []
        self.dropped = 0

    def record(self, cycle: int, kind: EventKind, detail: str = "") -> None:
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(MachineEvent(cycle, kind, detail))

    def clear(self) -> None:
        self.events = []
        self.dropped = 0

    def of_kind(self, kind: EventKind) -> list[MachineEvent]:
        return [event for event in self.events if event.kind is kind]

    def first_of(self, kind: EventKind) -> MachineEvent | None:
        for event in self.events:
            if event.kind is kind:
                return event
        return None

    def snapshot(self) -> tuple:
        return (tuple(self.events), self.dropped)

    def restore(self, snap: tuple) -> None:
        self.events = list(snap[0])
        self.dropped = snap[1]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def render(self) -> str:
        lines = [str(event) for event in self.events]
        if self.dropped:
            lines.append(f"... ({self.dropped} further events dropped)")
        return "\n".join(lines)
