"""Machine event log: the cause-and-effect tracing substrate.

One of the paper's three headline capabilities is "cause and effect
tracing of system errors (effect) to the originating bit flip (cause) in
a full-system environment".  The event log records every RAS-visible
transition with its cycle — error detections (which checker, at what
PC), recovery sequencing, corrected events, hang/checkstop assertion,
instruction-stream landmarks — so a campaign record can narrate the
full causal chain from the flip to the final outcome.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass


class EventKind(enum.Enum):
    """RAS-visible machine events."""

    INJECTION = "injection"
    ERROR_DETECTED = "error-detected"
    ERROR_MASKED = "error-masked"          # checker disabled; data flowed
    CORRECTED_LOCAL = "corrected-local"    # in-place fix (cache/ERAT/ECC)
    RECOVERY_START = "recovery-start"
    RECOVERY_RESTORED = "recovery-restored"
    RECOVERY_DONE = "recovery-done"
    HANG_DETECTED = "hang"
    CHECKSTOP = "checkstop"
    HALT = "halt"


@dataclass(frozen=True)
class MachineEvent:
    """One timestamped event."""

    cycle: int
    kind: EventKind
    detail: str

    def __str__(self) -> str:
        return f"cycle {self.cycle:>7}: {self.kind.value:<18} {self.detail}"


class EventLog:
    """Bounded in-order event recorder attached to a core.

    Two independent bounds, both optional:

    * ``capacity`` — legacy head-biased cap: once full, *new* events are
      counted in ``dropped`` and discarded (the log keeps the beginning
      of the story).
    * ``max_events`` — ring buffer: once full, the *oldest* event is
      evicted per append (the log keeps the end of the story — the
      terminal checkstop/hang/halt a classifier and tracer care about).
      Hang-heavy workloads emit events indefinitely, so campaign paths
      pass a ring bound to keep a wedged run's memory flat; ``None``
      (the default) leaves the ring unbounded.

    When both are set the ring bound wins (a ring never refuses an
    append).  Evictions and refusals share the ``dropped`` counter.
    """

    def __init__(self, capacity: int | None = 256,
                 max_events: int | None = None) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be at least 1")
        self.capacity = capacity
        self.max_events = max_events
        self.events: deque[MachineEvent] = deque()
        self.dropped = 0

    def record(self, cycle: int, kind: EventKind, detail: str = "") -> None:
        self._append(MachineEvent(cycle, kind, detail))

    def replay(self, events) -> None:
        """Append pre-recorded events through the normal bounding logic.

        The fast-path early exit splices the golden run's event tail onto
        a truncated injection run; routing the tail through the same
        ring/capacity machinery as live :meth:`record` calls guarantees
        the spliced log truncates exactly as a full drain would have.
        """
        for event in events:
            self._append(event)

    def _append(self, event: MachineEvent) -> None:
        if self.max_events is not None:
            if len(self.events) >= self.max_events:
                self.events.popleft()
                self.dropped += 1
            self.events.append(event)
            return
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(event)

    def clear(self) -> None:
        self.events = deque()
        self.dropped = 0

    def of_kind(self, kind: EventKind) -> list[MachineEvent]:
        return [event for event in self.events if event.kind is kind]

    def first_of(self, kind: EventKind) -> MachineEvent | None:
        for event in self.events:
            if event.kind is kind:
                return event
        return None

    def snapshot(self) -> tuple:
        return (tuple(self.events), self.dropped)

    def restore(self, snap: tuple) -> None:
        self.events = deque(snap[0])
        self.dropped = snap[1]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def render(self) -> str:
        lines = [str(event) for event in self.events]
        if self.dropped:
            lines.append(f"... ({self.dropped} further events dropped)")
        return "\n".join(lines)
