"""Core periphery ("nest"): memory controller and I/O bridge.

The paper's stated future work: "fault injections in the periphery of
the core, such as the I/O subsystem, memory subsystem and so on."  This
optional extension (enable with ``CoreParams(include_nest=True)``) adds
two periphery units to the injectable population:

* a **memory controller** that buffers the store stream behind a
  parity-protected write queue and ECC-staging datapath — corruption
  there is past every core checkpoint, so detection means checkstop and
  silent corruption means wrong data in DRAM;
* an **I/O bridge** holding DMA descriptor and doorbell latches that are
  dormant under the AVP but armed: a flipped DMA-enable bit makes the
  bridge execute a spurious descriptor and scribble over memory — the
  classic periphery SDC the paper wants to chase next.
"""

from __future__ import annotations

from repro.rtl.module import HwModule

from repro.cpu.checkers import Checker
from repro.cpu.debugblock import DebugBlock


class MemoryController(HwModule):
    """Write-queue memory controller between the store stream and DRAM."""

    def __init__(self, core, params) -> None:
        super().__init__("nest.mc")
        self.core = core
        ring = "NEST"
        n = params.mc_queue_entries
        self.entries = n
        self.wq_valid = self.add_latch("wq_valid", n, ring=ring)
        self.wq_byte = self.add_latch("wq_byte", n, ring=ring)
        self.wq_addr = self.add_bank("wq_addr", n, 32, protected=True, ring=ring)
        self.wq_data = self.add_bank("wq_data", n, 32, protected=True, ring=ring)
        self.ecc_stage = self.add_latch("ecc_stage", 32, ring=ring)
        self.sched_ptr = self.add_latch("sched_ptr", 3, ring=ring)
        self.refresh_ctr = self.add_latch("refresh_ctr", 12, ring=ring)

    def can_accept(self) -> bool:
        mask = (1 << self.entries) - 1
        return (self.wq_valid.value & mask) != mask

    def empty(self) -> bool:
        return not self.wq_valid.value

    def enqueue(self, addr_latch, data_latch, is_byte: bool) -> bool:
        """Accept one store from the core's store queue (parity travels)."""
        valid = self.wq_valid.value
        for i in range(self.entries):
            if not (valid >> i) & 1:
                self.wq_addr[i].value = addr_latch.value
                self.wq_addr[i].par = addr_latch.par
                self.wq_data[i].value = data_latch.value
                self.wq_data[i].par = data_latch.par
                if is_byte:
                    self.wq_byte.write(self.wq_byte.value | (1 << i))
                else:
                    self.wq_byte.write(self.wq_byte.value & ~(1 << i))
                self.wq_valid.write(valid | (1 << i))
                return True
        return False

    def cycle(self) -> None:
        """Retire one write per cycle; the refresh engine ticks along."""
        self.refresh_ctr.write((self.refresh_ctr.value + 1) & 0xFFF)
        valid = self.wq_valid.value
        if not valid:
            return
        slot = next(i for i in range(self.entries) if (valid >> i) & 1)
        addr_latch, data_latch = self.wq_addr[slot], self.wq_data[slot]
        if not addr_latch.parity_ok() or not data_latch.parity_ok():
            # Data already left every core checkpoint: fail-stop.
            if self.core.raise_error(Checker.NEST_MC_PARITY):
                self.wq_valid.write(valid & ~(1 << slot))
                return
        self.ecc_stage.write(data_latch.value)
        addr = addr_latch.value
        if (self.wq_byte.value >> slot) & 1:
            self.core.memory.store_byte(addr, self.ecc_stage.value & 0xFF)
        else:
            self.core.memory.store_word(addr & ~3, self.ecc_stage.value)
        self.wq_valid.write(valid & ~(1 << slot))


class IoBridge(HwModule):
    """Host bridge: MMIO doorbells and a (normally idle) DMA engine."""

    def __init__(self, core, params) -> None:
        super().__init__("nest.io")
        self.core = core
        ring = "NEST"
        self.dma_ctl = self.add_latch("dma_ctl", 8, ring=ring)  # bit0: go
        self.dma_src = self.add_latch("dma_src", 32, protected=True, ring=ring)
        self.dma_dst = self.add_latch("dma_dst", 32, protected=True, ring=ring)
        self.dma_len = self.add_latch("dma_len", 8, ring=ring)
        self.dma_state = self.add_latch("dma_state", 2, ring=ring)
        self.doorbells = self.add_latch("doorbells", 16, ring=ring)
        self.intr_mask = self.add_latch("intr_mask", 16, ring=ring)
        self.mmio_window = self.add_bank("mmio", 8, 32, ring=ring)

    def cycle(self) -> None:
        if not self.dma_ctl.value & 1:
            return
        # A spuriously armed DMA engine: check descriptor integrity first
        # (real bridges parity-check descriptors before moving data).
        if not self.dma_src.parity_ok() or not self.dma_dst.parity_ok():
            if self.core.raise_error(Checker.NEST_IO_PARITY):
                self.dma_ctl.write(self.dma_ctl.value & ~1)
                return
        length = self.dma_len.value & 0xFF
        src = self.dma_src.value & ~3
        dst = self.dma_dst.value & ~3
        for i in range(min(4, length or 1)):  # 4 words per cycle burst
            word = self.core.memory.load_word((src + 4 * i) & 0xFFFFFFFC)
            self.core.memory.store_word((dst + 4 * i) & 0xFFFFFFFC, word)
        remaining = max(0, length - 4)
        self.dma_len.write(remaining)
        self.dma_src.write(src + 16)
        self.dma_dst.write(dst + 16)
        if remaining == 0:
            self.dma_ctl.write(self.dma_ctl.value & ~1)


class Nest(HwModule):
    """Container for the periphery units (one injectable pseudo-unit)."""

    def __init__(self, core, params) -> None:
        super().__init__("nest")
        self.core = core
        self.mc = self.add_child(MemoryController(core, params))
        self.io = self.add_child(IoBridge(core, params))
        self.debug = self.add_child(DebugBlock(
            "nest.debug", params.scaled_debug_bits("NEST"), "NEST"))

    def cycle(self) -> None:
        self.mc.cycle()
        self.io.cycle()

    def quiesced(self) -> bool:
        return self.mc.empty() and not (self.io.dma_ctl.value & 1)
