"""Direct-mapped cache with latch-based tags and SRAM data arrays.

Tag and valid bits are latches (injectable by SFI); the data store is a
parity-protected SRAM array (injectable by the beam simulator).  A parity
error on either path is *correctable*: the line is invalidated and
refetched from memory, which is how clean-cache parity errors are handled
on POWER6-class machines.
"""

from __future__ import annotations

from repro.isa.memory import Memory
from repro.rtl.latch import LatchKind
from repro.rtl.module import HwModule

from repro.cpu.arrays import SramArray


class DirectMappedCache(HwModule):
    """A read-allocate, write-through direct-mapped cache."""

    def __init__(self, name: str, lines: int, words_per_line: int,
                 ring: str) -> None:
        super().__init__(name)
        if lines & (lines - 1) or words_per_line & (words_per_line - 1):
            raise ValueError("cache geometry must be powers of two")
        self.lines = lines
        self.words_per_line = words_per_line
        self.offset_bits = (words_per_line * 4 - 1).bit_length()
        self.index_bits = (lines - 1).bit_length()
        self.tag_width = 32 - self.offset_bits - self.index_bits
        self.tags = self.add_bank("tag", lines, self.tag_width,
                                  kind=LatchKind.FUNC, protected=True, ring=ring)
        self.valids = self.add_latch("valid", lines, kind=LatchKind.FUNC,
                                     protected=False, ring=ring)
        self.array = SramArray(f"{name}.data", lines * words_per_line)

    def _split(self, addr: int) -> tuple[int, int, int]:
        offset_words = (addr >> 2) & (self.words_per_line - 1)
        index = (addr >> self.offset_bits) & (self.lines - 1)
        tag = (addr >> (self.offset_bits + self.index_bits)) & ((1 << self.tag_width) - 1)
        return tag, index, offset_words

    def lookup(self, addr: int) -> tuple[str, int]:
        """Probe the cache.

        Returns ``(status, word)`` where status is one of:

        * ``"hit"``      - valid line, matching tag, clean parity;
        * ``"miss"``     - no valid matching line;
        * ``"tag_err"``  - tag latch parity error on the indexed line;
        * ``"data_err"`` - data array parity error on the accessed word.

        The caller decides what each status means (errors invalidate and
        refetch; they are correctable events).
        """
        tag, index, offset = self._split(addr)
        tag_latch = self.tags[index]
        if not ((self.valids.value >> index) & 1):
            return "miss", 0
        if not tag_latch.parity_ok():
            return "tag_err", 0
        if tag_latch.value != tag:
            return "miss", 0
        word, parity_ok = self.array.read(index * self.words_per_line + offset)
        if not parity_ok:
            # The (corrupt) word is still returned so that a masked checker
            # consumes the bad data, as the real hardware would.
            return "data_err", word
        return "hit", word

    def fill(self, addr: int, memory: Memory) -> None:
        """Refill the line containing ``addr`` from backing memory."""
        tag, index, _ = self._split(addr)
        line_base = addr & ~((1 << self.offset_bits) - 1)
        for i in range(self.words_per_line):
            self.array.write(index * self.words_per_line + i,
                             memory.load_word(line_base + 4 * i))
        self.tags[index].write(tag)
        self.valids.write(self.valids.value | (1 << index))

    def write_through(self, addr: int, value: int) -> None:
        """Update the cached copy on a store hit (memory is written by the
        caller); a miss is not allocated."""
        tag, index, offset = self._split(addr)
        tag_latch = self.tags[index]
        if (((self.valids.value >> index) & 1)
                and tag_latch.parity_ok() and tag_latch.value == tag):
            self.array.write(index * self.words_per_line + offset, value)

    def invalidate_line(self, addr: int) -> None:
        _, index, _ = self._split(addr)
        self.valids.write(self.valids.value & ~(1 << index))

    def invalidate_all(self) -> None:
        self.valids.write(0)
