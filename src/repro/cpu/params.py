"""Configuration for the P6-lite core model.

The modelled core is a scaled-down POWER6-class machine: the real design
holds ~175k latch bits per core; this model defaults to roughly 15k bits
per core with the same *relative* unit sizes (LSU largest, RUT smallest),
which is what the paper's Figure 4 normalisation depends on.  ``scale``
multiplies the sizes of the dead/debug latch blocks so tests can run a
small model while benches run a bigger one.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CoreParams:
    """Static structural and timing parameters of one core."""

    # Fetch
    fetch_buffer_entries: int = 4
    icache_lines: int = 128
    icache_words_per_line: int = 4
    icache_miss_penalty: int = 5

    # Load/store
    dcache_lines: int = 128
    dcache_words_per_line: int = 4
    dcache_miss_penalty: int = 6
    store_queue_entries: int = 6
    derat_entries: int = 16

    # Fetch translation
    ierat_entries: int = 8

    # Recovery / RAS
    watchdog_threshold: int = 256
    recovery_flush_cycles: int = 4
    recovery_restore_words_per_cycle: int = 16
    max_recoveries_without_progress: int = 3
    ckpt_scrub_interval: int = 24  # cycles between checkpoint scrub reads

    # Core periphery ("nest"): memory controller + I/O bridge — the
    # paper's future-work injection targets.  Off by default.
    include_nest: bool = False
    mc_queue_entries: int = 4

    # Debug/pervasive latch population scaling (1.0 = default model size).
    scale: float = 1.0

    # Dead/debug latch block sizes (bits, before scaling), per unit.  These
    # model the performance counters, trace arrays and spare latches real
    # units carry; they are part of the injectable population and their
    # natural outcome is architectural masking.
    debug_bits: dict[str, int] = field(default_factory=lambda: {
        "IFU": 1400,
        "IDU": 600,
        "FXU": 600,
        "FPU": 500,
        "LSU": 2200,
        "RUT": 120,
        "CORE": 1300,
        "NEST": 900,
    })

    def scaled_debug_bits(self, unit: str) -> int:
        return max(0, int(self.debug_bits.get(unit, 0) * self.scale))


#: Canonical unit names, in the order the paper's Figure 3 presents them.
UNIT_NAMES = ("IFU", "IDU", "FXU", "FPU", "LSU", "RUT", "CORE")
