"""Taint propagation tracing: the fault-provenance capture layer.

One injected bit flip either dies (overwritten, scrubbed, corrected,
architecturally dead) or travels — latch to latch, into an SRAM array,
out to memory, into architected state.  :class:`TaintTracker` shadows
that journey for one injection by swapping every latch's class to a
zero-slot subclass (the ``touchtrace.py`` technique: layout-compatible,
reverted on exit, zero cost when inactive), wrapping the SRAM arrays'
read/write methods, class-swapping the sparse :class:`Memory`, and
installing the core's per-cycle ``taint_hook``.

Propagation semantics are *consume-on-write*: each read of a tainted
node is queued in a pending window; the next value write consumes the
window — the written node becomes tainted and one DAG edge per pending
source is recorded — and the window also clears at every cycle boundary
(the ``taint_hook``).  This "nearest write" pairing is a heuristic, not
dataflow truth: it can over-taint (an unrelated write landing between a
tainted read and its real sink inherits the taint) and under-taint (the
real sink then sees an empty window).  The alternative — tainting every
write in a cycle that read taint — diverges immediately: the pervasive
watchdog reads *and* writes its counter every cycle, which would taint
the whole machine through one control read.  Consume-on-write keeps the
DAG sound enough to attribute unit-to-unit flow while staying O(1) per
access.

A write with an *empty* window over a tainted node is a cleansing: the
taint is dropped and attributed via the masking taxonomy
(:class:`repro.obs.provenance.MaskingEvent`) using machine context — the
recovery sequencer state and the tail of the event log distinguish
recovery/refill scrubs and ECC corrections from plain overwrites.

Taint granularity is the storage node (whole latch, array word, memory
word), so bit counts here are the *capacity* of infected storage — an
over-approximation of infected bits, consistent across the footprint
series, peak, and residual fields.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.isa.memory import Memory
from repro.obs.provenance import MaskingEvent, TaintNodeKind
from repro.rtl.latch import Latch, LatchKind
from repro.rtl.parity import EccStatus

from repro.cpu.events import EventKind
from repro.cpu.pervasive import R_IDLE

_VALUE = Latch.value  # the slot descriptors: storage behind the properties
_PAR = Latch.par

#: The active tracker, consulted by every traced access.  A module
#: global (not thread-local), like ``touchtrace._ACTIVE``: injection
#: drains are single-threaded and worker processes have private state.
_TAINT: TaintTracker | None = None

#: Event kinds that count as "the machine noticed" for detection latency.
DETECTION_KINDS = frozenset({
    EventKind.ERROR_DETECTED,
    EventKind.CORRECTED_LOCAL,
    EventKind.HANG_DETECTED,
    EventKind.CHECKSTOP,
})

_MEMORY_WIDTH = 32  # tainted storage width of one memory / array word


def detection_info(events, inject_cycle: int) -> dict | None:
    """First detection event after the INJECTION marker, as payload dict.

    Returns ``{"cycle", "latency", "detector", "kind"}`` or ``None`` when
    the machine never noticed.  The detector is the leading token of the
    event detail (the checker name; recovery context in parentheses is
    dropped).  If the INJECTION marker was evicted from a bounded ring,
    every surviving event is post-injection by construction.
    """
    seen = not any(event.kind is EventKind.INJECTION for event in events)
    for event in events:
        if event.kind is EventKind.INJECTION:
            seen = True
            continue
        if seen and event.kind in DETECTION_KINDS:
            detector = (event.detail.split(" ")[0] if event.detail
                        else event.kind.value)
            return {"cycle": event.cycle,
                    "latency": event.cycle - inject_cycle,
                    "detector": detector,
                    "kind": event.kind.value}
    return None


class TaintTracker:
    """Shadow one injected latch as it propagates through the machine."""

    def __init__(self, cores, seed_latch: Latch, *,
                 max_edges: int = 4096,
                 max_footprint: int = 4096,
                 max_masking: int = 512) -> None:
        self._cores = list(cores)
        self._multi = len(self._cores) > 1
        self._seed_latch = seed_latch
        self._max_edges = max_edges
        self._max_footprint = max_footprint
        self._max_masking = max_masking

        # Node keys: id(latch) for latches, ("a", id(array), index) for
        # array words, ("m", id(memory), word_index) for memory words.
        self._tainted: set = set()
        self._pending: set = set()
        self._index: dict = {}
        self._width: dict = {}
        self.nodes: list[dict] = []
        self.edges: dict[tuple[int, int], list[int]] = {}
        self.edges_dropped = 0
        self.footprint: list[list[int]] = []
        self.footprint_truncated = False
        self.peak_bits = 0
        self._bits = 0
        self.masking: list[dict] = []
        self.masking_counts: dict[str, int] = {}

        # Structure maps, built once: owning core + display unit per
        # storage object, plus the architected-state marker set.
        self._latch_unit: dict[int, str] = {}
        self._latch_core: dict[int, object] = {}
        self._latch_name: dict[int, str] = {}
        self._arch: set[int] = set()
        self._array_unit: dict[int, str] = {}
        self._array_core: dict[int, object] = {}
        self._array_name: dict[int, str] = {}
        self._mem_unit: dict[int, str] = {}
        self._mem_core: dict[int, object] = {}
        for core in self._cores:
            prefix = f"{core.name}." if self._multi else ""
            for latch in core.all_latches():
                key = id(latch)
                self._latch_unit[key] = prefix + core.unit_of(latch)
                self._latch_core[key] = core
                self._latch_name[key] = prefix + latch.name
                if latch.kind is LatchKind.REGFILE:
                    self._arch.add(key)
            for latch in (core.idu.cr, core.idu.lr, core.idu.ctr,
                          core.ifu.ifar):
                self._arch.add(id(latch))
            for array, unit in ((core.ifu.icache.array, "IFU"),
                                (core.lsu.dcache.array, "LSU"),
                                (core.rut.ckpt, "RUT")):
                self._array_unit[id(array)] = prefix + unit
                self._array_core[id(array)] = core
                self._array_name[id(array)] = prefix + array.name
            self._mem_unit[id(core.memory)] = prefix + "MEM"
            self._mem_core[id(core.memory)] = core

        self._current = self._cores[0]
        self._unwrap: list = []
        self._installed = False

    # ------------------------------------------------------------------
    # Install / revert.

    def install(self) -> None:
        global _TAINT
        if _TAINT is not None:
            raise RuntimeError("a TaintTracker is already installed")
        for core in self._cores:
            for latch in core.all_latches():
                latch.__class__ = _TaintedLatch
            for array in core.arrays():
                self._wrap_array(array)
            core.memory.__class__ = _TaintedMemory
            core.taint_hook = self._on_cycle
        self._installed = True
        _TAINT = self
        # Node keys are id()s but never leave the process: payload()
        # maps every key to its stable latch/array name before emit.
        self._set_taint(id(self._seed_latch),  # repro-lint: allow[REPRO-D03]
                        self._seed_latch.width)
        self._sample(self._current.cycles)

    def uninstall(self) -> None:
        global _TAINT
        if not self._installed:
            return
        _TAINT = None
        self._installed = False
        for core in self._cores:
            for latch in core.all_latches():
                latch.__class__ = Latch
            if type(core.memory) is _TaintedMemory:
                core.memory.__class__ = Memory
            core.taint_hook = None
        for array, names in self._unwrap:
            for name in names:
                delattr(array, name)
        self._unwrap.clear()

    def _wrap_array(self, array) -> None:
        aid = id(array)
        is_ecc = hasattr(array, "write_raw")
        orig_read, orig_write = array.read, array.write
        names = ["read", "write"]

        def read(index, _orig=orig_read, _aid=aid):
            result = _orig(index)
            self._on_array_read(_aid, index, result, is_ecc)
            return result

        def write(index, value, _orig=orig_write, _aid=aid):
            self._on_word_write(("a", _aid, index))
            _orig(index, value)

        array.read, array.write = read, write
        if is_ecc:
            orig_raw = array.write_raw

            def write_raw(index, value, check, _orig=orig_raw, _aid=aid):
                self._on_word_write(("a", _aid, index))
                _orig(index, value, check)

            array.write_raw = write_raw
            names.append("write_raw")
        self._unwrap.append((array, names))

    # ------------------------------------------------------------------
    # The per-cycle hook (installed as ``core.taint_hook``).

    def _on_cycle(self, core) -> None:
        self._current = core
        self._pending.clear()
        self._sample(core.cycles)

    def _sample(self, cycle: int) -> None:
        if self.footprint and self.footprint[-1][1] == self._bits:
            return
        if len(self.footprint) >= self._max_footprint:
            self.footprint_truncated = True
            return
        self.footprint.append([cycle, self._bits])

    # ------------------------------------------------------------------
    # Taint state transitions.

    def _node_id(self, key) -> int:
        nid = self._index.get(key)
        if nid is None:
            nid = len(self.nodes)
            self._index[key] = nid
            self.nodes.append(self._describe(key))
        return nid

    def _describe(self, key) -> dict:
        if isinstance(key, int):
            return {"name": self._latch_name[key],
                    "unit": self._latch_unit[key],
                    "kind": TaintNodeKind.LATCH.value,
                    "arch": key in self._arch}
        tag, oid, index = key
        if tag == "a":
            return {"name": f"{self._array_name[oid]}[{index}]",
                    "unit": self._array_unit[oid],
                    "kind": TaintNodeKind.ARRAY.value,
                    "arch": False}
        return {"name": f"mem[0x{index << 2:08x}]",
                "unit": self._mem_unit[oid],
                "kind": TaintNodeKind.MEMORY.value,
                "arch": True}

    def _set_taint(self, key, width: int | None = None) -> None:
        if key in self._tainted:
            return
        if width is None:
            width = _MEMORY_WIDTH if isinstance(key, tuple) else 1
        self._width[key] = width
        self._tainted.add(key)
        self._bits += width
        self._node_id(key)
        if self._bits > self.peak_bits:
            self.peak_bits = self._bits

    def _clear_taint(self, key, cause: str) -> None:
        self._tainted.discard(key)
        self._pending.discard(key)
        self._bits -= self._width.get(key, 1)
        if len(self.masking) < self._max_masking:
            self.masking.append({"cycle": self._current.cycles,
                                 "node": self._node_id(key),
                                 "cause": cause})
        self.masking_counts[cause] = self.masking_counts.get(cause, 0) + 1

    def _infect(self, dst_key, width: int) -> None:
        """A write consumed a non-empty pending window: propagate."""
        pending = self._pending
        if pending == {dst_key}:
            # Self-loop only: a sticky re-assert keeps the taint, but a
            # correction event this cycle means a checker-driven refill
            # just replaced the word from a clean source.
            cause = self._correction_cause()
            if cause is not None:
                self._clear_taint(dst_key, cause)
            pending.clear()
            return
        dst = self._node_id(dst_key)
        cycle = self._current.cycles
        for src_key in pending:
            src = self._node_id(src_key)
            if src == dst:
                continue
            record = self.edges.get((src, dst))
            if record is not None:
                record[1] += 1
            elif len(self.edges) < self._max_edges:
                self.edges[(src, dst)] = [cycle, 1]
            else:
                self.edges_dropped += 1
        pending.clear()
        self._set_taint(dst_key, width)

    def _correction_cause(self) -> str | None:
        """Masking cause when a correction/recovery context is active."""
        core = self._current
        if _VALUE.__get__(core.pervasive.rstate) != R_IDLE:
            return MaskingEvent.PARITY_SCRUBBED.value
        events = core.event_log.events
        if events:
            last = events[-1]
            if (last.cycle == core.cycles
                    and last.kind is EventKind.CORRECTED_LOCAL):
                return (MaskingEvent.ECC_CORRECTED.value
                        if "ECC" in last.detail
                        else MaskingEvent.PARITY_SCRUBBED.value)
        return None

    def _mask_cause(self) -> str:
        return self._correction_cause() or MaskingEvent.OVERWRITTEN.value

    # ------------------------------------------------------------------
    # Access callbacks (hot: one dict probe on the clean path).

    def _on_latch_read(self, latch) -> None:
        key = id(latch)
        if key in self._tainted:
            self._pending.add(key)

    def _on_latch_write(self, latch) -> None:
        key = id(latch)
        if self._pending:
            self._infect(key, latch.width)
        elif key in self._tainted:
            self._clear_taint(key, self._mask_cause())

    def _on_word_write(self, key) -> None:
        if self._pending:
            self._infect(key, _MEMORY_WIDTH)
        elif key in self._tainted:
            self._clear_taint(key, self._mask_cause())

    def _on_array_read(self, aid, index, result, is_ecc: bool) -> None:
        key = ("a", aid, index)
        if key not in self._tainted:
            return
        if is_ecc and result[1] is EccStatus.CORRECTED:
            # The read itself scrubbed the array word clean.
            self._clear_taint(key, MaskingEvent.ECC_CORRECTED.value)
            return
        self._pending.add(key)

    def _on_memory_read(self, memory, addr: int) -> None:
        key = ("m", id(memory), addr >> 2)
        if key in self._tainted:
            self._pending.add(key)

    def _on_par_read(self, latch) -> None:
        """A checker consulted the parity shadow (``Latch.parity_ok``).

        Provenance-wise a parity consult is just another read of the
        latch, so the default delegates; the structural extractor
        overrides this to record protection-coverage evidence (which
        protected latches actually have their shadow checked)."""
        self._on_latch_read(latch)

    def _on_memory_write(self, memory, addr: int) -> None:
        self._on_word_write(("m", id(memory), addr >> 2))

    def _reseed(self, latch) -> None:
        """A fault-model write re-asserted this latch: it is infected
        again even if functional logic cleansed it since (sticky holds
        run at every cycle boundary for the fault's lifetime)."""
        # Same identity-key discipline as install(): the id never
        # leaves the process, payload() resolves it to a stable name.
        self._set_taint(id(latch),  # repro-lint: allow[REPRO-D03]
                        latch.width)

    # ------------------------------------------------------------------
    # Result extraction.

    def residual_bits(self) -> int:
        return self._bits

    def payload(self) -> dict:
        """The per-injection provenance payload (plain JSON-ready dict)."""
        self._sample(self._current.cycles)
        cross = 0
        if self._multi:
            for (src, dst), (_cycle, count) in self.edges.items():
                src_core = self.nodes[src]["unit"].split(".", 1)[0]
                dst_core = self.nodes[dst]["unit"].split(".", 1)[0]
                if src_core != dst_core:
                    cross += count
        return {
            "nodes": list(self.nodes),
            "edges": sorted(
                [src, dst, cycle, count]
                for (src, dst), (cycle, count) in self.edges.items()),
            "edges_dropped": self.edges_dropped,
            "footprint": [list(point) for point in self.footprint],
            "footprint_truncated": self.footprint_truncated,
            "peak_bits": self.peak_bits,
            "masking": list(self.masking),
            "masking_counts": dict(sorted(self.masking_counts.items())),
            "residual_tainted": self._bits,
            "cross_core_edges": cross,
        }


class _TaintedLatch(Latch):
    """Layout-compatible :class:`Latch` with taint-tracked state access."""

    __slots__ = ()

    @property
    def value(self) -> int:
        tracker = _TAINT
        if tracker is not None:
            tracker._on_latch_read(self)
        return _VALUE.__get__(self)

    @value.setter
    def value(self, new: int) -> None:
        tracker = _TAINT
        if tracker is not None:
            tracker._on_latch_write(self)
        _VALUE.__set__(self, new)

    def flip(self, bit: int) -> None:
        # Fault-model accessor, not functional dataflow: mutate the slot
        # directly (no read/write callbacks — a flip is not a value flow)
        # and mark the latch infected.
        if not 0 <= bit < self.width:
            raise ValueError(f"latch {self.name!r}: bit {bit} out of range")
        _VALUE.__set__(self, _VALUE.__get__(self) ^ (1 << bit))
        tracker = _TAINT
        if tracker is not None:
            tracker._reseed(self)

    def force_bit(self, bit: int, level: int) -> None:
        # Sticky holds land here every cycle boundary: the fault keeps
        # the latch infected even after a functional overwrite cleansed
        # it, so re-seed the taint alongside the raw bit update.
        value = _VALUE.__get__(self)
        if level:
            value |= 1 << bit
        else:
            value &= ~(1 << bit) & self.mask
        _VALUE.__set__(self, value)
        tracker = _TAINT
        if tracker is not None:
            tracker._reseed(self)

    @property
    def par(self) -> int:
        tracker = _TAINT
        if tracker is not None:
            tracker._on_par_read(self)
        return _PAR.__get__(self)

    @par.setter
    def par(self, new: int) -> None:
        # ``Latch.write`` updates value then par; the value setter already
        # consumed the window, so the shadow update is deliberately inert
        # (a consume here would mis-attribute an "overwritten" untaint).
        _PAR.__set__(self, new)


class _TaintedMemory(Memory):
    """Layout-compatible :class:`Memory` with taint-tracked word access."""

    __slots__ = ()

    def load_word(self, addr: int) -> int:
        value = Memory.load_word(self, addr)
        tracker = _TAINT
        if tracker is not None:
            tracker._on_memory_read(self, addr)
        return value

    def store_word(self, addr: int, value: int) -> None:
        tracker = _TAINT
        if tracker is not None:
            tracker._on_memory_write(self, addr)
        Memory.store_word(self, addr, value)

    def load_byte(self, addr: int) -> int:
        value = Memory.load_byte(self, addr)
        tracker = _TAINT
        if tracker is not None:
            tracker._on_memory_read(self, addr)
        return value

    def store_byte(self, addr: int, value: int) -> None:
        tracker = _TAINT
        if tracker is not None:
            tracker._on_memory_write(self, addr)
        Memory.store_byte(self, addr, value)


@contextmanager
def taint_trace(core, seed_latch: Latch, **options):
    """Track ``seed_latch``'s taint through one core until exit.

    Install *after* the injection flip (so the flip itself is not traced)
    and exit before classification (so golden-state comparison reads are
    untracked).  Yields the :class:`TaintTracker`.
    """
    tracker = TaintTracker([core], seed_latch, **options)
    tracker.install()
    try:
        yield tracker
    finally:
        tracker.uninstall()


@contextmanager
def taint_trace_chip(chip, seed_latch: Latch, **options):
    """Track taint across every core of a chip (isolation edges show up
    as cross-core unit pairs, counted in ``cross_core_edges``)."""
    tracker = TaintTracker(list(chip.cores), seed_latch, **options)
    tracker.install()
    try:
        yield tracker
    finally:
        tracker.uninstall()
