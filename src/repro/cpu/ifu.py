"""Instruction Fetch Unit.

Owns the instruction fetch address register (IFAR), the fetch state
machine, the L1 instruction cache and the fetch buffer.  Instruction words
and their fetch PCs travel through parity-protected latches whose parity is
carried along with the data (a flip in a buffered instruction is caught by
the decoder's point-of-use check, not at flip time).
"""

from __future__ import annotations

from repro.rtl.module import HwModule

from repro.cpu.cache import DirectMappedCache
from repro.cpu.checkers import Checker
from repro.cpu.debugblock import DebugBlock
from repro.cpu.erat import PAGE_BITS, Erat

# Fetch FSM states.
F_RUN = 0
F_MISS = 1
F_HOLD = 2
LEGAL_FETCH_STATES = (F_RUN, F_MISS, F_HOLD)


class Ifu(HwModule):
    """Fetch stage: keeps the fetch buffer supplied with instructions."""

    def __init__(self, core, params) -> None:
        super().__init__("ifu")
        self.core = core
        self.params = params
        ring = "IFU"
        self.ifar = self.add_latch("ifar", 32, protected=True, ring=ring)
        self.fstate = self.add_latch("fstate", 2, ring=ring)
        self.miss_ctr = self.add_latch("miss_ctr", 4, ring=ring)
        self.miss_addr = self.add_latch("miss_addr", 32, protected=True, ring=ring)
        n = params.fetch_buffer_entries
        self.fb_valid = self.add_latch("fb_valid", n, ring=ring)
        self.fb_instr = self.add_bank("fb_instr", n, 32, protected=True, ring=ring)
        self.fb_pc = self.add_bank("fb_pc", n, 32, protected=True, ring=ring)
        self.bht = self.add_latch("bht", 16, ring=ring)  # branch history (hint only)
        self.icache = self.add_child(DirectMappedCache(
            "ifu.icache", params.icache_lines, params.icache_words_per_line, ring))
        self.erat = self.add_child(Erat("ifu.ierat", params.ierat_entries, ring))
        self.debug = self.add_child(DebugBlock(
            "ifu.debug", params.scaled_debug_bits("IFU"), ring))

    # ------------------------------------------------------------------
    # Fetch-buffer interface used by the IDU.

    def head_valid(self) -> bool:
        return bool(self.fb_valid.value & 1)

    def head(self) -> tuple:
        """(instr_latch, pc_latch) of the oldest fetch-buffer entry."""
        return self.fb_instr[0], self.fb_pc[0]

    def pop(self) -> None:
        """Consume the head entry and shift the queue up.

        Parity travels with the shifted data: a latent flip in an entry
        survives the shift and is caught at decode.
        """
        n = self.params.fetch_buffer_entries
        valid = self.fb_valid.value >> 1  # entry i <- entry i+1
        for i in range(n - 1):
            dst_i, src_i = self.fb_instr[i], self.fb_instr[i + 1]
            dst_i.value, dst_i.par = src_i.value, src_i.par
            dst_p, src_p = self.fb_pc[i], self.fb_pc[i + 1]
            dst_p.value, dst_p.par = src_p.value, src_p.par
        self.fb_valid.write(valid)

    def _translate(self, addr: int) -> int | None:
        """Translate a fetch address through the iERAT."""
        core = self.core
        status, result = self.erat.translate(addr)
        if status == "multihit":
            if core.raise_error(Checker.IFU_ERAT_MULTIHIT):
                return None
            self.erat.invalidate_all()  # masked: self-heals silently
            return None
        if status == "parity":
            if core.raise_corrected(Checker.IFU_ERAT_PARITY):
                self.erat.invalidate_entry(result)
                return None
            entry = result % self.erat.entries
            return ((self.erat.rpn[entry].value << PAGE_BITS)
                    | (addr & ((1 << PAGE_BITS) - 1)))
        return result

    def redirect(self, target: int) -> None:
        """Branch or recovery redirect: restart fetch at ``target``."""
        self.ifar.write(target & 0xFFFFFFFF & ~3)
        self.fb_valid.write(0)
        if self.fstate.value == F_MISS:
            self.fstate.write(F_RUN)

    def pipeline_reset(self) -> None:
        """Recovery: clear all fetch-path state (scan-only latches keep)."""
        self.fstate.reset()
        self.miss_ctr.reset()
        self.miss_addr.reset()
        self.fb_valid.reset()
        for latch in self.fb_instr + self.fb_pc:
            latch.reset()
        self.icache.invalidate_all()
        self.erat.invalidate_all()

    # ------------------------------------------------------------------

    def cycle(self) -> None:
        core = self.core
        state = self.fstate.value
        if state == F_HOLD:
            # Held by a GPTR clock-stop; nothing fetches until released.
            if not core.pervasive.fetch_held():
                self.fstate.write(F_RUN)
            return
        if core.pervasive.fetch_held():
            self.fstate.write(F_HOLD)
            return
        if state == F_MISS:
            ctr = self.miss_ctr.value
            if ctr > 1:
                self.miss_ctr.write(ctr - 1)
                return
            if not self.miss_addr.parity_ok():
                if core.raise_error(Checker.IFU_IFAR_PARITY):
                    return
            self.icache.fill(self.miss_addr.value, core.memory)
            self.fstate.write(F_RUN)
            return
        if state != F_RUN:
            # Illegal FSM encoding; the pervasive FSM checker reports it.
            return

        # Find a free fetch-buffer slot (entries fill oldest-first).
        n = self.params.fetch_buffer_entries
        valid = self.fb_valid.value & ((1 << n) - 1)
        slot = -1
        for i in range(n):
            if not (valid >> i) & 1:
                slot = i
                break
        if slot < 0:
            return
        if not self.ifar.parity_ok():
            if core.raise_error(Checker.IFU_IFAR_PARITY):
                return  # masked: fetch proceeds from the corrupt address
        addr = self.ifar.value & ~3
        paddr = self._translate(addr)
        if paddr is None:
            return  # retry after iERAT correction/refill
        if not core.pervasive.icache_enabled():
            # Cache disabled by MODE configuration: fetch straight from
            # memory (functionally equivalent, just slower on real HW).
            self.fb_instr[slot].write(core.memory.load_word(paddr & ~3))
            self.fb_pc[slot].write(addr)
            self.fb_valid.write(valid | (1 << slot))
            self.ifar.write(addr + 4)
            return
        status, word = self.icache.lookup(paddr & ~3)
        if status == "hit":
            self.fb_instr[slot].write(word)
            self.fb_pc[slot].write(addr)
            self.fb_valid.write(valid | (1 << slot))
            self.ifar.write(addr + 4)
        elif status == "miss":
            self.miss_addr.write(paddr)
            self.miss_ctr.write(self.params.icache_miss_penalty)
            self.fstate.write(F_MISS)
        else:  # tag or data parity error: invalidate and refetch (corrected)
            handled = core.raise_corrected(Checker.IFU_ICACHE_PARITY)
            if handled:
                self.icache.invalidate_line(paddr)
            elif status == "data_err":
                # Checker masked: the corrupt instruction word propagates.
                self.fb_instr[slot].write(word)
                self.fb_pc[slot].write(addr)
                self.fb_valid.write(valid | (1 << slot))
                self.ifar.write(addr + 4)
            else:
                self.miss_addr.write(paddr)
                self.miss_ctr.write(self.params.icache_miss_penalty)
                self.fstate.write(F_MISS)
