"""Floating Point Unit.

A multi-cycle pipelined FP datapath (IEEE-754 single precision, values held
as bit patterns) plus the FPR file.  The AVP's instruction mix exercises it
lightly — as on the real machine, most FPU latches are architecturally
masked under an integer-dominated workload.
"""

from __future__ import annotations

from repro.isa import alu
from repro.isa.opcodes import Opcode, op_info
from repro.rtl.module import HwModule

from repro.cpu.checkers import Checker
from repro.cpu.debugblock import DebugBlock
from repro.cpu.fxu import Fxu
from repro.cpu.regfile import RegisterBank

_COMPUTE = {
    Opcode.FADD: alu.fadd32,
    Opcode.FSUB: alu.fsub32,
    Opcode.FMUL: alu.fmul32,
    Opcode.FDIV: alu.fdiv32,
}


class Fpu(HwModule):
    """Floating-point execution stage plus the FPR file."""

    def __init__(self, core, params) -> None:
        super().__init__("fpu")
        self.core = core
        ring = "FPU"
        self.val = self.add_latch("val", 1, ring=ring)
        self.op = self.add_latch("op", 6, ring=ring)
        self.rt = self.add_latch("rt", 5, ring=ring)
        self.a = self.add_latch("a", 32, protected=True, ring=ring)
        self.b = self.add_latch("b", 32, protected=True, ring=ring)
        self.cnt = self.add_latch("cnt", 4, ring=ring)
        self.s1 = self.add_latch("s1", 32, ring=ring)  # unpack stage
        self.s2 = self.add_latch("s2", 32, ring=ring)  # align stage
        self.res = self.add_latch("res", 32, protected=True, ring=ring)
        self.done = self.add_latch("done", 1, ring=ring)
        self.npc = self.add_latch("npc", 32, protected=True, ring=ring)
        self.flags = self.add_latch("flags", 8, ring=ring)
        self.itag = self.add_latch("itag", 6, ring=ring)
        # FPU-side physical FPR copy (the LSU holds its own copy).
        self.fpr_exec = self.add_child(RegisterBank("fpu.fprs", 32,
                                                    ring="REGFILE"))
        self.debug = self.add_child(DebugBlock(
            "fpu.debug", params.scaled_debug_bits("FPU"), ring))

    def can_accept(self) -> bool:
        return not self.val.value and not self.core.pervasive.unit_held("FPU")

    def pipeline_reset(self) -> None:
        for latch in (self.val, self.op, self.rt, self.a, self.b, self.cnt,
                      self.s1, self.s2, self.res, self.done, self.npc,
                      self.flags, self.itag):
            latch.reset()

    def dispatch(self, dec, operands, pc: int, next_pc: int,
                 itag: int = 0) -> None:
        self.val.write(1)
        self.done.write(0)
        self.op.write(int(dec.op))
        self.rt.write(dec.rt)
        self.a.write(operands.get(("f", dec.ra), 0))
        self.b.write(operands.get(("f", dec.rb), 0))
        self.npc.write(next_pc)
        self.flags.write(Fxu.F_WFPR)
        self.cnt.write(max(0, op_info(dec.op).latency - 1))
        self.itag.write(itag)

    def cycle(self) -> None:
        if not self.val.value or self.core.pervasive.unit_held("FPU"):
            return
        if self.done.value:
            if not self.res.parity_ok():
                if self.core.raise_error(Checker.FPU_RESULT_PARITY):
                    return
            if self.core.rut.accept(self.op, self.rt, self.res, self.flags,
                                    None, self.npc, self.itag):
                self.val.write(0)
                self.done.write(0)
            return
        count = self.cnt.value
        if count:
            # Staging latches toggle as the operands move down the pipe.
            self.s1.write(self.a.value)
            self.s2.write(self.b.value)
            self.cnt.write(count - 1)
            return
        if not self.a.parity_ok() or not self.b.parity_ok():
            if self.core.raise_error(Checker.FPU_OPERAND_PARITY):
                return
        compute = _COMPUTE.get(self.op.value)
        result = compute(self.a.value, self.b.value) if compute else self.a.value
        self.res.write(result)
        self.done.write(1)
