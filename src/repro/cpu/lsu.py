"""Load Store Unit.

Owns the L1 data cache, the address-generation datapath and the store
queue.  Stores commit architecturally (past the recovery checkpoint) when
they enter the store queue; a parity error detected at drain time is
therefore unrecoverable and checkstops, just as a corrupted already-
committed store would on the real machine.
"""

from __future__ import annotations

from repro.isa import alu
from repro.isa.opcodes import Opcode
from repro.rtl.module import HwModule

from repro.cpu.cache import DirectMappedCache
from repro.cpu.checkers import Checker
from repro.cpu.debugblock import DebugBlock
from repro.cpu.erat import PAGE_BITS, Erat
from repro.cpu.regfile import RegisterBank
from repro.cpu.fxu import Fxu

# LSU state machine.
L_AGEN = 0
L_ACCESS = 1
L_MISS = 2
LEGAL_LSU_STATES = (L_AGEN, L_ACCESS, L_MISS)

_BYTE_OPS = frozenset({int(Opcode.LBZ), int(Opcode.STB)})
_STORE_OPS = frozenset({int(Opcode.STW), int(Opcode.STB), int(Opcode.STFS)})
_LOAD_OPS = frozenset({int(Opcode.LWZ), int(Opcode.LBZ), int(Opcode.LFS)})


class Lsu(HwModule):
    """Load/store execution stage, D-cache and store queue."""

    def __init__(self, core, params) -> None:
        super().__init__("lsu")
        self.core = core
        self.params = params
        ring = "LSU"
        self.val = self.add_latch("val", 1, ring=ring)
        self.op = self.add_latch("op", 6, ring=ring)
        self.rt = self.add_latch("rt", 5, ring=ring)
        self.base = self.add_latch("base", 32, protected=True, ring=ring)
        self.disp = self.add_latch("disp", 16, ring=ring)
        self.ea = self.add_latch("ea", 32, protected=True, ring=ring)
        self.pa = self.add_latch("pa", 32, protected=True, ring=ring)
        self.st_data = self.add_latch("st_data", 32, protected=True, ring=ring)
        self.state = self.add_latch("state", 2, ring=ring)
        self.miss_ctr = self.add_latch("miss_ctr", 4, ring=ring)
        self.res = self.add_latch("res", 32, protected=True, ring=ring)
        self.done = self.add_latch("done", 1, ring=ring)
        self.npc = self.add_latch("npc", 32, protected=True, ring=ring)
        self.flags = self.add_latch("flags", 8, ring=ring)
        self.itag = self.add_latch("itag", 6, ring=ring)
        n = params.store_queue_entries
        self.sq_valid = self.add_latch("sq_valid", n, ring=ring)
        self.sq_byte = self.add_latch("sq_byte", n, ring=ring)
        self.sq_addr = self.add_bank("sq_addr", n, 32, protected=True, ring=ring)
        self.sq_data = self.add_bank("sq_data", n, 32, protected=True, ring=ring)
        self.drain_ctr = self.add_latch("drain_ctr", 2, ring=ring)
        self.dcache = self.add_child(DirectMappedCache(
            "lsu.dcache", params.dcache_lines, params.dcache_words_per_line, ring))
        self.erat = self.add_child(Erat("lsu.derat", params.derat_entries, ring))
        # LSU-side physical register-file copies: base-address and
        # store-data reads come through these.
        self.gpr_ls = self.add_child(RegisterBank("lsu.gprs", 32,
                                                  ring="REGFILE"))
        self.fpr_ls = self.add_child(RegisterBank("lsu.fprs", 32,
                                                  ring="REGFILE"))
        self.debug = self.add_child(DebugBlock(
            "lsu.debug", params.scaled_debug_bits("LSU"), ring))

    # ------------------------------------------------------------------

    def can_accept(self) -> bool:
        return not self.val.value and not self.core.pervasive.unit_held("LSU")

    def pipeline_reset(self) -> None:
        # The store queue holds architecturally committed stores and is NOT
        # flushed by recovery; it must drain before recovery proceeds.
        for latch in (self.val, self.op, self.rt, self.base, self.disp,
                      self.ea, self.pa, self.st_data, self.state, self.miss_ctr,
                      self.res, self.done, self.npc, self.flags, self.itag):
            latch.reset()
        self.dcache.invalidate_all()
        self.erat.invalidate_all()

    def dispatch(self, dec, operands, pc: int, next_pc: int,
                 itag: int = 0) -> None:
        op = dec.op
        self.val.write(1)
        self.done.write(0)
        self.op.write(int(op))
        self.rt.write(dec.rt)
        self.base.write(operands.get(("g", dec.ra), 0))
        self.disp.write(dec.imm & 0xFFFF)
        self.state.write(L_AGEN)
        self.npc.write(next_pc)
        if op is Opcode.STFS:
            self.st_data.write(operands.get(("f", dec.rt), 0))
        else:
            self.st_data.write(operands.get(("g", dec.rt), 0))
        flags = 0
        if dec.writes_gpr:
            flags |= Fxu.F_WGPR
        if dec.writes_fpr:
            flags |= Fxu.F_WFPR
        if int(op) in _STORE_OPS:
            flags |= Fxu.F_STORE
        if int(op) in _BYTE_OPS:
            flags |= Fxu.F_BYTE
        self.flags.write(flags)
        self.itag.write(itag)

    # ------------------------------------------------------------------
    # Store queue (post-commit).

    def stq_empty(self) -> bool:
        return not self.sq_valid.value

    def stq_can_accept(self) -> bool:
        n = self.params.store_queue_entries
        return (self.sq_valid.value & ((1 << n) - 1)) != ((1 << n) - 1)

    def stq_push(self, addr_latch, data_latch, is_byte: bool) -> bool:
        """Enqueue a committed store, carrying parity along with the data."""
        n = self.params.store_queue_entries
        valid = self.sq_valid.value
        for i in range(n):
            if not (valid >> i) & 1:
                self.sq_addr[i].value, self.sq_addr[i].par = addr_latch.value, addr_latch.par
                self.sq_data[i].value, self.sq_data[i].par = data_latch.value, data_latch.par
                if is_byte:
                    self.sq_byte.write(self.sq_byte.value | (1 << i))
                else:
                    self.sq_byte.write(self.sq_byte.value & ~(1 << i))
                self.sq_valid.write(valid | (1 << i))
                return True
        return False

    def drain(self) -> None:
        """Retire one store-queue entry every other cycle (oldest first)."""
        valid = self.sq_valid.value
        if not valid:
            return
        ctr = self.drain_ctr.value
        if ctr:
            self.drain_ctr.write(ctr - 1)
            return
        self.drain_ctr.write(1)
        n = self.params.store_queue_entries
        slot = next(i for i in range(n) if (valid >> i) & 1)
        addr_latch, data_latch = self.sq_addr[slot], self.sq_data[slot]
        if not addr_latch.parity_ok() or not data_latch.parity_ok():
            # The store is already architecturally committed: unrecoverable.
            if self.core.raise_error(Checker.LSU_STQ_PARITY):
                self.sq_valid.write(valid & ~(1 << slot))
                return
        addr = addr_latch.value
        is_byte = bool((self.sq_byte.value >> slot) & 1)
        nest = self.core.nest
        if nest is not None:
            # The nest's memory controller buffers the write behind its
            # own parity-protected queue.
            if not nest.mc.can_accept():
                self.drain_ctr.write(0)  # retry next cycle
                return
            nest.mc.enqueue(addr_latch, data_latch, is_byte)
            if is_byte:
                self.dcache.invalidate_line(addr)
            else:
                self.dcache.write_through(addr & ~3, data_latch.value)
        elif is_byte:
            self.core.memory.store_byte(addr, data_latch.value & 0xFF)
            self.dcache.invalidate_line(addr)
        else:
            self.core.memory.store_word(addr & ~3, data_latch.value)
            self.dcache.write_through(addr & ~3, data_latch.value)
        self.sq_valid.write(valid & ~(1 << slot))

    # ------------------------------------------------------------------

    def cycle(self) -> None:
        core = self.core
        if not self.val.value or core.pervasive.unit_held("LSU"):
            return
        if self.done.value:
            if not self.res.parity_ok():
                if core.raise_error(Checker.LSU_EA_PARITY):
                    return
            if core.rut.accept(self.op, self.rt, self.res, self.flags,
                               self.ea, self.npc, self.itag):
                self.val.write(0)
                self.done.write(0)
            return

        state = self.state.value
        if state == L_AGEN:
            if not self.base.parity_ok():
                if core.raise_error(Checker.LSU_EA_PARITY):
                    return
            ea = alu.add32(self.base.value, self._sext_disp())
            if self.op.value in _STORE_OPS:
                # Stores translate at AGEN and carry the *physical* address
                # and data straight to commit.
                paddr = self._translate(ea)
                if paddr is None:
                    return  # retry after ERAT correction/refill
                self.ea.write(paddr)
                self.res.value, self.res.par = self.st_data.value, self.st_data.par
                self.done.write(1)
            else:
                self.ea.write(ea)
                self.state.write(L_ACCESS)
            return
        if state == L_ACCESS:
            self._access()
            return
        if state == L_MISS:
            ctr = self.miss_ctr.value
            if ctr > 1:
                self.miss_ctr.write(ctr - 1)
                return
            if not self.pa.parity_ok():
                if core.raise_error(Checker.LSU_EA_PARITY):
                    return
            self.dcache.fill(self.pa.value & ~3, core.memory)
            self.state.write(L_ACCESS)
            return
        # Illegal state: the pervasive FSM checker reports it.

    def _sext_disp(self) -> int:
        value = self.disp.value
        return value - 0x10000 if value & 0x8000 else value

    def _translate(self, addr: int) -> int | None:
        """Translate through the dERAT; None means retry next cycle."""
        core = self.core
        status, result = self.erat.translate(addr)
        if status == "multihit":
            if core.raise_error(Checker.LSU_ERAT_MULTIHIT):
                return None
            self.erat.invalidate_all()  # masked: self-heals silently
            return None
        if status == "parity":
            if core.raise_corrected(Checker.LSU_ERAT_PARITY):
                self.erat.invalidate_entry(result)
                return None
            # Masked checker: consume the possibly corrupt translation.
            entry = result % self.erat.entries
            return ((self.erat.rpn[entry].value << PAGE_BITS)
                    | (addr & ((1 << PAGE_BITS) - 1)))
        return result

    def _access(self) -> None:
        core = self.core
        # Total store ordering: loads wait for older stores to be visible.
        if not self.stq_empty() or core.rut.pending_store():
            return
        if not self.ea.parity_ok():
            if core.raise_error(Checker.LSU_EA_PARITY):
                return
        paddr = self._translate(self.ea.value)
        if paddr is None:
            return
        self.pa.write(paddr)
        if not core.pervasive.dcache_enabled():
            word = core.memory.load_word(paddr & ~3)
            self._finish_load(word, paddr)
            return
        status, word = self.dcache.lookup(paddr & ~3)
        if status == "hit":
            self._finish_load(word, paddr)
        elif status == "miss":
            self.miss_ctr.write(self.params.dcache_miss_penalty)
            self.state.write(L_MISS)
        else:
            handled = core.raise_corrected(Checker.LSU_DCACHE_PARITY)
            if handled:
                self.dcache.invalidate_line(paddr & ~3)
            elif status == "data_err":
                self._finish_load(word, paddr)  # checker masked: bad data flows
            else:
                self.miss_ctr.write(self.params.dcache_miss_penalty)
                self.state.write(L_MISS)

    def _finish_load(self, word: int, ea: int) -> None:
        if self.op.value in _BYTE_OPS:
            shift = (3 - (ea & 3)) * 8
            word = (word >> shift) & 0xFF
        self.res.write(word)
        self.done.write(1)
