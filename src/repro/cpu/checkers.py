"""Hardware checker identifiers and the error-reporting fabric.

Each checker models a concrete piece of POWER6-style error-detection
hardware (parity checks on latches at their point of use, illegal-opcode
and illegal-FSM-state detectors, ECC on the recovery unit's checkpoint,
store-queue parity at drain time).  Checkers are individually maskable
through MODE latches, which is how the paper's Table 3 experiment
("Raw" vs "Check") is performed.
"""

from __future__ import annotations

import enum


class Checker(enum.IntEnum):
    """Checker identifiers; the value is the FIR bit position."""

    IFU_IFAR_PARITY = 0
    IFU_ICACHE_PARITY = 1
    IFU_FBUF_PARITY = 2
    IDU_ILLEGAL_OPCODE = 3
    IDU_REGREAD_PARITY = 4
    IDU_CR_LR_PARITY = 5
    FXU_OPERAND_PARITY = 6
    FXU_RESULT_PARITY = 7
    FPU_OPERAND_PARITY = 8
    FPU_RESULT_PARITY = 9
    LSU_EA_PARITY = 10
    LSU_DCACHE_PARITY = 11
    LSU_STQ_PARITY = 12
    RUT_COMMIT_PARITY = 13
    RUT_CKPT_ECC = 14
    CORE_FSM_ILLEGAL = 15
    LSU_ERAT_PARITY = 16
    LSU_ERAT_MULTIHIT = 17
    IFU_ERAT_PARITY = 18
    IFU_ERAT_MULTIHIT = 19
    CORE_HANG_DETECT = 20
    NEST_MC_PARITY = 21
    NEST_IO_PARITY = 22

    @property
    def unit(self) -> str:
        return self.name.split("_", 1)[0].replace("CORE", "CORE")


#: Checkers whose detection can only lead to checkstop (the error is past
#: the recovery checkpoint, inside the recovery machinery itself, or an
#: inconsistency — like a translation multi-hit — that retry cannot cure).
CHECKSTOP_ONLY = frozenset({Checker.LSU_STQ_PARITY, Checker.LSU_ERAT_MULTIHIT,
                            Checker.IFU_ERAT_MULTIHIT, Checker.NEST_MC_PARITY})

NUM_CHECKERS = len(Checker)


class ErrorSeverity(enum.Enum):
    """How the error-handling fabric treats a raised checker."""

    RECOVERABLE = "recoverable"
    CHECKSTOP = "checkstop"
