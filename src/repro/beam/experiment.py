"""Proton-beam irradiation experiment (simulated).

The calibration reference for Table 2: upsets strike the *whole physical
bit population* — every latch bit plus the SRAM arrays (caches and the
recovery unit's ECC checkpoint) — at uncontrolled random times, and only
the system-level response is observable.  Both the beam and SFI drive the
same chip model here, exactly as both drove the same physical POWER6 in
the paper, so comparing their outcome proportions is meaningful.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sfi.campaign import CampaignConfig, SfiExperiment
from repro.sfi.classify import classify
from repro.sfi.results import CampaignResult, InjectionRecord
from repro.rtl.latch import LatchKind

from repro.beam.flux import FluxModel


@dataclass(frozen=True)
class _ArraySite:
    """One strikeable SRAM bit."""

    array: object
    index: int
    bit: int

    @property
    def name(self) -> str:
        return f"{self.array.name}[{self.index}].{self.bit}"


class BeamExperiment:
    """Irradiation of the running machine."""

    def __init__(self, config: CampaignConfig | None = None,
                 flux: FluxModel | None = None) -> None:
        # The beam rides on the same prepared machine as SFI.
        self.sfi = SfiExperiment(config)
        self.flux = flux or FluxModel()
        self.latch_map = self.sfi.latch_map
        self._array_sites: list[_ArraySite] = []
        for array in self.sfi.core.arrays():
            bits_per_word = array.bit_count // len(array)
            for index in range(len(array)):
                for bit in range(bits_per_word):
                    self._array_sites.append(_ArraySite(array, index, bit))

    @property
    def latch_bits(self) -> int:
        return len(self.latch_map)

    @property
    def array_bits(self) -> int:
        return len(self._array_sites)

    def _pick_site(self, rng: random.Random):
        """Cross-section-weighted choice over the physical population.

        Returns ``("latch", index)`` or ``("array", site)``.
        """
        latch_weight = float(self.latch_bits)
        array_weight = self.array_bits * self.flux.sram_cross_section
        if rng.random() * (latch_weight + array_weight) < latch_weight:
            return "latch", rng.randrange(self.latch_bits)
        return "array", self._array_sites[rng.randrange(len(self._array_sites))]

    def run_events(self, count: int, seed: int = 0) -> CampaignResult:
        """Collect ``count`` single-upset beam events and classify them.

        Each event is one workload execution struck once at a random
        cycle — the per-event view the paper's beam analysis reports
        (5,600+ categorised bit-flip events).
        """
        rng = random.Random(f"beam:{seed}")
        sfi = self.sfi
        result = CampaignResult(
            population_bits=self.latch_bits + self.array_bits)
        for i in range(count):
            testcase_index = i % len(sfi.suite)
            reference = sfi.references[testcase_index]
            strike_cycle = rng.randrange(reference.cycles)
            kind, site = self._pick_site(rng)
            sfi.emulator.reload(sfi._ckpt_name(testcase_index))
            if strike_cycle:
                sfi.emulator.clock(strike_cycle)
            if kind == "latch":
                fault = sfi.emulator.inject(site)
                site_name = fault.name
                unit = self.latch_map.unit_of(site)
                latch_kind = fault.latch.kind
                ring = fault.latch.ring
            else:
                site.array.flip(site.index, site.bit)
                site_name = site.name
                unit = "ARRAY"
                latch_kind = LatchKind.FUNC
                ring = "ARRAY"
            budget = (reference.cycles - strike_cycle) + sfi.config.drain_cycles
            sfi.host.run_until_quiesce(budget)
            outcome = classify(sfi.core, reference.testcase,
                               sfi.config.classify_options)
            result.add(InjectionRecord(
                site_index=-1 if kind == "array" else site,
                site_name=site_name,
                unit=unit,
                kind=latch_kind,
                ring=ring,
                testcase_seed=reference.testcase.seed,
                inject_cycle=strike_cycle,
                outcome=outcome,
            ))
        return result

    def irradiate(self, runs: int, seed: int = 0) -> tuple[CampaignResult, int]:
        """Full flux model: each run receives a Poisson number of upsets
        (possibly zero, possibly several).  Returns the per-*run*
        classification and the total number of upsets delivered."""
        rng = random.Random(f"beamflux:{seed}")
        sfi = self.sfi
        result = CampaignResult(
            population_bits=self.latch_bits + self.array_bits)
        upsets = 0
        for i in range(runs):
            testcase_index = i % len(sfi.suite)
            reference = sfi.references[testcase_index]
            count = self.flux.sample_upset_count(rng)
            cycles = self.flux.sample_upset_cycles(count, reference.cycles, rng)
            sfi.emulator.reload(sfi._ckpt_name(testcase_index))
            elapsed = 0
            names = []
            for strike_cycle in cycles:
                if strike_cycle > elapsed:
                    sfi.emulator.clock(strike_cycle - elapsed)
                    elapsed = strike_cycle
                kind, site = self._pick_site(rng)
                upsets += 1
                if kind == "latch":
                    names.append(sfi.emulator.inject(site).name)
                else:
                    site.array.flip(site.index, site.bit)
                    names.append(site.name)
            budget = (reference.cycles - elapsed) + sfi.config.drain_cycles
            sfi.host.run_until_quiesce(budget)
            outcome = classify(sfi.core, reference.testcase,
                               sfi.config.classify_options)
            result.add(InjectionRecord(
                site_index=-1,
                site_name="+".join(names) or "(no upset)",
                unit="BEAM",
                kind=LatchKind.FUNC,
                ring="BEAM",
                testcase_seed=reference.testcase.seed,
                inject_cycle=cycles[0] if cycles else 0,
                outcome=outcome,
            ))
        return result, upsets
