"""Proton-beam irradiation simulator: the real-world calibration
reference SFI is validated against (Table 2)."""

from repro.beam.experiment import BeamExperiment
from repro.beam.flux import FluxModel

__all__ = ["BeamExperiment", "FluxModel"]
