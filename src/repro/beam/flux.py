"""Particle-flux model for the beam experiment.

A proton beam delivers upsets as a Poisson process over the physical bit
population of the chip.  Unlike SFI, the beam cannot be aimed: strikes
land anywhere — functional latches, scan-only latches, and the SRAM
arrays (caches, the recovery unit's checkpoint) that SFI's latch
campaigns exclude.  Cross-sections differ per structure type; the ratio
is a model parameter.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class FluxModel:
    """Upset-arrival model for one irradiation run.

    ``mean_upsets_per_run`` is the expected number of upsets during one
    workload execution window (beam intensity x run length x total
    cross-section).  ``sram_cross_section`` scales the relative
    per-bit sensitivity of SRAM cells versus latches.
    """

    mean_upsets_per_run: float = 1.0
    sram_cross_section: float = 1.3

    def sample_upset_count(self, rng: random.Random) -> int:
        """Number of upsets in one run (Poisson via inversion)."""
        lam = self.mean_upsets_per_run
        if lam <= 0:
            return 0
        # Knuth's method is fine for the small lambdas used here.
        threshold = math.exp(-lam)
        count = 0
        product = rng.random()
        while product > threshold:
            count += 1
            product *= rng.random()
        return count

    def sample_upset_cycles(self, count: int, run_cycles: int,
                            rng: random.Random) -> list[int]:
        """Uniform arrival cycles for ``count`` upsets, sorted."""
        return sorted(rng.randrange(run_cycles) for _ in range(count))
