"""Structured fault-propagation traces.

The paper's third headline capability is tracing a system-level error
(effect) back to the originating bit flip (cause).  The human-readable
narration lives in :mod:`repro.analysis.tracing`; this module is the
machine-readable counterpart: each injection's causal chain is folded
into **spans** — injection, detection, recovery (with duration),
terminal events — and serialized as one JSON line per injection, so
campaign traces can be post-processed, joined against metrics, or
loaded into any span viewer.

Chain schema (one JSON object per line)::

    {"format": 1, "position": 17, "site": "fxu.alu_out.3",
     "unit": "FXU", "kind": "FUNC", "testcase_seed": 99,
     "inject_cycle": 1203, "end_cycle": 1890,
     "detection_cycle": 1219, "detection_latency": 16,
     "outcome": "Corrected",
     "spans": [{"name": "injection", "start": 1203, "end": 1203,
                "unit": "FXU", "detail": "fxu.alu_out.3 -> 1 (toggle)"},
               {"name": "error-detected", "start": 1219, "end": 1219,
                "unit": "FXU", "detail": "FXU_PARITY (ifar=0x...)"},
               {"name": "recovery", "start": 1219, "end": 1890,
                "unit": "FXU", "detail": "FXU_PARITY"}]}

This module is deliberately decoupled from ``repro.sfi``: it reads
records duck-typed (``site_name``/``unit``/``outcome``/``trace`` with
``cycle``/``kind``/``detail`` events), so it imports nothing above the
stdlib and never creates an import cycle with the layers it observes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = [
    "TRACE_FORMAT_VERSION",
    "TraceWriter",
    "chain_from_record",
    "read_trace_log",
    "spans_from_events",
]

TRACE_FORMAT_VERSION = 1

#: Event kinds that count as the first *detection* of an injected fault.
_DETECTION_KINDS = frozenset(
    {"error-detected", "corrected-local", "hang", "checkstop"})


def _kind_str(kind) -> str:
    return getattr(kind, "value", None) or str(kind)


def _outcome_str(outcome) -> str:
    return getattr(outcome, "value", None) or str(outcome)


def _unit_of_detail(detail: str, fallback: str) -> str:
    """Checker names encode their unit as a prefix (``FXU_PARITY``)."""
    token = detail.split(" ", 1)[0] if detail else ""
    if "_" in token:
        return token.split("_", 1)[0]
    return fallback


def spans_from_events(events, unit: str = "?") -> list[dict]:
    """Fold a machine event sequence into causal spans.

    Point events become zero-length spans; a ``recovery-start`` ..
    ``recovery-done`` pair folds into one ``recovery`` span carrying its
    cycle duration.  ``unit`` labels spans whose detail string does not
    itself name a unit (checker details do: ``FXU_PARITY ...``).
    """
    spans: list[dict] = []
    open_recovery: dict | None = None
    for event in events:
        kind = _kind_str(event.kind)
        detail = event.detail
        span_unit = _unit_of_detail(detail, unit)
        if kind == "recovery-start":
            open_recovery = {"name": "recovery", "start": event.cycle,
                             "end": event.cycle, "unit": span_unit,
                             "detail": detail}
            spans.append(open_recovery)
            continue
        if kind in ("recovery-restored", "recovery-done") \
                and open_recovery is not None:
            open_recovery["end"] = event.cycle
            if kind == "recovery-done":
                open_recovery = None
            continue
        spans.append({"name": kind, "start": event.cycle,
                      "end": event.cycle, "unit": span_unit,
                      "detail": detail})
    return spans


def chain_from_record(record, position: int | None = None) -> dict:
    """Build one injection's span chain (the JSONL line payload)."""
    events = list(record.trace)
    chain: dict = {
        "format": TRACE_FORMAT_VERSION,
        "site": record.site_name,
        "unit": record.unit,
        "kind": _kind_str(record.kind),
        "testcase_seed": record.testcase_seed,
        "inject_cycle": record.inject_cycle,
        "outcome": _outcome_str(record.outcome),
    }
    if position is not None:
        chain["position"] = position
    detection_cycle = None
    seen_injection = False
    for event in events:
        kind = _kind_str(event.kind)
        if kind == "injection":
            seen_injection = True
            continue
        if seen_injection and detection_cycle is None \
                and kind in _DETECTION_KINDS:
            detection_cycle = event.cycle
    chain["end_cycle"] = events[-1].cycle if events else record.inject_cycle
    chain["detection_cycle"] = detection_cycle
    chain["detection_latency"] = (
        detection_cycle - record.inject_cycle
        if detection_cycle is not None else None)
    chain["spans"] = spans_from_events(events, unit=record.unit)
    return chain


class TraceWriter:
    """Streams injection span chains to a JSONL file.

    By default only non-vanished injections are written — a vanished
    flip has no effect to trace, and large campaigns are ~95% vanished
    (Table 3), so the filter keeps trace logs proportional to the
    *interesting* outcome mass.  Pass ``include_vanished=True`` to keep
    everything.
    """

    def __init__(self, path: str | os.PathLike, *,
                 include_vanished: bool = False) -> None:
        self.path = Path(path)
        self.include_vanished = include_vanished
        self.written = 0
        self.filtered = 0
        self._handle = self.path.open("w")

    def write(self, position: int, record) -> bool:
        """Serialize one record's chain; False when filtered out."""
        if self._handle is None:
            raise ValueError(f"{self.path}: trace log is closed")
        if not self.include_vanished \
                and _outcome_str(record.outcome) == "Vanished":
            self.filtered += 1
            return False
        chain = chain_from_record(record, position)
        self._handle.write(json.dumps(chain) + "\n")
        self._handle.flush()
        self.written += 1
        return True

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_trace_log(path: str | os.PathLike) -> list[dict]:
    """Load every span chain from a trace log (strict: no torn lines)."""
    chains = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            chains.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}:{lineno}: malformed trace line: {exc}") from exc
    return chains
