"""Live campaign monitoring and snapshot rendering.

``repro-sfi monitor`` tails a running campaign's journal (the
crash-consistent JSONL stream the supervisor appends to) plus an
optional metrics snapshot file and renders a live throughput/outcome
summary; ``repro-sfi stats`` renders a finished run's metrics snapshot.
Both read files only — they attach to a campaign from the outside, so a
wedged campaign can still be observed and a monitor crash cannot hurt
the run.

Journal parsing here is deliberately schema-light (header dict + lines
with ``pos`` and a ``record`` whose ``outcome`` is a string): it works
for core and chip journals alike and tolerates the torn trailing line a
live writer may momentarily expose.  Polling is incremental: each
:class:`JournalProgress` carries a byte-offset
:class:`~repro.sfi.storage.JournalCursor`, so a poll reads only the
bytes appended since the previous one (the same cursor API the
warehouse tailer uses) instead of re-parsing the whole journal.
"""

from __future__ import annotations

import json
import math
import sys
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.convergence import ConvergenceTracker, render_convergence
from repro.obs.exporters import load_jsonl_snapshot, parse_prometheus_text
from repro.obs.metrics import Histogram, MetricsRegistry
# The one place obs reaches into an execution-layer module: the journal
# cursor primitives in repro.sfi.storage are themselves pure read-only
# file code (no simulation imports), and sharing them keeps the monitor
# and the warehouse tailer consuming journals byte-for-byte identically.
from repro.sfi.storage import CampaignStorageError, JournalCursor, scan_journal

__all__ = [
    "JournalProgress",
    "advance_journal_progress",
    "format_duration",
    "lease_sidecar_lines",
    "load_metrics_file",
    "monitor_campaign",
    "read_journal_progress",
    "render_monitor_frame",
    "render_stats",
]


# ----------------------------------------------------------------------
# Journal tailing.

@dataclass
class JournalProgress:
    """What a campaign journal says about its campaign right now.

    Accumulates across polls: pass the same instance to
    :func:`advance_journal_progress` and only newly appended journal
    bytes are read each time (``cursor`` tracks the consumed prefix;
    ``positions`` de-duplicates retried shards across polls).
    """

    path: Path
    header: dict = field(default_factory=dict)
    done: int = 0
    outcomes: Counter = field(default_factory=Counter)
    # Fast-path sidecars (the ``{"fastpath": ...}`` journal-line extras):
    # how many records carried one, summed cycles saved, and the
    # golden-digest early exits by reason ("golden" / "masked").
    fastpath: int = 0
    saved_cycles: int = 0
    early_exits: Counter = field(default_factory=Counter)
    # Per-unit outcome counts — the convergence tracker's input, folded
    # here so the live view and an offline journal recount are the same
    # computation on the same accumulator.
    unit_outcomes: dict = field(default_factory=dict)
    cursor: JournalCursor = field(default_factory=JournalCursor)
    positions: set = field(default_factory=set, repr=False)

    @property
    def total(self) -> int:
        return int(self.header.get("total_sites", 0))

    @property
    def complete(self) -> bool:
        return self.total > 0 and self.done >= self.total


def advance_journal_progress(progress: JournalProgress) -> JournalProgress:
    """Fold journal bytes appended since the last call into ``progress``.

    A missing journal or an unreadable header leaves the progress
    unchanged (the campaign may simply not have started); a journal that
    shrank under the cursor (torn-tail recovery rewrote it) resets the
    accumulators and re-reads from the top.
    """
    try:
        delta = scan_journal(progress.path, progress.cursor, kind=None)
    except CampaignStorageError:
        return progress
    if delta.rewound:
        progress.header = {}
        progress.outcomes.clear()
        progress.fastpath = 0
        progress.saved_cycles = 0
        progress.early_exits.clear()
        progress.unit_outcomes.clear()
        progress.positions.clear()
    if progress.cursor.header is not None:
        progress.header = progress.cursor.header
    for _number, payload in delta.entries:
        if "pos" not in payload or payload["pos"] in progress.positions:
            continue
        progress.positions.add(payload["pos"])
        record = payload.get("record", {})
        outcome = record.get("outcome") if isinstance(record, dict) else None
        progress.outcomes[outcome or "?"] += 1
        unit = record.get("unit") if isinstance(record, dict) else None
        if unit and outcome:
            per_unit = progress.unit_outcomes.setdefault(str(unit), {})
            per_unit[str(outcome)] = per_unit.get(str(outcome), 0) + 1
        sidecar = payload.get("fastpath")
        if isinstance(sidecar, dict):
            progress.fastpath += 1
            progress.saved_cycles += int(sidecar.get("saved_cycles", 0))
            if sidecar.get("exit"):
                progress.early_exits[sidecar["exit"]] += 1
    progress.done = len(progress.positions)
    return progress


def read_journal_progress(path: str | Path) -> JournalProgress:
    """One read-only pass over a (possibly still growing) journal."""
    return advance_journal_progress(JournalProgress(path=Path(path)))


# ----------------------------------------------------------------------
# Rendering.

def format_duration(seconds: float) -> str:
    """``95`` -> ``1m35s`` (coarse, for ETA lines)."""
    if not math.isfinite(seconds):
        return "?"
    seconds = max(0, int(round(seconds)))
    if seconds < 60:
        return f"{seconds}s"
    minutes, secs = divmod(seconds, 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def render_monitor_frame(progress: JournalProgress, rate: float | None,
                         eta: float | None,
                         metrics_lines: list[str] | None = None) -> str:
    """One monitor update: progress bar line, outcome mix, hot metrics."""
    total = progress.total
    done = progress.done
    lines = []
    pct = f" ({100 * done / total:.1f}%)" if total else ""
    head = f"[monitor] {done}/{total or '?'} injections{pct}"
    if rate is not None:
        head += f"  {rate:.1f} inj/s"
    if eta is not None and not progress.complete:
        head += f"  ETA {format_duration(eta)}"
    if progress.complete:
        head += "  [complete]"
    lines.append(head)
    if progress.outcomes:
        mix = "  ".join(f"{outcome}: {count}"
                        for outcome, count in sorted(progress.outcomes.items(),
                                                     key=lambda kv: -kv[1]))
        lines.append(f"[monitor] outcomes: {mix}")
    if progress.fastpath:
        line = (f"[monitor] fastpath: {progress.fastpath} injections, "
                f"{progress.saved_cycles:,} cycles saved")
        if progress.early_exits:
            exits = "  ".join(f"{reason}: {count}" for reason, count
                              in sorted(progress.early_exits.items()))
            line += f"  (early exits — {exits})"
        lines.append(line)
    for line in metrics_lines or []:
        lines.append(f"[monitor] {line}")
    return "\n".join(lines)


def _interesting_metric_lines(registry: MetricsRegistry) -> list[str]:
    """A few high-signal series for the live frame."""
    lines = []
    for name in ("sfi_injections_per_second", "core_cycles_per_second"):
        metric = registry.get(name)
        if metric is None:
            continue
        for key, value in sorted(metric.series().items()):
            label = f"{name}{dict(metric.labels_of(key)) or ''}"
            lines.append(f"{label} = {value:.1f}")
    for name in ("sfi_shard_retries_total", "sfi_shard_splits_total",
                 "sfi_degrades_total", "sfi_early_exits_total",
                 "sfi_ladder_hits_total", "sfi_ladder_misses_total",
                 "sfi_taint_edges_total", "sfi_ingest_records_total",
                 "sfi_waves_total", "sfi_lease_reissues_total",
                 "sfi_fenced_records_total"):
        metric = registry.get(name)
        if metric is None or isinstance(metric, Histogram):
            continue
        total = sum(metric.series().values())
        if total:
            lines.append(f"{name} = {total:g}")
    occupancy = _histogram_mean(registry, "sfi_wave_occupancy_lanes")
    if occupancy is not None:
        lines.append(f"sfi_wave_occupancy_lanes mean = {occupancy:.2f}")
    return lines


def _histogram_mean(registry: MetricsRegistry, name: str) -> float | None:
    """Mean of a histogram in either loaded shape.

    A JSONL snapshot keeps the Histogram object; the Prometheus text
    loader folds ``<name>_sum`` / ``<name>_count`` into plain series, so
    both spellings are checked.
    """
    metric = registry.get(name)
    if isinstance(metric, Histogram):
        count = sum(series.count for series in metric.series().values())
        total = sum(series.sum for series in metric.series().values())
        return total / count if count else None
    total_metric = registry.get(f"{name}_sum")
    count_metric = registry.get(f"{name}_count")
    if total_metric is None or count_metric is None:
        return None
    count = sum(count_metric.series().values())
    total = sum(total_metric.series().values())
    return total / count if count else None


def lease_sidecar_lines(journal_path: str | Path) -> list[str]:
    """Lease/fencing health from the ``<journal>.leases`` sidecar.

    One line summarizing grant/reclaim/split/fence counts when the
    sidecar exists and has events; empty otherwise (serial campaigns
    have no sidecar and the monitor shows nothing new).
    """
    sidecar = Path(str(journal_path) + ".leases")
    try:
        text = sidecar.read_text()
    except OSError:
        return []
    counts: Counter = Counter()
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line).get("event")
        except (ValueError, AttributeError):
            continue  # torn tail of a live writer
        if event:
            counts[event] += 1
    if not counts:
        return []
    return [f"leases: grants={counts.get('grant', 0)} "
            f"done={counts.get('done', 0)} "
            f"reclaims={counts.get('reclaim', 0)} "
            f"splits={counts.get('split', 0)} "
            f"fenced={counts.get('fenced', 0)}"]


def load_metrics_file(path: str | Path) -> MetricsRegistry | None:
    """Load a snapshot file in either export format (None if unreadable).

    Format is sniffed from the content (`#`/bare sample = Prometheus
    text, `{` = JSONL), so any file extension works.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError:
        return None
    if not text.strip():
        return None
    try:
        if text.lstrip().startswith("{"):
            return load_jsonl_snapshot(path)
        parsed = parse_prometheus_text(text)
        # Rebuild a registry shape good enough for rendering: bucket
        # samples fold back into plain gauges keyed by their full name.
        registry = MetricsRegistry()
        for (name, labels), value in parsed.samples.items():
            kind = parsed.types.get(name)
            if kind == "counter":
                metric = registry.counter(name,
                                          labelnames=tuple(k for k, _ in labels))
                metric.inc(value, **dict(labels))
            else:
                metric = registry.gauge(name,
                                        labelnames=tuple(k for k, _ in labels))
                metric.set(value, **dict(labels))
        return registry
    except ValueError:
        return None


# ----------------------------------------------------------------------
# The live loop.

def monitor_campaign(journal_path: str | Path, *,
                     metrics_path: str | Path | None = None,
                     interval: float = 2.0,
                     follow: bool = True,
                     max_updates: int | None = None,
                     target_width: float = 0.02,
                     convergence: bool = True,
                     out=None,
                     clock=time.monotonic,
                     sleep=time.sleep) -> int:
    """Tail a campaign journal (and metrics file) until it completes.

    Each poll reads only the journal bytes appended since the previous
    poll (one persistent :class:`JournalProgress` carries the byte
    cursor), derives injections/sec from the covered-position delta, and
    prints one frame.  Returns 0 when the campaign completed (or on a
    clean ``follow=False`` single shot), 1 when the journal never
    appeared.  ``max_updates`` bounds the loop for tests and cron use.
    """
    out = out if out is not None else sys.stdout
    journal_path = Path(journal_path)
    previous_done: int | None = None
    previous_time: float | None = None
    rate: float | None = None
    updates = 0
    progress = JournalProgress(path=journal_path)
    while True:
        advance_journal_progress(progress)
        now = clock()
        if previous_done is not None and now > previous_time \
                and progress.done >= previous_done:
            window_rate = (progress.done - previous_done) / (now - previous_time)
            # Light smoothing so one slow poll doesn't zero the display.
            rate = (window_rate if rate is None
                    else 0.5 * rate + 0.5 * window_rate)
        previous_done, previous_time = progress.done, now
        eta = None
        if rate and progress.total:
            eta = (progress.total - progress.done) / rate
        metrics_lines: list[str] = []
        if metrics_path is not None:
            registry = load_metrics_file(metrics_path)
            if registry is not None:
                metrics_lines = _interesting_metric_lines(registry)
        metrics_lines.extend(lease_sidecar_lines(journal_path))
        if convergence and progress.unit_outcomes:
            tracker = ConvergenceTracker.from_counts(
                progress.unit_outcomes, target_width=target_width)
            metrics_lines.extend(
                render_convergence(tracker, limit=4).splitlines())
        if not progress.header and not journal_path.exists():
            print(f"[monitor] waiting for journal {journal_path}", file=out)
        else:
            print(render_monitor_frame(progress, rate, eta, metrics_lines),
                  file=out)
        updates += 1
        if progress.complete or not follow:
            return 0 if (progress.complete or progress.header) else 1
        if max_updates is not None and updates >= max_updates:
            return 0 if progress.header else 1
        sleep(interval)


# ----------------------------------------------------------------------
# Snapshot rendering (`repro-sfi stats`).

def render_stats(registry: MetricsRegistry) -> str:
    """Human-readable table of every series in a snapshot."""
    lines = []
    for metric in registry.metrics():
        title = f"{metric.name} ({metric.kind})"
        if metric.help:
            title += f" — {metric.help}"
        lines.append(title)
        if isinstance(metric, Histogram):
            for key, series in sorted(metric.series().items()):
                labels = metric.labels_of(key)
                prefix = f"  {labels} " if labels else "  "
                mean = series.sum / series.count if series.count else 0.0
                lines.append(f"{prefix}count={series.count} "
                             f"sum={series.sum:.4f} mean={mean:.4f}")
                quantiles = _histogram_quantile_line(metric, key)
                if quantiles:
                    lines.append(f"    {quantiles}")
        else:
            for key, value in sorted(metric.series().items()):
                labels = metric.labels_of(key)
                prefix = f"  {labels} " if labels else "  "
                lines.append(f"{prefix}{value:g}")
        lines.append("")
    return "\n".join(lines).rstrip() + ("\n" if lines else "")


def _histogram_quantile_line(metric: Histogram,
                             key: tuple[str, ...]) -> str | None:
    """Coarse p50/p90/p99 upper bounds from the cumulative buckets."""
    pairs = metric.cumulative_buckets(key)
    total = pairs[-1][1] if pairs else 0
    if not total:
        return None
    estimates = []
    for quantile in (0.5, 0.9, 0.99):
        target = quantile * total
        bound = next((le for le, cumulative in pairs
                      if cumulative >= target), math.inf)
        text = "+Inf" if bound == math.inf else f"{bound:g}"
        estimates.append(f"p{int(quantile * 100)}<={text}")
    return " ".join(estimates)
