"""Metric snapshot exporters and parsers.

Two interchange formats, both plain text so campaign artefacts stay
inspectable with ``less`` and diffable in CI:

* **Prometheus textfile** (:func:`render_prometheus`,
  :func:`write_prometheus`) — the node-exporter textfile-collector
  dialect: ``# HELP`` / ``# TYPE`` comments, one sample per line,
  histograms expanded into cumulative ``_bucket{le=...}`` plus ``_sum``
  and ``_count``.  :func:`parse_prometheus_text` reads the dialect back
  (used by the round-trip tests and the CI snapshot check).
* **JSONL snapshot** (:func:`render_jsonl`, :func:`write_jsonl`,
  :func:`load_jsonl_snapshot`) — one JSON object per metric family,
  lossless against :meth:`MetricsRegistry.snapshot`, so snapshots can be
  reloaded, merged across shards and re-exported.

Writers replace the target atomically (write to ``path.tmp`` then
``os.replace``) so a monitor tailing the file never observes a torn
snapshot.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import Histogram, MetricError, MetricsRegistry

__all__ = [
    "ParsedMetrics",
    "load_jsonl_snapshot",
    "parse_prometheus_text",
    "render_jsonl",
    "render_prometheus",
    "write_jsonl",
    "write_prometheus",
]


# ----------------------------------------------------------------------
# Prometheus textfile format.

def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\"", "\\\"")
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{name}="{_escape_label(value)}"'
                     for name, value in labels.items())
    return "{" + inner + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus textfile exposition format."""
    lines: list[str] = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for key in sorted(metric.series()):
                labels = metric.labels_of(key)
                for bound, cumulative in metric.cumulative_buckets(key):
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(bound)
                    lines.append(f"{metric.name}_bucket"
                                 f"{_format_labels(bucket_labels)} "
                                 f"{cumulative}")
                series = metric.series()[key]
                lines.append(f"{metric.name}_sum{_format_labels(labels)} "
                             f"{_format_value(series.sum)}")
                lines.append(f"{metric.name}_count{_format_labels(labels)} "
                             f"{series.count}")
        else:
            for key, value in sorted(metric.series().items()):
                labels = metric.labels_of(key)
                lines.append(f"{metric.name}{_format_labels(labels)} "
                             f"{_format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def _atomic_write(path: str | os.PathLike, text: str) -> None:
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def write_prometheus(registry: MetricsRegistry, path: str | os.PathLike) -> None:
    """Atomically write the Prometheus textfile snapshot."""
    _atomic_write(path, render_prometheus(registry))


@dataclass
class ParsedMetrics:
    """Parsed exposition text: types, help and flat samples."""

    types: dict[str, str] = field(default_factory=dict)
    help: dict[str, str] = field(default_factory=dict)
    #: (sample name, ((label, value), ...) sorted) -> float
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = \
        field(default_factory=dict)

    def value(self, name: str, **labels) -> float:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return self.samples[key]

    def sample_names(self) -> set[str]:
        return {name for name, _ in self.samples}


def _parse_label_block(block: str, where: str) -> tuple[tuple[str, str], ...]:
    labels: list[tuple[str, str]] = []
    index = 0
    while index < len(block):
        eq = block.index("=", index)
        name = block[index:eq].strip().lstrip(",").strip()
        if block[eq + 1] != "\"":
            raise MetricError(f"{where}: unquoted label value")
        value_chars: list[str] = []
        index = eq + 2
        while True:
            ch = block[index]
            if ch == "\\":
                nxt = block[index + 1]
                value_chars.append({"n": "\n", "\\": "\\", "\"": "\""}
                                   .get(nxt, nxt))
                index += 2
                continue
            if ch == "\"":
                index += 1
                break
            value_chars.append(ch)
            index += 1
        labels.append((name, "".join(value_chars)))
    return tuple(sorted(labels))


def parse_prometheus_text(text: str) -> ParsedMetrics:
    """Parse Prometheus exposition text back into flat samples.

    Understands exactly the dialect :func:`render_prometheus` emits
    (plus arbitrary whitespace and comments), enough for round-trip
    tests and snapshot assertions — not a general scrape parser.
    """
    parsed = ParsedMetrics()
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        where = f"metrics text line {lineno}"
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                parsed.types[parts[2]] = parts[3] if len(parts) > 3 else ""
            elif len(parts) >= 3 and parts[1] == "HELP":
                parsed.help[parts[2]] = parts[3] if len(parts) > 3 else ""
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            block, value_text = rest.rsplit("}", 1)
            labels = _parse_label_block(block, where)
        else:
            try:
                name, value_text = line.split(None, 1)
            except ValueError as exc:
                raise MetricError(f"{where}: malformed sample "
                                  f"{line!r}") from exc
            labels = ()
        value_text = value_text.strip()
        try:
            value = (math.inf if value_text == "+Inf"
                     else -math.inf if value_text == "-Inf"
                     else float(value_text))
        except ValueError as exc:
            raise MetricError(f"{where}: bad sample value "
                              f"{value_text!r}") from exc
        parsed.samples[(name.strip(), labels)] = value
    return parsed


# ----------------------------------------------------------------------
# JSONL snapshots.

def render_jsonl(registry: MetricsRegistry) -> str:
    """One JSON object per metric family (lossless snapshot)."""
    return "".join(json.dumps(entry) + "\n"
                   for entry in registry.snapshot())


def write_jsonl(registry: MetricsRegistry, path: str | os.PathLike) -> None:
    """Atomically write the JSONL snapshot."""
    _atomic_write(path, render_jsonl(registry))


def load_jsonl_snapshot(source: str | os.PathLike) -> MetricsRegistry:
    """Rebuild a registry from a JSONL snapshot file."""
    path = Path(source)
    entries = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            entries.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise MetricError(
                f"{path}:{lineno}: malformed metrics snapshot line: "
                f"{exc}") from exc
    return MetricsRegistry.from_snapshot(entries)
