"""Dependency-free metrics primitives: counters, gauges and histograms.

The observability substrate every execution layer reports into.  A
:class:`MetricsRegistry` owns named metrics; each metric holds one time
series per distinct label-value combination, so ``sfi_injections_total``
can carry ``{outcome="Vanished"}`` and ``{outcome="Checkstop"}`` side by
side.  Everything here is plain stdlib — campaigns must be runnable on a
bare interpreter — and the exporters
(:mod:`repro.obs.exporters`) turn a registry into Prometheus textfile or
JSONL snapshots.

Semantics follow the Prometheus data model where it matters:

* **Counter** — monotonically increasing float; ``merge_from`` sums.
* **Gauge** — last-write-wins float; ``merge_from`` keeps the other
  registry's value (the merged-in snapshot is assumed newer).
* **Histogram** — fixed upper-bound buckets plus ``sum``/``count``;
  exported cumulatively (``le``-style); ``merge_from`` sums bucket-wise.

A process-wide default registry (:func:`default_registry`) lets distant
layers share one sink without threading a registry through every
constructor; components nevertheless accept an explicit registry so
tests and parallel campaigns can isolate their series.
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricError",
    "MetricsRegistry",
    "default_registry",
    "set_default_registry",
]

#: Default histogram upper bounds (seconds-flavoured, like Prometheus').
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                   1.0, 2.5, 5.0, 10.0, 30.0, 60.0, math.inf)


class MetricError(ValueError):
    """A metric was registered or used inconsistently."""


def _validate_name(name: str) -> str:
    if not name or not all(ch.isalnum() or ch in "_:" for ch in name):
        raise MetricError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise MetricError(f"invalid metric name {name!r}")
    return name


class Metric:
    """Base class: a named family of label-keyed series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labelnames: tuple[str, ...] = ()) -> None:
        self.name = _validate_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        self._series: dict[tuple[str, ...], object] = {}

    # -- label handling -----------------------------------------------

    def _key(self, labels: dict) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise MetricError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[name]) for name in self.labelnames)

    def labels_of(self, key: tuple[str, ...]) -> dict[str, str]:
        return dict(zip(self.labelnames, key))

    def series(self) -> dict[tuple[str, ...], object]:
        """Raw series map (label values tuple -> series state)."""
        return dict(self._series)

    # -- overridden per kind ------------------------------------------

    def merge_from(self, other: "Metric") -> None:
        raise NotImplementedError

    def _check_mergeable(self, other: "Metric") -> None:
        if (other.kind != self.kind
                or other.labelnames != self.labelnames):
            raise MetricError(
                f"cannot merge {other.kind}{other.labelnames} into "
                f"{self.name} ({self.kind}{self.labelnames})")


class Counter(Metric):
    """Monotonically increasing value (per label set)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise MetricError(f"{self.name}: counters only go up "
                              f"(inc {amount})")
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return float(self._series.get(self._key(labels), 0.0))

    def merge_from(self, other: Metric) -> None:
        self._check_mergeable(other)
        for key, value in other._series.items():
            self._series[key] = self._series.get(key, 0.0) + value


class Gauge(Metric):
    """Last-write-wins value (per label set)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._series[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return float(self._series.get(self._key(labels), 0.0))

    def merge_from(self, other: Metric) -> None:
        self._check_mergeable(other)
        self._series.update(other._series)


class _HistogramSeries:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, nbuckets: int) -> None:
        self.bucket_counts = [0] * nbuckets  # per-bucket, not cumulative
        self.sum = 0.0
        self.count = 0


class Histogram(Metric):
    """Observations bucketed by fixed upper bounds (per label set)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labelnames: tuple[str, ...] = (),
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help, labelnames)
        bounds = sorted(set(float(b) for b in buckets))
        if not bounds:
            raise MetricError(f"{name}: histogram needs at least one bucket")
        if bounds[-1] != math.inf:
            bounds.append(math.inf)
        self.buckets = tuple(bounds)

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                series.bucket_counts[index] += 1
                break
        series.sum += value
        series.count += 1

    def count(self, **labels) -> int:
        series = self._series.get(self._key(labels))
        return series.count if series is not None else 0

    def sum(self, **labels) -> float:
        series = self._series.get(self._key(labels))
        return series.sum if series is not None else 0.0

    def cumulative_buckets(self, key: tuple[str, ...]) -> list[tuple[float, int]]:
        """``(le, cumulative count)`` pairs, the exported representation."""
        series = self._series[key]
        pairs, running = [], 0
        for bound, count in zip(self.buckets, series.bucket_counts):
            running += count
            pairs.append((bound, running))
        return pairs

    def merge_from(self, other: Metric) -> None:
        self._check_mergeable(other)
        if not isinstance(other, Histogram) or other.buckets != self.buckets:
            raise MetricError(f"{self.name}: bucket layout mismatch")
        for key, theirs in other._series.items():
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            for index, count in enumerate(theirs.bucket_counts):
                series.bucket_counts[index] += count
            series.sum += theirs.sum
            series.count += theirs.count


class MetricsRegistry:
    """A named collection of metrics (thread-safe registration).

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same object, asking with a conflicting
    kind or label set raises :class:`MetricError`.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    # -- registration --------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: tuple[str, ...], **kwargs) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if (type(existing) is not cls
                        or existing.labelnames != tuple(labelnames)):
                    raise MetricError(
                        f"{name} already registered as {existing.kind}"
                        f"{existing.labelnames}")
                return existing
            metric = cls(name, help, tuple(labelnames), **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labelnames: tuple[str, ...] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: tuple[str, ...] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        metric = self._get_or_create(Histogram, name, help, labelnames,
                                     buckets=buckets)
        if isinstance(metric, Histogram) and \
                metric.buckets != Histogram("x", buckets=buckets).buckets:
            raise MetricError(f"{name} already registered with different "
                              f"buckets")
        return metric

    # -- access --------------------------------------------------------

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def metrics(self) -> list[Metric]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    # -- merge / snapshot ---------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (shard snapshots, worker results)."""
        for metric in other.metrics():
            if isinstance(metric, Histogram):
                mine = self.histogram(metric.name, metric.help,
                                      metric.labelnames, metric.buckets)
            elif isinstance(metric, Gauge):
                mine = self.gauge(metric.name, metric.help, metric.labelnames)
            else:
                mine = self.counter(metric.name, metric.help,
                                    metric.labelnames)
            mine.merge_from(metric)

    def snapshot(self) -> list[dict]:
        """JSON-serializable dump (inverse of :meth:`from_snapshot`)."""
        out = []
        for metric in self.metrics():
            entry = {"name": metric.name, "kind": metric.kind,
                     "help": metric.help,
                     "labelnames": list(metric.labelnames)}
            if isinstance(metric, Histogram):
                entry["buckets"] = ["+Inf" if b == math.inf else b
                                    for b in metric.buckets]
                entry["series"] = [
                    {"labels": metric.labels_of(key),
                     "bucket_counts": list(series.bucket_counts),
                     "sum": series.sum, "count": series.count}
                    for key, series in sorted(metric.series().items())]
            else:
                entry["series"] = [
                    {"labels": metric.labels_of(key), "value": value}
                    for key, value in sorted(metric.series().items())]
            out.append(entry)
        return out

    @classmethod
    def from_snapshot(cls, payload: list[dict]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output."""
        registry = cls()
        for entry in payload:
            try:
                name = entry["name"]
                kind = entry["kind"]
                labelnames = tuple(entry.get("labelnames", ()))
                if kind == "histogram":
                    buckets = tuple(math.inf if b == "+Inf" else float(b)
                                    for b in entry["buckets"])
                    metric = registry.histogram(name, entry.get("help", ""),
                                                labelnames, buckets)
                    for series in entry["series"]:
                        key = metric._key(series["labels"])
                        state = _HistogramSeries(len(metric.buckets))
                        state.bucket_counts = list(series["bucket_counts"])
                        state.sum = float(series["sum"])
                        state.count = int(series["count"])
                        metric._series[key] = state
                elif kind == "gauge":
                    metric = registry.gauge(name, entry.get("help", ""),
                                            labelnames)
                    for series in entry["series"]:
                        metric.set(series["value"], **series["labels"])
                elif kind == "counter":
                    metric = registry.counter(name, entry.get("help", ""),
                                              labelnames)
                    for series in entry["series"]:
                        metric.inc(series["value"], **series["labels"])
                else:
                    raise MetricError(f"unknown metric kind {kind!r}")
            except (KeyError, TypeError, ValueError) as exc:
                raise MetricError(
                    f"malformed metrics snapshot entry: {exc!r}") from exc
        return registry


# ----------------------------------------------------------------------
# Process-wide default registry.

_default = MetricsRegistry()
_default_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-wide registry components fall back to."""
    return _default


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _default
    with _default_lock:
        previous, _default = _default, registry
    return previous
