"""Fault-provenance data model: per-injection payloads, campaign reports.

The taint tracker (``repro.cpu.tainttrace``) shadows one injected latch
bit as it propagates and emits, per injection, a plain-dict *provenance
payload*: a propagation DAG (nodes are latches / array words / memory
words, edges are value flows tagged with cycle and count), the
infection-footprint time series, the detection event and latency, and a
masking-attribution ledger.  This module owns the shared vocabulary for
those payloads (the masking taxonomy and node kinds) and the campaign
side: :class:`ProvenanceReport` folds payloads into per-unit-pair edge
matrices and latency/footprint statistics with commutative merge
semantics, so reports assembled from any sharding of a campaign — any
worker count, any arrival order — are identical.

Layering: this module is dependency-free (no ``repro.cpu`` / ``repro.sfi``
imports); the simulator and campaign layers import *it*.
"""

from __future__ import annotations

import enum
import math
from collections import Counter

__all__ = [
    "MaskingEvent",
    "ProvenanceReport",
    "TaintNodeKind",
]


class MaskingEvent(enum.Enum):
    """Why a tainted bit stopped mattering (the masking taxonomy).

    * ``OVERWRITTEN`` — functional logic wrote clean data over the taint
      before anything consumed it (the paper's dominant vanish cause).
    * ``PARITY_SCRUBBED`` — a checker fired and the recovery/refill path
      replaced the tainted state from a clean source.
    * ``ECC_CORRECTED`` — an ECC read or background scrub corrected the
      word in place (RUT checkpoint words).
    * ``ARCHITECTURALLY_DEAD`` — taint survived to the end of the drain
      but the outcome was benign: the infected state was never consumed.
    """

    OVERWRITTEN = "overwritten"
    PARITY_SCRUBBED = "parity-scrubbed"
    ECC_CORRECTED = "ecc-corrected"
    ARCHITECTURALLY_DEAD = "architecturally-dead"


class TaintNodeKind(enum.Enum):
    """What kind of storage a propagation-DAG node shadows."""

    LATCH = "latch"
    ARRAY = "array"
    MEMORY = "memory"


class ProvenanceReport:
    """Campaign-level aggregate of per-injection provenance payloads.

    Every field is a sum, count, min/max or counter, so :meth:`absorb`
    and :meth:`merge` are commutative and associative: the supervisor can
    fold partial reports from shards in completion order and still match
    a serial run bit for bit.
    """

    def __init__(self) -> None:
        self.injections = 0
        self.outcomes: Counter[str] = Counter()
        #: (src_unit, dst_unit) -> summed edge traversal count.
        self.unit_edges: Counter[tuple[str, str]] = Counter()
        self.edges_dropped = 0
        self.detections = 0
        self.detection_latency_sum = 0
        self.detection_latency_min: int | None = None
        self.detection_latency_max: int | None = None
        self.detected_by: Counter[str] = Counter()
        self.masking: Counter[str] = Counter()
        self.peak_bits_sum = 0
        self.peak_bits_max = 0
        self.residual_bits_sum = 0
        self.cross_core_edges = 0

    # ------------------------------------------------------------------
    # Folding.

    def absorb(self, payload: dict) -> None:
        """Fold one per-injection payload into the aggregate."""
        self.injections += 1
        self.outcomes[payload.get("outcome", "?")] += 1
        nodes = payload.get("nodes", [])
        for src, dst, _cycle, count in payload.get("edges", []):
            pair = (nodes[src]["unit"], nodes[dst]["unit"])
            self.unit_edges[pair] += count
        self.edges_dropped += payload.get("edges_dropped", 0)
        detection = payload.get("detection")
        if detection is not None:
            latency = detection["latency"]
            self.detections += 1
            self.detection_latency_sum += latency
            self.detection_latency_min = (
                latency if self.detection_latency_min is None
                else min(self.detection_latency_min, latency))
            self.detection_latency_max = (
                latency if self.detection_latency_max is None
                else max(self.detection_latency_max, latency))
            self.detected_by[detection["detector"]] += 1
        for cause, count in payload.get("masking_counts", {}).items():
            self.masking[cause] += count
        peak = payload.get("peak_bits", 0)
        self.peak_bits_sum += peak
        self.peak_bits_max = max(self.peak_bits_max, peak)
        self.residual_bits_sum += payload.get("residual_tainted", 0)
        self.cross_core_edges += payload.get("cross_core_edges", 0)

    def merge(self, other: ProvenanceReport) -> None:
        """Fold another (partial) report into this one."""
        self.injections += other.injections
        self.outcomes.update(other.outcomes)
        self.unit_edges.update(other.unit_edges)
        self.edges_dropped += other.edges_dropped
        self.detections += other.detections
        self.detection_latency_sum += other.detection_latency_sum
        for mine, theirs, pick in (("detection_latency_min",
                                    other.detection_latency_min, min),
                                   ("detection_latency_max",
                                    other.detection_latency_max, max)):
            if theirs is not None:
                current = getattr(self, mine)
                setattr(self, mine,
                        theirs if current is None else pick(current, theirs))
        self.detected_by.update(other.detected_by)
        self.masking.update(other.masking)
        self.peak_bits_sum += other.peak_bits_sum
        self.peak_bits_max = max(self.peak_bits_max, other.peak_bits_max)
        self.residual_bits_sum += other.residual_bits_sum
        self.cross_core_edges += other.cross_core_edges

    # ------------------------------------------------------------------
    # Derived views.

    @property
    def mean_detection_latency(self) -> float:
        return (self.detection_latency_sum / self.detections
                if self.detections else math.nan)

    @property
    def mean_peak_bits(self) -> float:
        return (self.peak_bits_sum / self.injections
                if self.injections else math.nan)

    def units(self) -> list[str]:
        """Every unit appearing in the edge matrix, sorted."""
        seen = {unit for pair in self.unit_edges for unit in pair}
        return sorted(seen)

    # ------------------------------------------------------------------
    # Serialisation (for JSONL sidecars and cross-process transfer).

    def to_dict(self) -> dict:
        return {
            "injections": self.injections,
            "outcomes": dict(sorted(self.outcomes.items())),
            "unit_edges": [[src, dst, count] for (src, dst), count
                           in sorted(self.unit_edges.items())],
            "edges_dropped": self.edges_dropped,
            "detections": self.detections,
            "detection_latency_sum": self.detection_latency_sum,
            "detection_latency_min": self.detection_latency_min,
            "detection_latency_max": self.detection_latency_max,
            "detected_by": dict(sorted(self.detected_by.items())),
            "masking": dict(sorted(self.masking.items())),
            "peak_bits_sum": self.peak_bits_sum,
            "peak_bits_max": self.peak_bits_max,
            "residual_bits_sum": self.residual_bits_sum,
            "cross_core_edges": self.cross_core_edges,
        }

    @classmethod
    def from_dict(cls, data: dict) -> ProvenanceReport:
        report = cls()
        report.injections = data.get("injections", 0)
        report.outcomes = Counter(data.get("outcomes", {}))
        report.unit_edges = Counter(
            {(src, dst): count
             for src, dst, count in data.get("unit_edges", [])})
        report.edges_dropped = data.get("edges_dropped", 0)
        report.detections = data.get("detections", 0)
        report.detection_latency_sum = data.get("detection_latency_sum", 0)
        report.detection_latency_min = data.get("detection_latency_min")
        report.detection_latency_max = data.get("detection_latency_max")
        report.detected_by = Counter(data.get("detected_by", {}))
        report.masking = Counter(data.get("masking", {}))
        report.peak_bits_sum = data.get("peak_bits_sum", 0)
        report.peak_bits_max = data.get("peak_bits_max", 0)
        report.residual_bits_sum = data.get("residual_bits_sum", 0)
        report.cross_core_edges = data.get("cross_core_edges", 0)
        return report

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProvenanceReport):
            return NotImplemented
        return self.to_dict() == other.to_dict()
