"""Live statistical convergence: Wilson CI widths per unit and outcome.

The paper's machinery (§2.1) answers "how many flips do I need" *before*
a campaign; this module answers "how far along am I" *during* one.  A
:class:`ConvergenceTracker` folds (unit, outcome) counts — from a
journal tail, a warehouse query, or live records — into per-category
Wilson interval widths and a trials-to-target estimate via
:func:`repro.stats.required_trials_for_width`.

The tracker is a pure fold: feeding it the same counts in any order
yields the same rows, so the live view in ``repro-sfi status`` /
``repro-sfi monitor`` matches an offline recomputation from the journal
exactly.  It never imports the execution layers; callers hand it unit
and outcome strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.stats import required_trials_for_width, wilson_width

__all__ = [
    "ConvergenceRow",
    "ConvergenceTracker",
    "render_convergence",
]

#: Default full-width target for a "converged" category: +/-1%.
DEFAULT_TARGET_WIDTH = 0.02


@dataclass(frozen=True)
class ConvergenceRow:
    """One (unit, outcome) category's convergence state."""

    unit: str
    outcome: str
    count: int        #: records in this category
    trials: int       #: all records for the unit (the denominator)
    proportion: float
    width: float      #: full Wilson interval width at ``trials``
    converged: bool
    trials_needed: int  #: total unit trials for the target width


@dataclass
class ConvergenceTracker:
    """Folds per-unit outcome counts into Wilson-width convergence rows.

    ``target_width`` is the full interval width (high - low) a category
    must narrow to before it counts as converged.
    """

    target_width: float = DEFAULT_TARGET_WIDTH
    confidence: float = 0.95
    _counts: dict = field(default_factory=dict)

    def fold(self, unit: str, outcome: str, n: int = 1) -> None:
        """Account ``n`` more records of ``outcome`` in ``unit``."""
        per_unit = self._counts.setdefault(str(unit), {})
        per_unit[str(outcome)] = per_unit.get(str(outcome), 0) + int(n)

    def fold_counts(self, breakdown: dict) -> None:
        """Fold a ``unit -> outcome -> count`` mapping (warehouse shape)."""
        for unit, outcomes in breakdown.items():
            for outcome, count in outcomes.items():
                self.fold(unit, outcome, count)

    @classmethod
    def from_counts(cls, breakdown: dict, *,
                    target_width: float = DEFAULT_TARGET_WIDTH,
                    confidence: float = 0.95) -> "ConvergenceTracker":
        tracker = cls(target_width=target_width, confidence=confidence)
        tracker.fold_counts(breakdown)
        return tracker

    @property
    def total(self) -> int:
        return sum(sum(per.values()) for per in self._counts.values())

    def counts(self) -> dict:
        """The folded ``unit -> outcome -> count`` state (copied)."""
        return {unit: dict(per) for unit, per in
                sorted(self._counts.items())}

    def rows(self) -> list:
        """Per-(unit, outcome) convergence rows, sorted for stable output."""
        rows = []
        for unit in sorted(self._counts):
            per_unit = self._counts[unit]
            trials = sum(per_unit.values())
            if trials <= 0:
                continue
            for outcome in sorted(per_unit):
                count = per_unit[outcome]
                width = wilson_width(count, trials,
                                     confidence=self.confidence)
                needed = required_trials_for_width(
                    count, trials, self.target_width,
                    confidence=self.confidence)
                rows.append(ConvergenceRow(
                    unit=unit, outcome=outcome, count=count,
                    trials=trials, proportion=count / trials,
                    width=width,
                    converged=width <= self.target_width,
                    trials_needed=needed))
        return rows

    def worst(self):
        """The widest (least converged) row, or None when empty."""
        rows = self.rows()
        return max(rows, key=lambda row: row.width) if rows else None

    def remaining_trials(self) -> int:
        """Additional trials until every category meets the target.

        Per unit, the binding category is the one demanding the most
        trials; across units the campaign must satisfy all of them, so
        the answer is the sum of per-unit shortfalls.
        """
        shortfall: dict = {}
        for row in self.rows():
            missing = max(0, row.trials_needed - row.trials)
            shortfall[row.unit] = max(shortfall.get(row.unit, 0), missing)
        return sum(shortfall.values())

    def publish(self, registry) -> None:
        """Publish the convergence state as gauges.

        Lets the exporters and the fleet monitor carry convergence next
        to throughput without a second transport: widths are
        last-write-wins by construction, so republishing is idempotent.
        """
        width = registry.gauge(
            "sfi_convergence_width",
            "full Wilson interval width per unit and outcome",
            labelnames=("unit", "outcome"))
        needed = registry.gauge(
            "sfi_convergence_trials_needed",
            "total unit trials required to reach the target width",
            labelnames=("unit", "outcome"))
        for row in self.rows():
            width.set(row.width, unit=row.unit, outcome=row.outcome)
            needed.set(row.trials_needed, unit=row.unit,
                       outcome=row.outcome)
        registry.gauge(
            "sfi_convergence_remaining_trials",
            "estimated additional trials until every category converges",
        ).set(self.remaining_trials())

    def snapshot(self) -> dict:
        """JSON-safe summary (``--json`` paths and the fleet monitor)."""
        return {
            "target_width": self.target_width,
            "confidence": self.confidence,
            "total": self.total,
            "remaining_trials": self.remaining_trials(),
            "rows": [{
                "unit": row.unit, "outcome": row.outcome,
                "count": row.count, "trials": row.trials,
                "proportion": round(row.proportion, 6),
                "width": round(row.width, 6),
                "converged": row.converged,
                "trials_needed": row.trials_needed,
            } for row in self.rows()],
        }


def render_convergence(source, *, limit: int = 0) -> str:
    """Text table for ``repro-sfi status`` / the monitor.

    ``source`` is a :class:`ConvergenceTracker` or the dict its
    :meth:`~ConvergenceTracker.snapshot` produced (the fleet monitor
    receives the latter over the wire).  ``limit`` > 0 keeps only the
    widest rows — the monitor's terminal frame has room for a handful,
    and the widest are the ones still driving the campaign length.
    """
    snap = source.snapshot() if isinstance(source, ConvergenceTracker) \
        else source
    rows = snap.get("rows", [])
    if not rows:
        return "convergence: no records yet"
    shown = sorted(rows, key=lambda row: -row["width"])
    if limit > 0:
        shown = shown[:limit]
    lines = [f"convergence toward ±{snap['target_width'] / 2:.3%} "
             f"({snap['confidence']:.0%} Wilson):"]
    for row in shown:
        status = "ok" if row["converged"] else \
            f"needs {row['trials_needed']:,} trials"
        lines.append(
            f"  {row['unit']:<8} {row['outcome']:<16} "
            f"{row['count']:>7}/{row['trials']:<7} "
            f"p={row['proportion']:.4f} width={row['width']:.4f}  {status}")
    remaining = snap.get("remaining_trials", 0)
    lines.append(f"  estimated additional trials to target: {remaining:,}"
                 if remaining else "  all categories converged")
    return "\n".join(lines)
