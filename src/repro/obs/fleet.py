"""Fleet telemetry: cross-host spans and streamed metrics deltas.

A distributed campaign (PR 6) ships records but, until this module, no
telemetry: queue-wait, lease churn and wave occupancy on remote workers
were invisible while the campaign ran.  This module is both ends of the
telemetry channel:

* **Worker side** — :class:`SpanRecorder` collects phase spans against
  the local monotonic clock, and :class:`TelemetryStream` packages
  changed metrics series plus finished spans into compact frame
  payloads (zlib + base64 over the existing JSON wire protocol).
  Workers send *cumulative* snapshots, never deltas: a lost frame loses
  nothing, because the next frame carries the running totals again.

* **Coordinator side** — :class:`FleetRegistry` folds those cumulative
  snapshots into a fleet-wide registry by diffing against the last
  snapshot seen per worker incarnation (counter/histogram diffs clamp
  at zero; gauges are last-write-wins), so replays and restarts can
  never double-count.  :func:`rebase_spans` moves worker-local span
  times into the coordinator's clock domain using the frame's send
  timestamp, and :func:`critical_path` attributes campaign wall-clock
  to the deepest active phase at every instant.

Everything here is observational: the record journal is byte-identical
with telemetry on or off (the differential test in
``tests/test_fleet_obs.py`` holds this under worker SIGKILL).
"""

from __future__ import annotations

import base64
import binascii
import json
import time
import zlib
from dataclasses import dataclass, field, replace
from enum import Enum, unique

from repro.obs.metrics import MetricError, MetricsRegistry

__all__ = [
    "FleetRegistry",
    "FleetSpanPhase",
    "Span",
    "SpanRecorder",
    "TELEMETRY_VERSION",
    "TelemetryStream",
    "critical_path",
    "pack_payload",
    "read_span_log",
    "rebase_spans",
    "render_fleet",
    "unpack_payload",
    "write_span_log",
]

#: Version stamped into every telemetry frame and span sidecar header.
TELEMETRY_VERSION = 1

#: Span sidecar files live next to the journal: ``<journal>.spans``.
SPAN_SIDECAR_SUFFIX = ".spans"


@unique
class FleetSpanPhase(Enum):
    """Phases a campaign's wall-clock is attributed to.

    Serialized by value into frames, sidecars and the warehouse
    ``spans`` table; values are kebab-case per REPRO-N02.
    """

    CAMPAIGN = "campaign"          #: root — the whole supervised run
    WORKER_WAIT = "worker-wait"    #: coordinator waiting for min_workers
    QUEUE_WAIT = "queue-wait"      #: shard queued, no worker assigned
    LEASE_HELD = "lease-held"      #: grant → done/reclaim on coordinator
    WORKER_WARMUP = "worker-warmup"  #: lease receipt → first record
    WORKER_EXECUTE = "worker-execute"  #: the runner executing a lease
    TRIAL = "trial"                #: one injection inside a lease
    POOL_EXECUTE = "pool-execute"  #: local pool leg (serial or degrade)
    DRAIN = "drain"                #: fencing + lease-log drain at exit


@dataclass(frozen=True)
class Span:
    """One timed phase, in whichever clock domain recorded it."""

    span_id: str
    phase: str
    start: float
    end: float
    parent_id: str | None = None
    worker: str = ""
    shard_id: int = -1
    token: int = -1

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id, "phase": self.phase,
            "start": self.start, "end": self.end,
            "parent_id": self.parent_id, "worker": self.worker,
            "shard_id": self.shard_id, "token": self.token,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        return cls(
            span_id=str(payload["span_id"]),
            phase=str(payload["phase"]),
            start=float(payload["start"]),
            end=float(payload["end"]),
            parent_id=(None if payload.get("parent_id") is None
                       else str(payload["parent_id"])),
            worker=str(payload.get("worker", "")),
            shard_id=int(payload.get("shard_id", -1)),
            token=int(payload.get("token", -1)),
        )


class SpanRecorder:
    """Collects spans against one process's monotonic clock.

    ``source`` prefixes span ids so trees merged from several hosts
    never collide (workers use ``name@pid``, the coordinator ``coord``).
    Finished spans accumulate until :meth:`drain` ships them.
    """

    def __init__(self, source: str = "coord", clock=time.monotonic) -> None:
        self.source = source
        self.clock = clock
        self._next = 0
        self._open: dict[str, Span] = {}
        self._finished: list[Span] = []

    def begin(self, phase: FleetSpanPhase, *, parent_id: str | None = None,
              worker: str = "", shard_id: int = -1,
              token: int = -1) -> str:
        self._next += 1
        span_id = f"{self.source}-{self._next}"
        self._open[span_id] = Span(
            span_id=span_id, phase=phase.value, start=self.clock(),
            end=-1.0, parent_id=parent_id, worker=worker,
            shard_id=shard_id, token=token)
        return span_id

    def record(self, phase: FleetSpanPhase, start: float, end: float, *,
               parent_id: str | None = None, worker: str = "",
               shard_id: int = -1, token: int = -1) -> str:
        """Append an already-finished span with explicit times (trial
        spans are emit-to-emit intervals measured by the caller)."""
        self._next += 1
        span_id = f"{self.source}-{self._next}"
        self._finished.append(Span(
            span_id=span_id, phase=phase.value, start=start, end=end,
            parent_id=parent_id, worker=worker, shard_id=shard_id,
            token=token))
        return span_id

    def finish(self, span_id: str) -> Span | None:
        span = self._open.pop(span_id, None)
        if span is None:
            return None
        done = replace(span, end=self.clock())
        self._finished.append(done)
        return done

    def finish_all(self) -> None:
        for span_id in list(self._open):
            self.finish(span_id)

    def drain(self) -> list[Span]:
        """Finished spans since the last drain (ownership transfers)."""
        finished, self._finished = self._finished, []
        return finished

    @property
    def open_count(self) -> int:
        return len(self._open)


# ----------------------------------------------------------------------
# Frame payload packing.

def pack_payload(value) -> str:
    """JSON → zlib → base64: a frame-safe string for bulky payloads."""
    raw = json.dumps(value, sort_keys=True).encode("utf-8")
    return base64.b64encode(zlib.compress(raw, 6)).decode("ascii")


def unpack_payload(packed: str):
    """Inverse of :func:`pack_payload`; raises ValueError on garbage."""
    try:
        raw = zlib.decompress(base64.b64decode(packed.encode("ascii")))
        return json.loads(raw.decode("utf-8"))
    except (binascii.Error, zlib.error, UnicodeError,
            json.JSONDecodeError) as exc:
        raise ValueError(f"undecodable telemetry payload: {exc}") from exc


def snapshot_subset(snapshot: list, last: dict) -> list:
    """Entries of ``snapshot`` that changed since ``last`` (name-keyed).

    Whole-metric granularity: a changed series resends its metric's
    full cumulative entry.  Correctness never depends on this filter —
    it only keeps steady-state frames small.
    """
    return [entry for entry in snapshot
            if entry != last.get(entry["name"])]


class TelemetryStream:
    """Worker side: turns local state into TelemetryFrame payloads."""

    def __init__(self, registry: MetricsRegistry, recorder: SpanRecorder,
                 *, worker: str, pid: int, max_span_batch: int = 512,
                 clock=time.monotonic) -> None:
        self.registry = registry
        self.recorder = recorder
        self.worker = worker
        self.pid = pid
        self.max_span_batch = max_span_batch
        self.clock = clock
        self.seq = 0
        self._last_sent: dict[str, dict] = {}
        self._span_backlog: list[Span] = []

    def frame(self, *, force: bool = False) -> dict | None:
        """Next frame payload, or None when nothing changed.

        The metrics payload is the *cumulative* snapshot restricted to
        changed metrics; the span payload is whatever finished since
        the last frame (bounded by ``max_span_batch``; the rest waits
        for the next frame).
        """
        subset = snapshot_subset(self.registry.snapshot(), self._last_sent)
        self._span_backlog.extend(self.recorder.drain())
        spans = self._span_backlog[:self.max_span_batch]
        self._span_backlog = self._span_backlog[len(spans):]
        if not subset and not spans and not force:
            return None
        self.seq += 1
        for entry in subset:
            self._last_sent[entry["name"]] = entry
        return {
            "version": TELEMETRY_VERSION,
            "worker": self.worker,
            "pid": self.pid,
            "seq": self.seq,
            "now": self.clock(),
            "metrics": pack_payload(subset) if subset else "",
            "spans": pack_payload([span.to_dict() for span in spans])
            if spans else "",
        }

    def reset_connection(self) -> None:
        """Resend everything cumulative after a reconnect.

        The coordinator diffs against its own per-incarnation baseline,
        so the full resend is idempotent there."""
        self._last_sent = {}


# ----------------------------------------------------------------------
# Coordinator-side fold.

class _FleetInstruments:
    def __init__(self, registry: MetricsRegistry) -> None:
        self.frames = registry.counter(
            "sfi_fleet_frames_total", "telemetry frames absorbed")
        self.frame_errors = registry.counter(
            "sfi_fleet_frame_errors_total",
            "telemetry frames dropped as undecodable or stale")
        self.spans = registry.counter(
            "sfi_fleet_spans_total", "worker spans merged into the tree")
        self.incarnations = registry.counter(
            "sfi_fleet_incarnations_total",
            "worker restarts observed via pid change")
        self.workers = registry.gauge(
            "sfi_fleet_workers", "distinct workers that ever streamed")
        self.frame_bytes = registry.histogram(
            "sfi_fleet_frame_bytes", "packed telemetry payload size",
            buckets=(256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0))


class _WorkerState:
    __slots__ = ("pid", "seq", "last", "updated")

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.seq = 0
        self.last: dict[str, dict] = {}  # metric name -> cumulative entry
        self.updated = 0.0


def _series_map(entry: dict) -> dict:
    """Label-tuple -> series dict, for diffing cumulative entries."""
    names = tuple(entry.get("labelnames", ()))
    return {tuple(str(series["labels"][name]) for name in names): series
            for series in entry.get("series", ())}


def _entry_delta(entry: dict, last: dict | None) -> dict | None:
    """The merge-ready difference between two cumulative entries.

    Counters and histograms diff series-wise with clamping at zero (a
    shrinking cumulative value means a restarted source; the baseline
    reset in :meth:`FleetRegistry.absorb` is the real handler — the
    clamp is belt-and-braces).  Gauges pass through: merge semantics
    are last-write-wins already.
    """
    if last is None or entry.get("kind") == "gauge":
        return entry
    if entry.get("kind") not in ("counter", "histogram"):
        return entry
    if entry.get("kind") == "histogram" and \
            entry.get("buckets") != last.get("buckets"):
        return entry  # relayout: treat as fresh
    previous = _series_map(last)
    names = tuple(entry.get("labelnames", ()))
    series_out = []
    for series in entry.get("series", ()):
        key = tuple(str(series["labels"][name]) for name in names)
        before = previous.get(key)
        if entry["kind"] == "counter":
            delta = series["value"] - (before["value"] if before else 0.0)
            if delta > 0:
                series_out.append({"labels": series["labels"],
                                   "value": delta})
        else:
            old_counts = before["bucket_counts"] if before else \
                [0] * len(series["bucket_counts"])
            counts = [max(0, new - old) for new, old in
                      zip(series["bucket_counts"], old_counts)]
            count = max(0, series["count"]
                        - (before["count"] if before else 0))
            total = max(0.0, series["sum"]
                        - (before["sum"] if before else 0.0))
            if count or any(counts):
                series_out.append({"labels": series["labels"],
                                   "bucket_counts": counts,
                                   "sum": total, "count": count})
    if not series_out:
        return None
    delta_entry = dict(entry)
    delta_entry["series"] = series_out
    return delta_entry


class FleetRegistry:
    """Folds worker telemetry frames into one fleet-wide registry.

    Kept separate from the coordinator's own registry: the fleet view
    aggregates *worker* processes; mixing it into the coordinator's
    series would double-count anything both sides measure.

    The no-double-count invariant — every fleet counter equals the sum
    of the per-incarnation cumulative values absorbed — is checkable at
    any time via :meth:`consistency_check`; the CI telemetry-chaos
    smoke asserts it across a worker SIGKILL.
    """

    def __init__(self, metrics: MetricsRegistry | None = None,
                 clock=time.monotonic) -> None:
        self.fleet = MetricsRegistry()
        self.clock = clock
        self._workers: dict[str, _WorkerState] = {}
        self._retired: list[dict[str, dict]] = []
        self._inst = _FleetInstruments(metrics) if metrics is not None \
            else None

    # -- ingestion -----------------------------------------------------

    def absorb(self, frame: dict, *,
               received_at: float | None = None) -> list[Span]:
        """Fold one TelemetryFrame payload; returns rebased spans.

        Robust by construction: an undecodable or stale frame is
        counted and dropped without touching the fleet state, so a torn
        connection can never leave the registry half-updated.
        """
        received_at = self.clock() if received_at is None else received_at
        try:
            worker = str(frame["worker"])
            pid = int(frame["pid"])
            seq = int(frame["seq"])
            sent_now = float(frame["now"])
            metrics_delta = self._metrics_delta(worker, pid, seq, frame)
            spans = self._frame_spans(frame, received_at - sent_now)
        except (KeyError, TypeError, ValueError, MetricError):
            if self._inst:
                self._inst.frame_errors.inc()
            return []
        if metrics_delta is None:  # stale seq: already absorbed
            if self._inst:
                self._inst.frame_errors.inc()
            return []
        if metrics_delta:
            self.fleet.merge(MetricsRegistry.from_snapshot(metrics_delta))
        if self._inst:
            self._inst.frames.inc()
            self._inst.workers.set(len(self._workers))
            if spans:
                self._inst.spans.inc(len(spans))
            self._inst.frame_bytes.observe(
                len(frame.get("metrics", "")) + len(frame.get("spans", "")))
        return spans

    def _metrics_delta(self, worker: str, pid: int, seq: int,
                       frame: dict) -> list | None:
        state = self._workers.get(worker)
        if state is None or state.pid != pid:
            if state is not None:
                self._retired.append(state.last)
                if self._inst:
                    self._inst.incarnations.inc()
            state = self._workers[worker] = _WorkerState(pid)
        if seq <= state.seq:
            return None
        packed = frame.get("metrics", "")
        entries = unpack_payload(packed) if packed else []
        deltas = []
        for entry in entries:
            delta = _entry_delta(entry, state.last.get(entry["name"]))
            state.last[entry["name"]] = entry
            if delta is not None:
                deltas.append(delta)
        state.seq = seq
        state.updated = self.clock()
        return deltas

    @staticmethod
    def _frame_spans(frame: dict, offset: float) -> list[Span]:
        packed = frame.get("spans", "")
        if not packed:
            return []
        spans = [Span.from_dict(entry) for entry in unpack_payload(packed)]
        return rebase_spans(spans, offset)

    # -- inspection ----------------------------------------------------

    def worker_names(self) -> list[str]:
        return sorted(self._workers)

    def worker_snapshot(self, worker: str) -> list:
        """The worker's last cumulative snapshot (registry format)."""
        state = self._workers.get(worker)
        if state is None:
            return []
        return [state.last[name] for name in sorted(state.last)]

    def worker_info(self, worker: str) -> dict:
        state = self._workers.get(worker)
        if state is None:
            return {}
        return {"pid": state.pid, "seq": state.seq,
                "updated": state.updated}

    def consistency_check(self) -> dict:
        """Verify fleet counters equal the sum of absorbed cumulatives.

        Walks every counter series in the fleet registry and recomputes
        its expected value from the live per-worker cumulative
        snapshots plus retired incarnations.  Any mismatch means a
        delta was double-applied or lost — the exact failure mode the
        telemetry-chaos CI smoke exists to catch.
        """
        expected: dict[tuple, float] = {}
        sources = [state.last for state in self._workers.values()]
        sources.extend(self._retired)
        for last in sources:
            for entry in last.values():
                if entry.get("kind") != "counter":
                    continue
                for series in entry.get("series", ()):
                    key = (entry["name"],
                           tuple(sorted(series["labels"].items())))
                    expected[key] = expected.get(key, 0.0) \
                        + series["value"]
        mismatches = []
        for entry in self.fleet.snapshot():
            if entry["kind"] != "counter":
                continue
            for series in entry["series"]:
                key = (entry["name"],
                       tuple(sorted(series["labels"].items())))
                want = expected.pop(key, 0.0)
                if abs(series["value"] - want) > 1e-9:
                    mismatches.append({"metric": entry["name"],
                                       "labels": series["labels"],
                                       "fleet": series["value"],
                                       "expected": want})
        for (name, labels), want in expected.items():
            if want > 1e-9:
                mismatches.append({"metric": name, "labels": dict(labels),
                                   "fleet": 0.0, "expected": want})
        return {"ok": not mismatches, "mismatches": mismatches}


def rebase_spans(spans: list, offset: float) -> list:
    """Move spans between clock domains by a fixed offset.

    ``offset = coordinator_receive_time - frame_send_time`` rebases
    worker-local monotonic times into the coordinator's domain; network
    latency biases every span late by the (one-way) transit time, which
    cancels out of durations and only skews cross-host ordering by
    milliseconds — fine for phase attribution.
    """
    return [replace(span, start=span.start + offset,
                    end=span.end + offset) for span in spans]


# ----------------------------------------------------------------------
# Critical-path analysis.

def critical_path(spans: list) -> dict:
    """Attribute campaign wall-clock to the deepest active phase.

    Sweeps the root (``campaign``) span's interval; each instant is
    charged to the deepest span covering it (ties: latest start, then
    span id, so the sweep is deterministic).  Time no child covers
    stays on the root, which is exactly the unattributed residue the
    acceptance criterion bounds at 5%.

    Returns ``{"total", "phases": {phase: seconds}, "coverage",
    "segments"}`` where coverage is the non-root fraction.
    """
    by_id = {span.span_id: span for span in spans}
    roots = [span for span in spans
             if span.phase == FleetSpanPhase.CAMPAIGN.value]
    if not roots:
        return {"total": 0.0, "phases": {}, "coverage": 0.0,
                "segments": []}
    root = max(roots, key=lambda span: span.duration)

    depth_cache: dict[str, int] = {}

    def depth(span: Span) -> int:
        cached = depth_cache.get(span.span_id)
        if cached is not None:
            return cached
        depth_cache[span.span_id] = 1  # cycle guard
        parent = by_id.get(span.parent_id) if span.parent_id else None
        value = 1 if parent is None else depth(parent) + 1
        depth_cache[span.span_id] = value
        return value

    live = [span for span in spans
            if span.end > span.start
            and span.end > root.start and span.start < root.end]
    bounds = sorted({max(root.start, min(root.end, t))
                     for span in live for t in (span.start, span.end)})
    phases: dict[str, float] = {}
    segments = []
    for left, right in zip(bounds, bounds[1:]):
        if right <= left:
            continue
        active = [span for span in live
                  if span.start <= left and span.end >= right]
        if not active:
            continue
        winner = max(active, key=lambda span: (depth(span), span.start,
                                               span.span_id))
        phases[winner.phase] = phases.get(winner.phase, 0.0) \
            + (right - left)
        if segments and segments[-1]["phase"] == winner.phase and \
                abs(segments[-1]["end"] - left) < 1e-12:
            segments[-1]["end"] = right
        else:
            segments.append({"phase": winner.phase, "start": left,
                             "end": right})
    total = root.duration
    attributed = sum(seconds for phase, seconds in phases.items()
                     if phase != root.phase)
    return {
        "total": total,
        "phases": dict(sorted(phases.items())),
        "coverage": attributed / total if total > 0 else 0.0,
        "segments": segments,
    }


# ----------------------------------------------------------------------
# Span sidecar (``<journal>.spans``), mirroring the ``.leases`` log.

def write_span_log(path, spans: list, *, campaign: str = "") -> None:
    """Write the merged span tree next to the journal (atomic enough:
    single writer, post-campaign)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({
            "kind": "header", "version": TELEMETRY_VERSION,
            "campaign": campaign, "spans": len(spans),
        }, sort_keys=True) + "\n")
        for span in spans:
            handle.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")


def read_span_log(path) -> list:
    """Read a span sidecar; skips torn/malformed lines like the other
    sidecar readers."""
    spans = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    if payload.get("kind") == "header":
                        continue
                    spans.append(Span.from_dict(payload))
                except (ValueError, KeyError, TypeError):
                    continue
    except OSError:
        return []
    return spans


# ----------------------------------------------------------------------
# Live fleet view rendering (``repro-sfi monitor --connect``).

def _counter_total(entries: list, name: str) -> float:
    for entry in entries:
        if entry["name"] == name and entry["kind"] == "counter":
            return sum(series["value"] for series in entry["series"])
    return 0.0


def _histogram_mean(entries: list, name: str) -> float | None:
    for entry in entries:
        if entry["name"] == name and entry["kind"] == "histogram":
            count = sum(series["count"] for series in entry["series"])
            total = sum(series["sum"] for series in entry["series"])
            return total / count if count else None
    return None


def render_fleet(snapshot: dict, *, rates: dict | None = None) -> str:
    """Render one FleetSnapshot payload for the live monitor.

    ``snapshot`` is the coordinator-built dict (see
    ``SocketTransport._fleet_snapshot``): campaign name, per-worker
    cumulative registry snapshots, fleet totals and the convergence
    summary.  ``rates`` optionally maps worker -> injections/s computed
    client-side from consecutive snapshots.
    """
    lines = [f"fleet: campaign {snapshot.get('campaign') or '?'}  "
             f"workers={len(snapshot.get('workers', {}))}"]
    for name in sorted(snapshot.get("workers", {})):
        info = snapshot["workers"][name]
        entries = info.get("snapshot", [])
        injections = _counter_total(entries, "sfi_injections_total")
        waves = _counter_total(entries, "sfi_waves_total")
        occupancy = _histogram_mean(entries, "sfi_wave_occupancy_lanes")
        rate = (rates or {}).get(name)
        parts = [f"  {name} pid={info.get('pid', '?')} "
                 f"seq={info.get('seq', '?')}",
                 f"injections={injections:.0f}"]
        if rate is not None:
            parts.append(f"({rate:.1f}/s)")
        if waves:
            parts.append(f"waves={waves:.0f}")
        if occupancy is not None:
            parts.append(f"occupancy={occupancy:.1f} lanes")
        lines.append("  ".join(parts))
    fleet_entries = snapshot.get("fleet", [])
    if fleet_entries:
        degrades = _counter_total(fleet_entries, "sfi_degrades_total")
        lines.append(
            f"  fleet totals: injections="
            f"{_counter_total(fleet_entries, 'sfi_injections_total'):.0f}  "
            f"fastpath_saved="
            f"{_counter_total(fleet_entries, 'sfi_fastpath_saved_cycles'):.0f}"
            + (f"  degrades={degrades:.0f}" if degrades else ""))
    service = snapshot.get("service", [])
    if service:
        reissues = _counter_total(service, "sfi_lease_reissues_total")
        fenced = _counter_total(service, "sfi_fenced_records_total")
        if reissues or fenced:
            lines.append(f"  leases: reissues={reissues:.0f}  "
                         f"fenced={fenced:.0f}")
    return "\n".join(lines)
