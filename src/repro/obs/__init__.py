"""Observability: metrics, structured traces, profiling and monitoring.

The measurement substrate for campaign execution (see DESIGN.md
"Observability"): a dependency-free metrics registry with Prometheus
textfile and JSONL exporters, a structured fault-propagation trace
layer, a sampled core profiler, and the journal-tailing monitor behind
``repro-sfi monitor`` / ``repro-sfi stats``.

This package only *observes*: it never imports the execution layers
(``repro.sfi``, ``repro.cpu``), which instead accept a registry or a
trace writer and report into it.  Sole carve-out: the monitor shares
the read-only journal-cursor primitives in ``repro.sfi.storage`` with
the warehouse tailer, so both consume journals identically.
"""

from repro.obs.convergence import (
    ConvergenceRow,
    ConvergenceTracker,
    render_convergence,
)
from repro.obs.exporters import (
    ParsedMetrics,
    load_jsonl_snapshot,
    parse_prometheus_text,
    render_jsonl,
    render_prometheus,
    write_jsonl,
    write_prometheus,
)
from repro.obs.fleet import (
    FleetRegistry,
    FleetSpanPhase,
    Span,
    SpanRecorder,
    TelemetryStream,
    critical_path,
    read_span_log,
    rebase_spans,
    render_fleet,
    write_span_log,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricError,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)
from repro.obs.monitor import (
    JournalProgress,
    advance_journal_progress,
    format_duration,
    lease_sidecar_lines,
    load_metrics_file,
    monitor_campaign,
    read_journal_progress,
    render_monitor_frame,
    render_stats,
)
from repro.obs.profile import CoreProfiler
from repro.obs.provenance import (
    MaskingEvent,
    ProvenanceReport,
    TaintNodeKind,
)
from repro.obs.trace import (
    TRACE_FORMAT_VERSION,
    TraceWriter,
    chain_from_record,
    read_trace_log,
    spans_from_events,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "TRACE_FORMAT_VERSION",
    "ConvergenceRow",
    "ConvergenceTracker",
    "CoreProfiler",
    "Counter",
    "FleetRegistry",
    "FleetSpanPhase",
    "Gauge",
    "Histogram",
    "JournalProgress",
    "MaskingEvent",
    "Metric",
    "MetricError",
    "MetricsRegistry",
    "ParsedMetrics",
    "ProvenanceReport",
    "Span",
    "SpanRecorder",
    "TaintNodeKind",
    "TelemetryStream",
    "TraceWriter",
    "advance_journal_progress",
    "chain_from_record",
    "critical_path",
    "default_registry",
    "format_duration",
    "lease_sidecar_lines",
    "load_jsonl_snapshot",
    "load_metrics_file",
    "monitor_campaign",
    "parse_prometheus_text",
    "read_journal_progress",
    "read_span_log",
    "read_trace_log",
    "rebase_spans",
    "render_convergence",
    "render_fleet",
    "render_jsonl",
    "render_monitor_frame",
    "render_prometheus",
    "render_stats",
    "set_default_registry",
    "spans_from_events",
    "write_jsonl",
    "write_prometheus",
]
