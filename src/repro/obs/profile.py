"""Sampled cycle-loop profiling.

The core's ``cycle()`` is the hottest loop in the system — a campaign is
millions of simulated cycles — so it cannot afford per-cycle metric
calls.  Instead :class:`CoreProfiler` installs itself as the core's
``profile_hook`` and is invoked once every ``interval`` cycles; each
invocation updates a cycles-per-second gauge and drains the core's
existing :class:`~repro.cpu.events.EventLog` incrementally to count
checker fires and recovery cycles by unit.  When no profiler is
attached the hot loop pays exactly one attribute load and ``None``
check per cycle (guarded by the overhead benchmark).
"""

from __future__ import annotations

import time

from repro.obs.metrics import MetricsRegistry

__all__ = ["CoreProfiler"]


def _unit_of_checker(detail: str) -> str:
    """``FXU_PARITY (ifar=...)`` -> ``FXU`` (checkers prefix their unit)."""
    token = detail.split(" ", 1)[0] if detail else ""
    return token.split("_", 1)[0] if token else "?"


class CoreProfiler:
    """Samples a core's execution rate and RAS activity into a registry."""

    def __init__(self, core, registry: MetricsRegistry, *,
                 interval: int = 2048,
                 clock=time.perf_counter,
                 core_label: str | None = None) -> None:
        self.core = core
        self.interval = max(1, interval)
        self._clock = clock
        self._last_time: float | None = None
        self._last_cycles = 0
        self._seen_events = 0      # absolute index: dropped + consumed
        self._recovery_start: int | None = None
        self._recovery_unit = "?"
        # ``core_label`` adds a ``core`` label to every series, so chip
        # campaigns can attach one profiler per core to a single registry
        # without their samples colliding.  Labelled and unlabelled
        # profilers cannot share a registry (the metric shapes differ).
        self._labels = {"core": core_label} if core_label else {}
        extra = ("core",) if core_label else ()

        self.cycles_per_second = registry.gauge(
            "core_cycles_per_second",
            "simulated cycles per wall second (sampled)", extra)
        self.cycles_total = registry.counter(
            "core_cycles_total", "simulated cycles (sampled resolution)",
            extra)
        self.checker_fires = registry.counter(
            "core_checker_fires_total",
            "checker detections seen in the event log", ("unit",) + extra)
        self.recovery_cycles = registry.counter(
            "core_recovery_cycles_total",
            "cycles spent in recovery sequences", ("unit",) + extra)
        self.events_dropped = registry.gauge(
            "core_event_log_dropped", "events the bounded log discarded",
            extra)

        core.profile_interval = self.interval
        core.profile_hook = self

    def detach(self) -> None:
        if getattr(self.core, "profile_hook", None) is self:
            self.core.profile_hook = None

    # -- sampling ------------------------------------------------------

    def __call__(self, core) -> None:
        self.sample()

    def sample(self) -> None:
        """Take one sample (also callable manually, e.g. at campaign end)."""
        core = self.core
        now = self._clock()
        cycles = core.cycles
        if self._last_time is not None:
            elapsed = now - self._last_time
            advanced = cycles - self._last_cycles
            if advanced > 0:
                self.cycles_total.inc(advanced, **self._labels)
            if elapsed > 0 and advanced > 0:
                self.cycles_per_second.set(advanced / elapsed,
                                           **self._labels)
        self._last_time = now
        self._last_cycles = cycles
        self._drain_events(core.event_log)

    def _drain_events(self, log) -> None:
        """Consume events appended since the last sample.

        The log is cleared on program load and rewound by checkpoint
        restore, and may evict from the front when ring-bounded, so
        progress is tracked as an absolute position (``dropped`` +
        length) and reset whenever the log went backwards.
        """
        dropped = getattr(log, "dropped", 0)
        total = dropped + len(log)
        if total < self._seen_events:
            self._seen_events = 0
            self._recovery_start = None
        self.events_dropped.set(dropped, **self._labels)
        fresh = total - self._seen_events
        if fresh <= 0:
            return
        events = list(log)[-min(fresh, len(log)):]
        self._seen_events = total
        for event in events:
            kind = getattr(event.kind, "value", str(event.kind))
            if kind == "error-detected":
                self.checker_fires.inc(unit=_unit_of_checker(event.detail),
                                       **self._labels)
            elif kind == "recovery-start":
                self._recovery_start = event.cycle
                self._recovery_unit = _unit_of_checker(event.detail)
            elif kind == "recovery-done" and self._recovery_start is not None:
                duration = event.cycle - self._recovery_start
                if duration > 0:
                    self.recovery_cycles.inc(duration,
                                             unit=self._recovery_unit,
                                             **self._labels)
                self._recovery_start = None
