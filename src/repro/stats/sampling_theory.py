"""Survey-sampling estimators for latch populations.

The latch population is finite and structured (units of very different
sizes); these estimators extrapolate campaign measurements to the whole
design, which is what Figure 4's unit-contribution normalisation does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def finite_population_correction(n: int, population: int) -> float:
    """FPC factor sqrt((N-n)/(N-1)) applied to without-replacement samples."""
    if population <= 1 or n < 0 or n > population:
        raise ValueError("need 0 <= n <= N and N > 1")
    return math.sqrt((population - n) / (population - 1))


@dataclass(frozen=True)
class Stratum:
    """One stratum: its population size and a measured proportion."""

    name: str
    population: int
    sample_size: int
    proportion: float


def stratified_estimate(strata: list[Stratum]) -> float:
    """Population-weighted proportion across strata.

    This is how per-unit campaign rates combine into a whole-core rate:
    each unit's measured rate weighted by its share of the latch bits.
    """
    total = sum(stratum.population for stratum in strata)
    if total == 0:
        raise ValueError("empty population")
    return sum(s.population * s.proportion for s in strata) / total


def stratum_contributions(strata: list[Stratum]) -> dict[str, float]:
    """Each stratum's share of the total expected event count (Figure 4).

    ``contribution[u] = N_u * p_u / sum_v N_v * p_v`` — the number of
    latches in each unit taken into account, as the paper describes.
    """
    weights = {s.name: s.population * s.proportion for s in strata}
    total = sum(weights.values())
    if total == 0:
        return {name: 0.0 for name in weights}
    return {name: weight / total for name, weight in weights.items()}
