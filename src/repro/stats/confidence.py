"""Confidence intervals and sample-size planning for outcome proportions.

Campaign results are category counts out of n injections; these helpers
quantify the estimation error that §2.1 of the paper studies empirically.
"""

from __future__ import annotations

import math

_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def _z_for(confidence: float) -> float:
    try:
        return _Z[round(confidence, 2)]
    except KeyError:
        raise ValueError(f"unsupported confidence level {confidence}; "
                         f"use one of {sorted(_Z)}") from None


def normal_interval(successes: int, n: int,
                    confidence: float = 0.95) -> tuple[float, float]:
    """Wald (normal-approximation) interval for a proportion."""
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 <= successes <= n:
        raise ValueError("successes must be within [0, n]")
    z = _z_for(confidence)
    p = successes / n
    half = z * math.sqrt(p * (1 - p) / n)
    return max(0.0, p - half), min(1.0, p + half)


def wilson_interval(successes: int, n: int,
                    confidence: float = 0.95) -> tuple[float, float]:
    """Wilson score interval — well-behaved for the rare categories
    (checkstop rates below 1%) where the Wald interval collapses."""
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 <= successes <= n:
        raise ValueError("successes must be within [0, n]")
    z = _z_for(confidence)
    p = successes / n
    z2 = z * z
    denom = 1 + z2 / n
    centre = (p + z2 / (2 * n)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / n + z2 / (4 * n * n))
    return max(0.0, centre - half), min(1.0, centre + half)


def wilson_width(successes: int, n: int,
                 confidence: float = 0.95) -> float:
    """Full width (high - low) of the Wilson interval.

    The convergence criterion for a live campaign: a category has
    converged once its interval is narrower than the analyst's target.
    """
    low, high = wilson_interval(successes, n, confidence=confidence)
    return high - low


def required_trials_for_width(successes: int, n: int, target_width: float,
                              confidence: float = 0.95) -> int:
    """Trials needed before the Wilson interval narrows to
    ``target_width``, holding the observed proportion fixed.

    Inverts :func:`wilson_width` by bisection — the width is monotone
    decreasing in the trial count for a fixed proportion, so the search
    is exact.  Returns the smallest total trial count (not the number of
    *additional* trials); returns ``n`` when the interval is already
    narrow enough.  Capped at 10**12 — a width target unreachable below
    that is a planning error, not a campaign size.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 < target_width < 1:
        raise ValueError("target_width must be in (0, 1)")
    p = successes / n

    def width_at(m: int) -> float:
        return wilson_width(round(p * m), m, confidence=confidence)

    if width_at(n) <= target_width:
        return n
    low, high = n, n
    cap = 10 ** 12
    while width_at(high) > target_width:
        if high >= cap:
            return cap
        low, high = high, min(cap, high * 2)
    while low + 1 < high:
        mid = (low + high) // 2
        if width_at(mid) <= target_width:
            high = mid
        else:
            low = mid
    return high


def required_sample_size(p: float, relative_error: float,
                         confidence: float = 0.95) -> int:
    """Flips needed to estimate a category of true proportion ``p`` to
    within ``relative_error`` of its value — the planning question behind
    the paper's choice of ~10k flips."""
    if not 0 < p < 1:
        raise ValueError("p must be in (0, 1)")
    if relative_error <= 0:
        raise ValueError("relative_error must be positive")
    z = _z_for(confidence)
    return math.ceil((z * z * (1 - p)) / (relative_error * relative_error * p))


def binomial_stdev_over_mean(p: float, n: int) -> float:
    """Analytic Figure 2 curve: for a category with probability ``p``,
    counts are Binomial(n, p) so stdev/mean = sqrt((1-p)/(n*p))."""
    if not 0 < p <= 1:
        raise ValueError("p must be in (0, 1]")
    if n <= 0:
        raise ValueError("n must be positive")
    return math.sqrt((1 - p) / (n * p))
