"""Statistics substrate: descriptive stats, proportion confidence
intervals, sample-size planning, and survey-sampling estimators."""

from repro.stats.confidence import (
    binomial_stdev_over_mean,
    normal_interval,
    required_sample_size,
    required_trials_for_width,
    wilson_interval,
    wilson_width,
)
from repro.stats.descriptive import mean_std, stdev_fraction_of_mean
from repro.stats.sampling_theory import (
    Stratum,
    finite_population_correction,
    stratified_estimate,
    stratum_contributions,
)

__all__ = [
    "Stratum",
    "binomial_stdev_over_mean",
    "finite_population_correction",
    "mean_std",
    "normal_interval",
    "required_sample_size",
    "required_trials_for_width",
    "stdev_fraction_of_mean",
    "stratified_estimate",
    "stratum_contributions",
    "wilson_interval",
    "wilson_width",
]
