"""Basic descriptive statistics used across the SFI analyses."""

from __future__ import annotations

import math


def mean_std(values: list[float] | list[int]) -> tuple[float, float]:
    """Sample mean and (population) standard deviation.

    The paper computes "the mean and the standard deviation of this
    population" over the repeated random samples; with 10 samples the
    population/sample distinction is immaterial for the trend, and the
    population form keeps single-sample inputs well-defined.
    """
    if not values:
        raise ValueError("mean_std of empty sequence")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    return mean, math.sqrt(variance)


def stdev_fraction_of_mean(values: list[float] | list[int]) -> float:
    """Standard deviation as a fraction of the mean (Figure 2's y-axis).

    Zero-mean inputs return 0 (an all-zero category has no spread)."""
    mean, std = mean_std(values)
    return std / mean if mean else 0.0
