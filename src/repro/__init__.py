"""Statistical Fault Injection (SFI) — reproduction of the DSN 2008 paper.

A full-system reproduction: a latch-accurate POWER6-class core model with
hardware checkers and checkpoint-retry recovery, an Awan-style emulation
substrate, a pseudo-random self-checking AVP workload, the SFI campaign
framework itself, a proton-beam calibration simulator, and the statistics
and analysis layers that regenerate every table and figure in the paper.

Quickstart::

    from repro import SfiExperiment, CampaignConfig

    experiment = SfiExperiment(CampaignConfig(suite_size=4))
    result = experiment.run_random_campaign(1000, seed=1)
    print(result.summary())
"""

from repro.avp import AvpGenerator, AvpTestcase, MixWeights, make_suite
from repro.beam import BeamExperiment, FluxModel
from repro.cpu import Checker, CoreParams, Power6Core, UNIT_NAMES
from repro.emulator import AwanEmulator, CommHost, LatchMap, SoftwareSimulator
from repro.rtl import FaultSite, InjectionMode, Latch, LatchKind
from repro.sfi import (
    CampaignConfig,
    CampaignProgress,
    CampaignResult,
    CampaignSupervisor,
    ClassifyOptions,
    Outcome,
    SfiExperiment,
    per_kind_campaigns,
    per_ring_campaigns,
    per_unit_campaigns,
    run_supervised_campaign,
    sample_size_experiment,
)

__version__ = "1.0.0"

__all__ = [
    "AvpGenerator",
    "AvpTestcase",
    "AwanEmulator",
    "BeamExperiment",
    "CampaignConfig",
    "CampaignProgress",
    "CampaignResult",
    "CampaignSupervisor",
    "Checker",
    "ClassifyOptions",
    "CommHost",
    "CoreParams",
    "FaultSite",
    "FluxModel",
    "InjectionMode",
    "Latch",
    "LatchKind",
    "LatchMap",
    "MixWeights",
    "Outcome",
    "Power6Core",
    "SfiExperiment",
    "SoftwareSimulator",
    "UNIT_NAMES",
    "__version__",
    "make_suite",
    "per_kind_campaigns",
    "per_ring_campaigns",
    "per_unit_campaigns",
    "run_supervised_campaign",
    "sample_size_experiment",
]
