"""Suppression baseline: the ratchet that keeps findings at zero.

The baseline is a checked-in JSONL file of *accepted* findings.  A
finding matching a baseline entry is suppressed; a finding not in the
baseline fails the gate.  The file ships empty (every pre-existing
violation was fixed), so any entry added later is a visible, reviewable
decision — and ``--strict`` additionally fails on *stale* entries whose
violation no longer exists, so the baseline can only shrink.
"""

from __future__ import annotations

import json

from repro.lint.findings import Finding

BaselineKey = tuple[str, str, str]


def load_baseline(path: str) -> set[BaselineKey]:
    """Read baseline keys from a JSONL file.

    Blank lines and ``#`` comment lines are ignored so the checked-in
    file can carry a header explaining itself.  A malformed line raises:
    a silently short-read baseline would un-suppress (or worse, a
    permissive parser could over-suppress) without anyone noticing.
    """
    keys: set[BaselineKey] = set()
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            try:
                entry = json.loads(line)
                keys.add((entry["rule"], entry["path"], entry["message"]))
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed baseline entry: {exc}"
                ) from exc
    return keys


def write_baseline(findings: list[Finding], path: str) -> None:
    """Accept the current findings as the new baseline."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# repro-sfi lint suppression baseline (JSONL).\n")
        handle.write("# Entries match findings by (rule, path, message); "
                     "regenerate with `repro-sfi lint --write-baseline`.\n")
        for finding in sorted(findings, key=lambda f: f.key()):
            rule, fpath, message = finding.key()
            handle.write(json.dumps(
                {"rule": rule, "path": fpath, "message": message},
                sort_keys=True) + "\n")


def apply_baseline(
    findings: list[Finding], baseline: set[BaselineKey],
) -> tuple[list[Finding], list[Finding], set[BaselineKey]]:
    """Split findings into (new, suppressed) and report stale keys.

    ``stale`` is the set of baseline entries that matched nothing — dead
    suppressions that ``--strict`` refuses to carry.
    """
    new: list[Finding] = []
    suppressed: list[Finding] = []
    matched: set[BaselineKey] = set()
    for finding in findings:
        key = finding.key()
        if key in baseline:
            matched.add(key)
            suppressed.append(finding)
        else:
            new.append(finding)
    return new, suppressed, baseline - matched
