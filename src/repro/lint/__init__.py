"""Domain-aware static analysis for the SFI reproduction.

The paper's conclusions are *statistical*: they hold only if (a) every
injection is exactly reproducible — no unseeded randomness or wall-clock
leaking into simulation state — and (b) the sampled fault space equals
the model's true latch population — no latch silently missing from the
netlist, no parity domain without a checker.  ``repro.lint`` verifies
both properties before a campaign spends cycles on them:

* AST lint passes (:mod:`repro.lint.rules_ast`) enforce determinism,
  worker-payload safety and naming conventions over the source tree,
  guided by a per-path policy table (:mod:`repro.lint.policy`).
* The fault-space audit (:mod:`repro.lint.audit`) instantiates the live
  core model and cross-checks it against the sampling view and the
  latch budgets declared in ``DESIGN.md`` — any gap is a
  statistical-bias finding, not a style nit.

Findings are structured records rendered as text or JSONL, matched
against a checked-in suppression baseline, and gated in CI via the
``repro-sfi lint`` subcommand (see :mod:`repro.lint.engine`).
"""

from __future__ import annotations

from repro.lint.audit import audit_fault_space, parse_design_budgets
from repro.lint.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import LintReport, lint_tree, run_lint
from repro.lint.findings import (
    Finding,
    Severity,
    render_jsonl,
    render_text,
    write_jsonl,
)
from repro.lint.policy import DEFAULT_POLICY, PathPolicy, RuleGroup
from repro.lint.rules_ast import lint_source
from repro.lint.structural import lint_structural

__all__ = [
    "DEFAULT_POLICY",
    "Finding",
    "LintReport",
    "PathPolicy",
    "RuleGroup",
    "Severity",
    "apply_baseline",
    "audit_fault_space",
    "lint_source",
    "lint_tree",
    "load_baseline",
    "parse_design_budgets",
    "render_jsonl",
    "render_text",
    "run_lint",
    "write_baseline",
    "write_jsonl",
]
