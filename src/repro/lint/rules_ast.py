"""AST lint passes: determinism, worker safety, naming.

These are *domain* rules, not general style.  The campaign engine
guarantees bit-identical results for any worker count and across
kill/resume (PR 1); that guarantee is only as strong as the absence of
hidden entropy in the simulation packages.  Each rule names the exact
leak it closes:

* ``REPRO-D01`` unseeded randomness — module-level ``random.*`` draws
  and ``random.Random()`` with no seed.  Every drawing function must
  take an explicit ``random.Random`` (or derive one from the campaign
  seed), or two runs of the same campaign diverge.
* ``REPRO-D02`` wall clock — ``time.time()`` / ``datetime.now()`` and
  friends inside simulation code.  Monotonic/perf counters are allowed:
  they feed telemetry, never simulated state.
* ``REPRO-D03`` ``id()`` escape — CPython addresses vary run to run;
  an ``id()`` that reaches a string, a seed, arithmetic or a return
  value is nondeterminism (identity-map keying ``d[id(x)]`` is fine).
* ``REPRO-D04`` unordered ``set`` iteration — string hashing is
  randomized per process (PYTHONHASHSEED), so iterating a set into
  sampled or serialized output reorders between runs unless sorted.
* ``REPRO-D05`` generated-code determinism — source produced by a code
  generator (the bit-plane backend's plane kernels) must itself pass
  the determinism rules before being ``exec``'d: unseeded randomness
  or a wall-clock read in generated code would break bit-identical
  waves exactly like hand-written code, with no file on disk for the
  tree lint to catch.  Checked at generation time via
  :func:`lint_generated`, which re-tags any determinism finding as
  REPRO-D05 (the original rule stays in the message).
* ``REPRO-W01`` worker payload — lambdas, closures and bound methods
  handed to a process pool fail to pickle under the ``spawn`` start
  method; payloads must be module-level functions.
* ``REPRO-N01`` metric naming — registry series must follow the
  Prometheus-flavoured convention the exporters and CI smoke assert.
* ``REPRO-N02`` event naming — event enums serialize their values into
  journals and trace logs; kebab-case is the wire format.
* ``REPRO-S01`` schema drift — a module that declares ``SCHEMA_DDL``
  must keep ``SCHEMA_FINGERPRINT`` equal to the digest of
  ``(SCHEMA_VERSION, SCHEMA_DDL)``.  Editing warehouse DDL without
  refreshing both is how two builds end up writing incompatible stores
  under the same version number.

The analysis is syntactic and import-alias aware (``import random as
r`` does not evade it) but performs no cross-module data-flow; the
policy table (:mod:`repro.lint.policy`) and inline
``# repro-lint: allow[RULE]`` markers handle the deliberate exceptions.
"""

from __future__ import annotations

import ast
import hashlib
import re

from repro.lint.findings import Finding, Severity
from repro.lint.policy import ALL_GROUPS, RuleGroup

# --- REPRO-D01 ---------------------------------------------------------
#: Module-level drawing functions on the shared, implicitly-seeded
#: singleton (calling any of these makes results depend on import order
#: and process history).
_RANDOM_DRAWS = frozenset({
    "random", "randrange", "randint", "randbytes", "getrandbits",
    "choice", "choices", "sample", "shuffle", "uniform", "triangular",
    "gauss", "normalvariate", "lognormvariate", "expovariate",
    "betavariate", "gammavariate", "paretovariate", "vonmisesvariate",
    "weibullvariate", "binomialvariate", "seed", "setstate",
})

# --- REPRO-D02 ---------------------------------------------------------
#: Wall-clock reads.  perf_counter/monotonic/process_time/sleep are
#: deliberately NOT here: they are telemetry clocks whose values never
#: enter simulated state.
_TIME_BANNED = frozenset({
    "time", "time_ns", "localtime", "gmtime", "ctime", "asctime",
    "strftime", "mktime",
})
_DATETIME_BANNED = frozenset({"now", "today", "utcnow"})
_DATETIME_CLASSES = frozenset({"datetime", "date"})

# --- REPRO-W01 ---------------------------------------------------------
_POOL_METHODS = frozenset({
    "apply", "apply_async", "map_async", "imap", "imap_unordered",
    "starmap", "starmap_async", "submit",
})
_POOLISH_RECEIVERS = ("pool", "executor")
#: Annotation heads that survive ``json.dumps`` untouched.  Transport
#: message dataclasses (``*Message``) cross process boundaries as JSON
#: frames, so a field typed as a set, bytes or a domain object would
#: break the wire the first time it was populated.
_JSON_SAFE_ANNOTATIONS = frozenset({
    "str", "int", "float", "bool", "None", "dict", "list", "tuple",
    "Dict", "List", "Tuple", "Optional", "Union", "Any",
})

# --- REPRO-N01 ---------------------------------------------------------
_METRIC_CTORS = frozenset({"counter", "gauge", "histogram"})
_METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")
_METRIC_PREFIXES = ("sfi_", "core_", "repro_")
_HISTOGRAM_SUFFIXES = ("_seconds", "_bytes", "_cycles", "_bits", "_lanes")
#: Warehouse metrics get a narrower namespace so dashboards can select
#: the ingest pipeline with one prefix match.
_WAREHOUSE_METRIC_PREFIXES = ("sfi_ingest_", "sfi_warehouse_")
#: Same idea for the fleet-telemetry modules: the coordinator's own
#: accounting and the convergence gauges each own a prefix, so a
#: monitor can split worker-streamed series from fold-side series.
_PATH_METRIC_PREFIXES = {
    "obs/fleet.py": ("sfi_fleet_",),
    "obs/convergence.py": ("sfi_convergence_",),
}

# --- REPRO-N02 ---------------------------------------------------------
_EVENT_VALUE_RE = re.compile(r"^[a-z][a-z0-9-]*$")
# Enum classes whose values are serialized wire format: machine events,
# the provenance vocabulary (masking causes, taint node kinds), and the
# fleet span phases stored in .spans sidecars and the warehouse.
_SERIALIZED_ENUM_MARKERS = ("Event", "Taint", "Masking", "Phase")

# --- REPRO-S01 ---------------------------------------------------------
_SCHEMA_CONSTANTS = ("SCHEMA_VERSION", "SCHEMA_DDL", "SCHEMA_FINGERPRINT")


def _schema_fingerprint(version: object, ddl: tuple) -> str:
    """Mirror of ``repro.warehouse.schema.compute_fingerprint``.

    Duplicated on purpose: the lint pass must have no import edge into
    the code it audits (a warehouse module broken enough to need the
    rule must not be able to break the rule).
    """
    blob = "\n".join([str(version), *(" ".join(s.split()) for s in ddl)])
    return "sha256:" + hashlib.sha256(blob.encode()).hexdigest()[:16]


_ALLOW_RE = re.compile(r"#\s*repro-lint:\s*allow\[([A-Z0-9*,\- ]+)\]")


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in {"set", "frozenset"})


def _terminal_name(node: ast.AST) -> str:
    """Last identifier of a Name/Attribute chain (for receiver sniffs)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


class _FileChecker(ast.NodeVisitor):
    """One pass over one parsed module."""

    def __init__(self, relpath: str, groups: frozenset[RuleGroup]) -> None:
        self.relpath = relpath
        self.groups = groups
        self.findings: list[Finding] = []
        # Alias maps populated from import statements anywhere in the
        # file (function-local imports count: the draw they enable is
        # just as nondeterministic).
        self.random_aliases: set[str] = set()
        self.time_aliases: set[str] = set()
        self.datetime_aliases: set[str] = set()
        self.random_from: dict[str, str] = {}    # local name -> original
        self.time_from: set[str] = set()
        self.datetime_class_names: set[str] = set()
        self.random_ctor_names: set[str] = set()
        # Nested-function tracking for REPRO-W01 closure payloads.
        self._function_stack: list[set[str]] = []
        self._parents: dict[ast.AST, ast.AST] = {}

    # -- plumbing ------------------------------------------------------

    def check(self, tree: ast.Module) -> list[Finding]:
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self._parents[child] = node
        self._collect_imports(tree)
        self.visit(tree)
        if RuleGroup.SCHEMA in self.groups:
            self._check_schema_constants(tree)
        return self.findings

    def _report(self, rule: str, severity: Severity, category: str,
                node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            rule=rule, severity=severity, category=category,
            path=self.relpath, line=getattr(node, "lineno", 0),
            message=message))

    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        self.random_aliases.add(local)
                    elif alias.name == "time":
                        self.time_aliases.add(local)
                    elif alias.name == "datetime":
                        self.datetime_aliases.add(local)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    for alias in node.names:
                        local = alias.asname or alias.name
                        if alias.name == "Random":
                            self.random_ctor_names.add(local)
                        elif alias.name in _RANDOM_DRAWS | {"SystemRandom"}:
                            self.random_from[local] = alias.name
                elif node.module == "time":
                    for alias in node.names:
                        if alias.name in _TIME_BANNED:
                            self.time_from.add(alias.asname or alias.name)
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in _DATETIME_CLASSES:
                            self.datetime_class_names.add(
                                alias.asname or alias.name)

    # -- scope tracking (REPRO-W01 closures) ---------------------------

    def _visit_function(self, node) -> None:
        if self._function_stack:
            self._function_stack[-1].add(node.name)
        self._function_stack.append(set())
        self.generic_visit(node)
        self._function_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _is_enclosing_local_def(self, name: str) -> bool:
        return any(name in scope for scope in self._function_stack[:-1]
                   ) or (bool(self._function_stack)
                         and name in self._function_stack[-1])

    # -- determinism ---------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if RuleGroup.DETERMINISM in self.groups:
            self._check_random_call(node)
            self._check_clock_call(node)
            self._check_id_call(node)
            self._check_set_consumer(node)
        if RuleGroup.WORKER_SAFETY in self.groups:
            self._check_worker_payload(node)
        if RuleGroup.NAMING in self.groups:
            self._check_metric_name(node)
        self.generic_visit(node)

    def _check_random_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.value.id in self.random_aliases:
                if func.attr == "Random":
                    if not node.args and not node.keywords:
                        self._report(
                            "REPRO-D01", Severity.ERROR, "determinism", node,
                            "random.Random() with no seed is implicitly "
                            "seeded from the OS; pass an explicit seed")
                elif func.attr == "SystemRandom":
                    self._report(
                        "REPRO-D01", Severity.ERROR, "determinism", node,
                        "random.SystemRandom is OS entropy and can never "
                        "be replayed; use a seeded random.Random")
                elif func.attr in _RANDOM_DRAWS:
                    self._report(
                        "REPRO-D01", Severity.ERROR, "determinism", node,
                        f"random.{func.attr}() draws from the shared "
                        "module singleton; take an explicit "
                        "random.Random instead")
        elif isinstance(func, ast.Name):
            if func.id in self.random_from:
                original = self.random_from[func.id]
                self._report(
                    "REPRO-D01", Severity.ERROR, "determinism", node,
                    f"random.{original}() draws from the shared module "
                    "singleton; take an explicit random.Random instead")
            elif (func.id in self.random_ctor_names
                    and not node.args and not node.keywords):
                self._report(
                    "REPRO-D01", Severity.ERROR, "determinism", node,
                    "Random() with no seed is implicitly seeded from "
                    "the OS; pass an explicit seed")

    def _check_clock_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if (func.value.id in self.time_aliases
                    and func.attr in _TIME_BANNED):
                self._report(
                    "REPRO-D02", Severity.ERROR, "determinism", node,
                    f"time.{func.attr}() is wall clock; simulation code "
                    "must be time-independent (telemetry may use "
                    "perf_counter/monotonic via repro.obs)")
            elif (func.value.id in self.datetime_class_names
                    and func.attr in _DATETIME_BANNED):
                self._report(
                    "REPRO-D02", Severity.ERROR, "determinism", node,
                    f"datetime.{func.attr}() is wall clock; simulation "
                    "code must be time-independent")
        elif isinstance(func, ast.Attribute):
            # datetime.datetime.now() / dt.date.today() chains.
            inner = func.value
            if (func.attr in _DATETIME_BANNED
                    and isinstance(inner, ast.Attribute)
                    and inner.attr in _DATETIME_CLASSES
                    and isinstance(inner.value, ast.Name)
                    and inner.value.id in self.datetime_aliases):
                self._report(
                    "REPRO-D02", Severity.ERROR, "determinism", node,
                    f"datetime.{inner.attr}.{func.attr}() is wall clock; "
                    "simulation code must be time-independent")
        elif isinstance(func, ast.Name) and func.id in self.time_from:
            self._report(
                "REPRO-D02", Severity.ERROR, "determinism", node,
                f"{func.id}() (from time) is wall clock; simulation "
                "code must be time-independent")

    def _check_id_call(self, node: ast.Call) -> None:
        if not (isinstance(node.func, ast.Name) and node.func.id == "id"
                and len(node.args) == 1 and not node.keywords):
            return
        parent = self._parents.get(node)
        # Identity-map keying is the legitimate idiom: d[id(x)],
        # d.get(id(x)), membership and equality tests.
        if isinstance(parent, (ast.Subscript, ast.Compare)):
            return
        if isinstance(parent, ast.Call) and parent is not node:
            callee = _terminal_name(parent.func)
            if callee in {"get", "pop", "setdefault", "add", "discard",
                          "remove"}:
                return
            self._report(
                "REPRO-D03", Severity.ERROR, "determinism", node,
                "id() is a per-run CPython address; passing it onward "
                "(formatting, seeding, serialization) is nondeterministic "
                "— key an identity dict instead")
            return
        if isinstance(parent, (ast.FormattedValue, ast.JoinedStr, ast.BinOp,
                               ast.Return, ast.keyword)):
            self._report(
                "REPRO-D03", Severity.ERROR, "determinism", node,
                "id() is a per-run CPython address and must not escape "
                "into strings, arithmetic or return values")

    def _check_set_consumer(self, node: ast.Call) -> None:
        if (isinstance(node.func, ast.Name)
                and node.func.id in {"list", "tuple", "enumerate", "iter"}
                and node.args and _is_set_expr(node.args[0])):
            self._report(
                "REPRO-D04", Severity.ERROR, "determinism", node,
                f"{node.func.id}() over a set materializes hash order, "
                "which varies per process (PYTHONHASHSEED); wrap the set "
                "in sorted()")

    def visit_For(self, node: ast.For) -> None:
        if RuleGroup.DETERMINISM in self.groups and _is_set_expr(node.iter):
            self._report(
                "REPRO-D04", Severity.ERROR, "determinism", node.iter,
                "iterating a set uses hash order, which varies per "
                "process (PYTHONHASHSEED); wrap the set in sorted()")
        self.generic_visit(node)

    def _visit_comprehension_holder(self, node) -> None:
        if RuleGroup.DETERMINISM in self.groups:
            for comp in node.generators:
                if _is_set_expr(comp.iter):
                    self._report(
                        "REPRO-D04", Severity.ERROR, "determinism",
                        comp.iter,
                        "comprehension over a set uses hash order, which "
                        "varies per process (PYTHONHASHSEED); wrap the "
                        "set in sorted()")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension_holder
    visit_SetComp = _visit_comprehension_holder
    visit_DictComp = _visit_comprehension_holder
    visit_GeneratorExp = _visit_comprehension_holder

    # -- worker safety -------------------------------------------------

    def _payload_problem(self, payload: ast.AST) -> str | None:
        if isinstance(payload, ast.Lambda):
            return "a lambda"
        if (isinstance(payload, ast.Attribute)
                and isinstance(payload.value, ast.Name)
                and payload.value.id == "self"):
            return f"the bound method self.{payload.attr}"
        if (isinstance(payload, ast.Name)
                and self._is_enclosing_local_def(payload.id)):
            return f"the nested function {payload.id}()"
        return None

    def _check_worker_payload(self, node: ast.Call) -> None:
        func = node.func
        payload: ast.AST | None = None
        if _terminal_name(func) == "Process":
            for kw in node.keywords:
                if kw.arg == "target":
                    payload = kw.value
        elif isinstance(func, ast.Attribute):
            receiver = _terminal_name(func.value).lower()
            poolish = any(hint in receiver for hint in _POOLISH_RECEIVERS)
            if func.attr in _POOL_METHODS or (func.attr == "map" and poolish):
                if node.args:
                    payload = node.args[0]
        if payload is None:
            return
        problem = self._payload_problem(payload)
        if problem is not None:
            self._report(
                "REPRO-W01", Severity.ERROR, "worker-safety", node,
                f"supervisor payload is {problem}, which cannot pickle "
                "across the spawn start method; use a module-level "
                "function")

    # -- naming --------------------------------------------------------

    def _check_metric_name(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in _METRIC_CTORS
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            return
        name = node.args[0].value
        kind = func.attr
        problems: list[str] = []
        if not _METRIC_NAME_RE.match(name):
            problems.append("must match [a-z][a-z0-9_]*")
        if not name.startswith(_METRIC_PREFIXES):
            problems.append("must carry a sfi_/core_/repro_ prefix")
        if kind == "counter" and not name.endswith("_total"):
            problems.append("counters must end in _total")
        if kind == "histogram" and not name.endswith(_HISTOGRAM_SUFFIXES):
            problems.append("histograms must end in a unit suffix "
                            "(_seconds/_bytes/_cycles/_bits/_lanes)")
        if (self.relpath.startswith("warehouse/")
                and not name.startswith(_WAREHOUSE_METRIC_PREFIXES)):
            problems.append("warehouse metrics must carry a "
                            "sfi_ingest_/sfi_warehouse_ prefix")
        scoped = _PATH_METRIC_PREFIXES.get(self.relpath)
        if scoped and not name.startswith(scoped):
            problems.append(f"metrics in {self.relpath} must carry a "
                            + "/".join(scoped) + " prefix")
        if problems:
            self._report(
                "REPRO-N01", Severity.WARNING, "naming", node,
                f"metric {kind} name {name!r}: " + "; ".join(problems))

    # -- schema drift --------------------------------------------------

    def _check_schema_constants(self, tree: ast.Module) -> None:
        """REPRO-S01: a module declaring ``SCHEMA_DDL`` must keep
        ``SCHEMA_FINGERPRINT`` equal to the digest of
        ``(SCHEMA_VERSION, SCHEMA_DDL)``."""
        found: dict[str, tuple[ast.stmt, object]] = {}
        for stmt in tree.body:
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)):
                continue
            name = stmt.targets[0].id
            if name not in _SCHEMA_CONSTANTS:
                continue
            try:
                found[name] = (stmt, ast.literal_eval(stmt.value))
            except (ValueError, TypeError, SyntaxError):
                self._report(
                    "REPRO-S01", Severity.ERROR, "schema", stmt,
                    f"{name} must be a pure literal so the schema "
                    "fingerprint can be recomputed without importing "
                    "the module")
        if "SCHEMA_DDL" not in found:
            return
        missing = [name for name in _SCHEMA_CONSTANTS if name not in found]
        if missing:
            self._report(
                "REPRO-S01", Severity.ERROR, "schema", found["SCHEMA_DDL"][0],
                "module declares SCHEMA_DDL but not "
                + "/".join(missing)
                + "; versioned stores need all three constants")
            return
        node, declared = found["SCHEMA_FINGERPRINT"]
        version = found["SCHEMA_VERSION"][1]
        ddl = found["SCHEMA_DDL"][1]
        expected = _schema_fingerprint(version, ddl)
        if declared != expected:
            self._report(
                "REPRO-S01", Severity.ERROR, "schema", node,
                f"SCHEMA_FINGERPRINT {declared!r} does not match the "
                f"declared DDL (expected {expected!r}); a DDL change "
                "must bump SCHEMA_VERSION and refresh the fingerprint")

    # -- worker safety: transport message fields -----------------------

    def _annotation_json_safe(self, annotation: ast.AST) -> bool:
        """Conservatively true when every reachable annotation head is a
        JSON-native type.  ``X | None`` unions, ``list[int]`` subscripts
        and quoted annotations are unwrapped; anything else (set,
        frozenset, bytes, domain classes) is flagged."""
        if isinstance(annotation, ast.Constant):
            if annotation.value is None:
                return True
            if isinstance(annotation.value, str):
                try:
                    parsed = ast.parse(annotation.value, mode="eval").body
                except SyntaxError:
                    return True  # unparseable forward ref: no claim
                return self._annotation_json_safe(parsed)
            return False
        if isinstance(annotation, ast.Name):
            return annotation.id in _JSON_SAFE_ANNOTATIONS
        if isinstance(annotation, ast.Attribute):
            return annotation.attr in _JSON_SAFE_ANNOTATIONS
        if isinstance(annotation, ast.Subscript):
            if not self._annotation_json_safe(annotation.value):
                return False
            inner = annotation.slice
            parts = inner.elts if isinstance(inner, ast.Tuple) else [inner]
            return all(self._annotation_json_safe(part) for part in parts)
        if isinstance(annotation, ast.BinOp) \
                and isinstance(annotation.op, ast.BitOr):
            return (self._annotation_json_safe(annotation.left)
                    and self._annotation_json_safe(annotation.right))
        return False

    def _check_message_fields(self, node: ast.ClassDef) -> None:
        is_message = node.name.endswith("Message") or any(
            _terminal_name(base).endswith("Message") for base in node.bases)
        if not is_message:
            return
        decorated = any(
            _terminal_name(dec.func if isinstance(dec, ast.Call) else dec)
            == "dataclass" for dec in node.decorator_list)
        if not decorated:
            return
        for stmt in node.body:
            if not (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                continue
            if stmt.target.id.isupper():
                continue  # class-level constants (TYPE) are not fields
            if not self._annotation_json_safe(stmt.annotation):
                rendered = ast.unparse(stmt.annotation)
                self._report(
                    "REPRO-W01", Severity.ERROR, "worker-safety", stmt,
                    f"transport message field {node.name}."
                    f"{stmt.target.id}: {rendered} is not JSON-"
                    "serializable; message dataclasses cross the wire "
                    "as JSON frames — use scalars, dicts or lists")

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if RuleGroup.WORKER_SAFETY in self.groups:
            self._check_message_fields(node)
        if RuleGroup.NAMING in self.groups and any(
                marker in node.name for marker in _SERIALIZED_ENUM_MARKERS):
            enum_based = any(
                _terminal_name(base).endswith("Enum") for base in node.bases)
            if enum_based:
                for stmt in node.body:
                    if (isinstance(stmt, ast.Assign)
                            and isinstance(stmt.value, ast.Constant)
                            and isinstance(stmt.value.value, str)
                            and not _EVENT_VALUE_RE.match(stmt.value.value)):
                        self._report(
                            "REPRO-N02", Severity.WARNING, "naming", stmt,
                            f"event value {stmt.value.value!r} in "
                            f"{node.name} is serialized into journals and "
                            "trace logs; use kebab-case")
        self.generic_visit(node)


def _inline_allows(source: str) -> dict[int, set[str]]:
    """Line -> rule ids suppressed by ``# repro-lint: allow[...]``."""
    allows: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match:
            rules = {part.strip() for part in match.group(1).split(",")}
            allows[lineno] = rules
    return allows


def lint_source(source: str, relpath: str,
                groups: frozenset[RuleGroup] = ALL_GROUPS,
                ) -> list[Finding]:
    """Run every enabled AST rule over one module's source text."""
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        return [Finding(
            rule="REPRO-E00", severity=Severity.ERROR, category="parse",
            path=relpath, line=exc.lineno or 0,
            message=f"syntax error: {exc.msg}")]
    findings = _FileChecker(relpath, groups).check(tree)
    allows = _inline_allows(source)
    if not allows:
        return findings
    kept = []
    for finding in findings:
        allowed = allows.get(finding.line, set())
        if finding.rule in allowed or "*" in allowed:
            continue
        kept.append(finding)
    return kept


def lint_generated(source: str, origin: str) -> list[Finding]:
    """REPRO-D05: determinism-lint *generated* source before exec.

    Runs the determinism rule family over code a generator produced
    (``origin`` is a virtual path naming the generator, e.g.
    ``emulator/bitplane-gen``) and re-tags every finding as REPRO-D05,
    keeping the underlying rule in the message.  Naming/worker/schema
    rules are deliberately not applied: generated kernels are
    straight-line arithmetic with machine-chosen names and never touch
    pools or schemas.  Callers refuse to ``exec`` on any finding.
    """
    findings = lint_source(source, origin,
                           groups=frozenset({RuleGroup.DETERMINISM}))
    return [Finding(rule="REPRO-D05", severity=Severity.ERROR,
                    category="determinism", path=origin, line=finding.line,
                    message=f"generated code violates {finding.rule}: "
                            f"{finding.message}")
            for finding in findings]
