"""Structured lint findings and their text / JSONL renderings.

Every rule — AST pass or fault-space audit — reports the same record
shape, so one baseline, one renderer and one CI gate cover both
engines.  ``path`` is a source file (``src/repro/cpu/core.py``) for AST
findings and a latch path (``core0.FXU.ex1.res``) for audit findings;
``line`` is 0 when a finding has no meaningful source line.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass


class Severity(enum.Enum):
    """How a finding is treated by the gate.

    ``ERROR`` findings fail ``repro-sfi lint``; ``WARNING`` findings are
    reported but only fail under ``--strict``.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    ``rule`` is the stable identifier (``REPRO-D02``); ``category`` is
    the rule group (``determinism``, ``worker-safety``, ``naming``,
    ``fault-space``).
    """

    rule: str
    severity: Severity
    category: str
    path: str
    line: int
    message: str

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: line numbers shift under unrelated edits,
        so suppression matches on (rule, path, message) only."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict:
        data = asdict(self)
        data["severity"] = self.severity.value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            rule=data["rule"],
            severity=Severity(data.get("severity", "error")),
            category=data.get("category", ""),
            path=data["path"],
            line=int(data.get("line", 0)),
            message=data["message"],
        )

    def render(self) -> str:
        location = f"{self.path}:{self.line}" if self.line else self.path
        return (f"{location}: {self.severity.value} "
                f"[{self.rule}] {self.message}")


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Stable report order: errors first, then by location."""
    return sorted(findings,
                  key=lambda f: (f.severity is not Severity.ERROR,
                                 f.path, f.line, f.rule, f.message))


def render_text(findings: list[Finding]) -> str:
    """Human-readable report, one finding per line plus a tally."""
    ordered = sort_findings(findings)
    lines = [finding.render() for finding in ordered]
    errors = sum(1 for f in ordered if f.severity is Severity.ERROR)
    warnings = len(ordered) - errors
    lines.append(f"{errors} error(s), {warnings} warning(s)")
    return "\n".join(lines)


def render_jsonl(findings: list[Finding]) -> str:
    """Machine-readable report: one JSON object per finding, sorted the
    same way as the text report (ends with a newline unless empty)."""
    ordered = sort_findings(findings)
    return "".join(json.dumps(finding.to_dict(), sort_keys=True) + "\n"
                   for finding in ordered)


def write_jsonl(findings: list[Finding], path: str) -> None:
    """Write the JSONL report (an empty file when there are no findings,
    so CI artifact upload always has something to collect)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_jsonl(findings))
