"""Lint orchestration: walk the tree, run both engines, gate.

``run_lint()`` is what the ``repro-sfi lint`` subcommand and the CI job
call: AST passes over every ``.py`` file under the package root (policy
table deciding which rule groups apply per path), the fault-space audit
over the live model, baseline suppression, and a single exit-code
decision.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.audit import audit_fault_space, parse_design_budgets
from repro.lint.baseline import (
    BaselineKey,
    apply_baseline,
    load_baseline,
)
from repro.lint.findings import Finding, Severity, sort_findings
from repro.lint.policy import DEFAULT_POLICY, PathPolicy, groups_for
from repro.lint.rules_ast import lint_source

#: Name of the checked-in suppression baseline at the repo root.
BASELINE_FILENAME = "lint-baseline.jsonl"


def default_root() -> Path:
    """The installed ``repro`` package directory."""
    import repro
    return Path(repro.__file__).resolve().parent


def find_repo_file(root: Path, filename: str) -> Path | None:
    """Walk up from the lint root looking for a repo-level file
    (``DESIGN.md``, the baseline).  Returns None when not found, e.g.
    for a site-packages install without a repo checkout."""
    for candidate_dir in (root, *root.parents[:3]):
        candidate = candidate_dir / filename
        if candidate.is_file():
            return candidate
    return None


def iter_source_files(root: Path) -> list[Path]:
    """Every ``.py`` file under ``root``, deterministic order."""
    return sorted(path for path in root.rglob("*.py")
                  if "__pycache__" not in path.parts)


@dataclass
class LintReport:
    """Everything one lint run decided."""

    findings: list[Finding]
    suppressed: list[Finding] = field(default_factory=list)
    stale_baseline: set[BaselineKey] = field(default_factory=set)
    files_scanned: int = 0
    audit_ran: bool = False
    structural_ran: bool = False
    budget_source: str = ""

    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def exit_code(self, strict: bool = False) -> int:
        """0 clean, 1 findings (warnings gate only under ``--strict``,
        as do stale baseline entries)."""
        if self.errors():
            return 1
        if strict and (self.findings or self.stale_baseline):
            return 1
        return 0


def lint_tree(root: Path,
              policy: tuple[PathPolicy, ...] = DEFAULT_POLICY,
              ) -> tuple[list[Finding], int]:
    """Run the AST passes over every source file under ``root``.

    Returns (findings, files scanned).  Finding paths are reported
    relative to ``root``'s parent (``repro/cpu/core.py``) so reports are
    stable across checkouts.
    """
    findings: list[Finding] = []
    files = iter_source_files(root)
    for path in files:
        relpath = path.relative_to(root).as_posix()
        report_path = (root.name + "/" + relpath) if root.name else relpath
        source = path.read_text(encoding="utf-8")
        groups = groups_for(relpath, policy)
        for finding in lint_source(source, report_path, groups):
            findings.append(finding)
    return findings, len(files)


#: Rule-id prefix per optional lint pass: baseline entries belonging to
#: a pass that did not run are exempt from staleness (they *couldn't*
#: match a finding this run), so ``--strict`` without ``--structural``
#: does not trip over the ratcheted REPRO-G entries.
_PASS_RULE_PREFIXES = {"audit": "REPRO-A", "structural": "REPRO-G"}


def _filter_stale(stale: set[BaselineKey], audit_ran: bool,
                  structural_ran: bool) -> set[BaselineKey]:
    skipped = []
    if not audit_ran:
        skipped.append(_PASS_RULE_PREFIXES["audit"])
    if not structural_ran:
        skipped.append(_PASS_RULE_PREFIXES["structural"])
    if not skipped:
        return stale
    return {key for key in stale
            if not any(key[0].startswith(prefix) for prefix in skipped)}


def run_lint(root: Path | None = None,
             policy: tuple[PathPolicy, ...] = DEFAULT_POLICY,
             include_audit: bool = True,
             include_structural: bool = False,
             baseline_path: str | os.PathLike | None = None,
             design_path: str | os.PathLike | None = None,
             ) -> LintReport:
    """One full lint run: AST passes + fault-space audit + baseline.

    ``include_structural`` additionally extracts the structural latch
    graph from the live model (a few traced golden runs, seconds of
    work) and evaluates the REPRO-G rules over it.
    ``baseline_path``/``design_path`` default to auto-discovery relative
    to the lint root; pass an explicit path to pin them, or a path that
    does not exist to disable that input.
    """
    root = Path(root) if root is not None else default_root()
    findings, files_scanned = lint_tree(root, policy)

    audit_ran = False
    budget_source = ""
    if include_audit:
        if design_path is None:
            found = find_repo_file(root, "DESIGN.md")
            design_path = found if found is not None else None
        budgets = None
        if design_path is not None and Path(design_path).is_file():
            budgets = parse_design_budgets(os.fspath(design_path))
            if budgets:
                budget_source = os.fspath(design_path)
        findings.extend(audit_fault_space(budgets=budgets))
        audit_ran = True

    structural_ran = False
    if include_structural:
        from repro.analysis.static_bounds import compute_bounds
        from repro.cpu.core import Power6Core
        from repro.emulator.structural import extract_graph
        from repro.lint.structural import lint_structural
        core = Power6Core()
        graph = extract_graph(core)
        findings.extend(lint_structural(graph, compute_bounds(graph),
                                        core=Power6Core()))
        structural_ran = True

    # Deterministic report order regardless of which passes ran and in
    # what order they appended: the full sort key includes the rule id,
    # so baseline writes diff stably across runs.
    findings = sort_findings(findings)

    if baseline_path is None:
        found = find_repo_file(root, BASELINE_FILENAME)
        baseline_path = found if found is not None else None
    suppressed: list[Finding] = []
    stale: set[BaselineKey] = set()
    if baseline_path is not None and Path(baseline_path).is_file():
        baseline = load_baseline(os.fspath(baseline_path))
        findings, suppressed, stale = apply_baseline(findings, baseline)
        stale = _filter_stale(stale, audit_ran, structural_ran)
        suppressed = sort_findings(suppressed)

    return LintReport(findings=findings, suppressed=suppressed,
                      stale_baseline=stale, files_scanned=files_scanned,
                      audit_ran=audit_ran, structural_ran=structural_ran,
                      budget_source=budget_source)
