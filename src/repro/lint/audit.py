"""Fault-space audit: the model vs. the sampling view.

The paper's statistics assume the sampled population *is* the machine:
"the sample size n of the fault injection experiments performed relates
directly to the latch count N of the model".  A latch that a unit owns
but the netlist missed can never be struck, so every campaign
under-reports that unit's contribution — a silent statistical bias no
amount of sampling fixes.  This audit instantiates the live core model
and cross-checks three artifacts against each other:

* the **structure** (``core.all_latches()`` / ``core.unit_of``),
* the **sampling view** (:class:`repro.emulator.netlist.LatchMap`),
* the **declared budgets** (the "Latch budgets" table in ``DESIGN.md``).

Rules:

* ``REPRO-A01`` unregistered latch — a live latch with missing (or a
  wrong number of) injectable bits in the netlist.
* ``REPRO-A02`` ring-less latch — no scan-ring assignment; per-ring
  (Figure 5) sampling would silently skip it.
* ``REPRO-A03`` kind-less latch — no :class:`LatchKind`; per-kind
  stratification would drop it.
* ``REPRO-A04`` checker-less parity domain — a unit carries
  parity-protected latches but no parity/ECC checker exists to consume
  the shadow bit, so "detected" outcomes there are unreachable.
* ``REPRO-A05`` stale site — the netlist addresses a latch the core no
  longer owns (injections would mutate orphaned state).
* ``REPRO-A06`` budget mismatch — per-unit injectable-bit counts
  disagree with ``DESIGN.md``'s declared budgets.
* ``REPRO-A07`` duplicate site name — two sites share a
  ``unit.latch.bit`` path, so journals and resume keys are ambiguous.

The audit duck-types its inputs (anything with ``all_latches()`` /
``unit_of()`` and an indexable site view) so tests can probe it with
deliberately broken models.
"""

from __future__ import annotations

import re
from collections import Counter

from repro.lint.findings import Finding, Severity

_BUDGET_ROW = re.compile(
    r"^\|\s*`?([A-Za-z][A-Za-z0-9]*)`?\s*\|\s*([0-9][0-9,_]*)\s*\|")

#: Checker-name tags that mark a checker as consuming parity/ECC state.
_PARITY_TAGS = ("PARITY", "ECC", "MULTIHIT")


def parse_design_budgets(design_path: str) -> dict[str, int]:
    """Parse the "Latch budgets" table out of ``DESIGN.md``.

    Returns ``{unit: injectable_bits}`` (plus a ``TOTAL`` row when the
    table declares one).  Only rows inside a heading whose text contains
    "latch budget" are read, so other tables in the document are inert.
    """
    budgets: dict[str, int] = {}
    in_section = False
    with open(design_path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if stripped.startswith("#"):
                in_section = "latch budget" in stripped.lower()
                continue
            if not in_section:
                continue
            match = _BUDGET_ROW.match(stripped)
            if match:
                unit = match.group(1).upper()
                if unit == "UNIT":
                    continue  # header row
                bits = int(match.group(2).replace(",", "").replace("_", ""))
                budgets[unit] = bits
    return budgets


def _finding(rule: str, path: str, message: str) -> Finding:
    return Finding(rule=rule, severity=Severity.ERROR,
                   category="fault-space", path=path, line=0,
                   message=message)


def audit_fault_space(core=None, latch_map=None,
                      budgets: dict[str, int] | None = None,
                      checkers=None) -> list[Finding]:
    """Cross-check the live model, the netlist and the declared budgets.

    With no arguments, audits the default :class:`Power6Core` model the
    campaigns run on.  ``budgets=None`` skips the DESIGN.md
    reconciliation (pass :func:`parse_design_budgets` output to enable
    it); ``checkers`` defaults to the hardware checker enum.
    """
    if core is None:
        from repro.cpu.core import Power6Core
        core = Power6Core()
    if latch_map is None:
        from repro.emulator.netlist import LatchMap
        latch_map = LatchMap(core)
    if checkers is None:
        from repro.cpu.checkers import Checker
        checkers = list(Checker)
    from repro.rtl.latch import LatchKind

    findings: list[Finding] = []
    core_latches = core.all_latches()
    live = {id(latch): latch for latch in core_latches}

    registered_bits: Counter[int] = Counter()
    site_names: Counter[str] = Counter()
    stale_reported: set[int] = set()
    for index in range(len(latch_map)):
        site = latch_map.site(index)
        site_names[site.name] += 1
        key = id(site.latch)
        registered_bits[key] += 1
        if key not in live and key not in stale_reported:
            stale_reported.add(key)
            findings.append(_finding(
                "REPRO-A05", site.latch.name,
                "netlist site addresses a latch the core does not own; "
                "injecting it mutates orphaned state outside the model"))

    for latch in core_latches:
        expected = latch.width + (1 if latch.protected else 0)
        have = registered_bits.get(id(latch), 0)
        if have == 0:
            findings.append(_finding(
                "REPRO-A01", latch.name,
                f"latch ({expected} injectable bits) is reachable via "
                "all_latches() but absent from the netlist; campaigns can "
                "never strike it, biasing every sampled rate"))
        elif have != expected:
            findings.append(_finding(
                "REPRO-A01", latch.name,
                f"netlist registers {have} bits but the latch exposes "
                f"{expected} (width {latch.width}"
                f"{' + parity shadow' if latch.protected else ''}); the "
                "fault space is mis-sized"))
        ring = getattr(latch, "ring", "")
        if not ring:
            findings.append(_finding(
                "REPRO-A02", latch.name,
                "latch has no scan-ring assignment; per-ring (Figure 5) "
                "sampling silently skips it"))
        kind = getattr(latch, "kind", None)
        if not isinstance(kind, LatchKind):
            findings.append(_finding(
                "REPRO-A03", latch.name,
                f"latch kind {kind!r} is not a LatchKind; per-kind "
                "stratification drops it"))

    for name, count in sorted(site_names.items()):
        if count > 1:
            findings.append(_finding(
                "REPRO-A07", name,
                f"{count} netlist sites share this name; journal resume "
                "keys and index_of() lookups are ambiguous"))

    # Parity-protected latches must have at least one checker in their
    # unit that consumes parity/ECC state, or detection is unreachable.
    protected_by_unit: Counter[str] = Counter()
    for latch in core_latches:
        if latch.protected:
            protected_by_unit[core.unit_of(latch)] += 1
    checking_units = {
        checker.unit for checker in checkers
        if any(tag in checker.name for tag in _PARITY_TAGS)}
    for unit in sorted(protected_by_unit):
        if unit not in checking_units:
            findings.append(_finding(
                "REPRO-A04", unit,
                f"unit owns {protected_by_unit[unit]} parity-protected "
                "latch(es) but no parity/ECC checker; their detected "
                "outcomes are unreachable, so checker-effectiveness "
                "results are biased"))

    if budgets:
        declared_total = budgets.get("TOTAL")
        unit_budgets = {unit: bits for unit, bits in budgets.items()
                        if unit != "TOTAL"}
        counts = latch_map.unit_bit_counts()
        for unit in sorted(set(unit_budgets) | set(counts)):
            declared = unit_budgets.get(unit)
            actual = counts.get(unit)
            if declared is None:
                findings.append(_finding(
                    "REPRO-A06", unit,
                    f"unit exists in the model ({actual} injectable bits) "
                    "but has no declared budget in DESIGN.md"))
            elif actual is None:
                findings.append(_finding(
                    "REPRO-A06", unit,
                    f"DESIGN.md declares {declared} injectable bits but "
                    "the model has no such unit"))
            elif declared != actual:
                findings.append(_finding(
                    "REPRO-A06", unit,
                    f"DESIGN.md declares {declared} injectable bits but "
                    f"the model exposes {actual}; the declared fault "
                    "space no longer matches the machine"))
        if declared_total is not None and declared_total != len(latch_map):
            findings.append(_finding(
                "REPRO-A06", "TOTAL",
                f"DESIGN.md declares {declared_total} total injectable "
                f"bits but the netlist holds {len(latch_map)}"))
    return findings
