"""Structural lint rules (REPRO-G01..G05) over the latch graph.

Where the fault-space audit (REPRO-A*) cross-checks *inventories* — the
netlist against the live model against DESIGN.md — these rules check
*structure*: what the extracted latch→latch dependency graph
(:mod:`repro.emulator.structural`) says the model can and cannot do.

REPRO-G01 (warning, per unit)
    Structurally-dead latches: never read during any traced golden run
    and with no outgoing dataflow edge.  Dead storage inflates the SER
    budget denominator and burns campaign trials on foregone
    conclusions; the baseline ratchet keeps the population from
    growing.
REPRO-G02 (error, per latch)
    Protection-coverage hole: a parity-protected latch whose value the
    machine consumes but whose parity shadow is never consulted at any
    point of use.  Data is being used unchecked — the parity bit can
    never produce a detected outcome, so checker-effectiveness results
    are biased.
REPRO-G03 (error, per latch)
    Scan-ring partition violation: every latch must sit on exactly one
    scan ring.  A latch on zero rings is invisible to ring-stratified
    sampling (Figure 5); one on several is double-counted and shifts
    ring statistics.
REPRO-G04 (error, per latch)
    Functional write into scan-only state: a MODE/GPTR latch with an
    incoming dataflow edge.  Persistent configuration must only change
    via scan access; a functional writer makes "configuration" outcomes
    depend on program content.
REPRO-G05 (warning, per unit)
    Dormant configuration: scan-only latches never read during any
    traced golden run.  Their flips are foregone VANISHED conclusions
    for this workload suite — worth knowing when budgeting campaigns,
    and a ratchet against config sprawl.
"""

from __future__ import annotations

from repro.lint.findings import Finding, Severity

_SCAN_ONLY_KINDS = ("MODE", "GPTR")
_EXAMPLE_LIMIT = 3


def _finding(rule: str, severity: Severity, path: str,
             message: str) -> Finding:
    return Finding(rule=rule, severity=severity, category="structural",
                   path=path, line=0, message=message)


def _examples(names: list[str]) -> str:
    shown = ", ".join(sorted(names)[:_EXAMPLE_LIMIT])
    extra = len(names) - _EXAMPLE_LIMIT
    return shown + (f" (+{extra} more)" if extra > 0 else "")


def lint_structural(graph, bounds, core=None,
                    rings: dict | None = None) -> list[Finding]:
    """Evaluate REPRO-G01..G05 against one extracted graph + bounds.

    ``core``/``rings`` feed the scan-ring partition check (G03); pass
    ``rings`` explicitly to audit a doctored ring layout in tests.
    ``graph`` is a :class:`repro.emulator.structural.LatchGraph` and
    ``bounds`` the matching
    :class:`repro.analysis.static_bounds.StaticBounds`.
    """
    findings: list[Finding] = []
    read_union = graph.read_union()
    par_union = graph.par_read_union()

    # G01: structurally-dead latch populations, one finding per unit.
    # Scan-only configuration is G05's domain, so it is excluded here.
    dead_by_unit: dict[str, list[str]] = {}
    for name, cls in bounds.classes.items():
        if (cls == "dead" and graph.nodes[name]["latch_kind"]
                not in _SCAN_ONLY_KINDS):
            dead_by_unit.setdefault(
                graph.nodes[name]["unit"], []).append(name)
    for unit in sorted(dead_by_unit):
        names = dead_by_unit[unit]
        bits = sum(graph.nodes[name]["bits"] for name in names)
        findings.append(_finding(
            "REPRO-G01", Severity.WARNING, unit,
            f"{len(names)} structurally-dead latches ({bits} bits) are "
            f"never read and drive nothing in any traced golden run, "
            f"e.g. {_examples(names)}; they dilute the SER budget and "
            f"every campaign trial spent on them is a foregone "
            f"VANISHED"))

    # G02: consumed-but-unchecked protected latches.
    for name in graph.latch_names():
        node = graph.nodes[name]
        if (node["protected"] and name in read_union
                and name not in par_union):
            findings.append(_finding(
                "REPRO-G02", Severity.ERROR, name,
                "parity-protected latch is consumed (value read during "
                "traced runs) but its parity shadow is never consulted "
                "at any point of use; its parity bit cannot produce a "
                "detected outcome"))

    # G03: scan-ring partition (exactly one ring per latch).
    if rings is None and core is not None:
        rings = core.scan_rings()
    if rings is not None and core is not None:
        membership: dict[int, list[str]] = {}
        for ring_name, ring in rings.items():
            for latch in ring.latches:
                membership.setdefault(
                    id(latch),  # repro-lint: allow[REPRO-D03]
                    []).append(ring_name)
        for latch in core.all_latches():
            on = membership.get(id(latch), [])  # repro-lint: allow[REPRO-D03]
            if len(on) == 0:
                findings.append(_finding(
                    "REPRO-G03", Severity.ERROR, latch.name,
                    "latch is on no scan ring; ring-stratified sampling "
                    "and scan access cannot reach it"))
            elif len(on) > 1:
                listed = ", ".join(sorted(on))
                findings.append(_finding(
                    "REPRO-G03", Severity.ERROR, latch.name,
                    f"latch sits on {len(on)} scan rings ({listed}); "
                    "per-ring populations double-count it"))

    # G04: functional writes into scan-only configuration.
    scan_only = {name for name in graph.latch_names()
                 if graph.nodes[name]["latch_kind"] in _SCAN_ONLY_KINDS}
    writers: dict[str, list[str]] = {}
    for (src, dst) in graph.edges:
        if dst in scan_only:
            writers.setdefault(dst, []).append(src)
    for name in sorted(writers):
        findings.append(_finding(
            "REPRO-G04", Severity.ERROR, name,
            f"scan-only latch has incoming functional dataflow from "
            f"{_examples(writers[name])}; persistent configuration "
            "must only change via scan access"))

    # G05: dormant configuration, one finding per unit.
    dormant_by_unit: dict[str, list[str]] = {}
    for name in sorted(scan_only):
        if name not in read_union and name not in writers:
            dormant_by_unit.setdefault(
                graph.nodes[name]["unit"], []).append(name)
    for unit in sorted(dormant_by_unit):
        names = dormant_by_unit[unit]
        findings.append(_finding(
            "REPRO-G05", Severity.WARNING, unit,
            f"{len(names)} scan-only configuration latches are never "
            f"read in any traced golden run ({_examples(names)}); "
            f"their injections are foregone VANISHED outcomes for "
            f"this workload suite"))
    return findings
