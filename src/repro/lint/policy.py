"""Per-path lint policy: which rule groups apply where.

Determinism rules are *domain* rules, not universal style: a wall-clock
read inside the simulation packages silently breaks the bit-identical
resume/replay guarantee, while the same read inside the observability
layer is the whole point of that layer.  The policy table makes each
exemption an explicit, reviewable line instead of scattered inline
pragmas.

Paths are matched relative to the lint root (the ``repro`` package
directory), first match wins, so more specific prefixes go first.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RuleGroup(enum.Enum):
    """The AST rule families a path can opt into."""

    DETERMINISM = "determinism"      # REPRO-D01..D04
    WORKER_SAFETY = "worker-safety"  # REPRO-W01
    NAMING = "naming"                # REPRO-N01..N02
    SCHEMA = "schema"                # REPRO-S01


ALL_GROUPS = frozenset(RuleGroup)

#: Model-level rule families that do not go through the per-path table:
#: they audit the *live machine*, not source files.  REPRO-A* (the
#: fault-space audit, :mod:`repro.lint.audit`) always runs; REPRO-G*
#: (the structural latch-graph rules, :mod:`repro.lint.structural`)
#: run under ``repro-sfi lint --structural`` and ratchet through the
#: same baseline as everything else — baseline entries of a family
#: whose pass did not run are exempt from staleness.
STRUCTURAL_RULES: dict[str, str] = {
    "REPRO-G01": "structurally-dead latches: never read, drive nothing "
                 "in any traced golden run (warning, per unit)",
    "REPRO-G02": "protection-coverage hole: parity-protected latch "
                 "consumed without its shadow ever being checked "
                 "(error, per latch)",
    "REPRO-G03": "scan-ring partition violation: latch on zero or "
                 "multiple scan rings (error, per latch)",
    "REPRO-G04": "functional write into scan-only MODE/GPTR state "
                 "(error, per latch)",
    "REPRO-G05": "dormant configuration: scan-only latches never read "
                 "by the workload suite (warning, per unit)",
}

#: Packages whose code runs inside (or feeds) the simulated machine —
#: the paper's reproducibility claim covers exactly these.
SIMULATION_PACKAGES = ("cpu", "isa", "sfi", "avp", "beam", "emulator",
                      "rtl", "workload", "stats", "analysis")


@dataclass(frozen=True)
class PathPolicy:
    """One row of the policy table.

    ``prefix`` matches the start of the ``/``-separated path relative to
    the lint root (``""`` matches everything — the default row).
    """

    prefix: str
    groups: frozenset[RuleGroup]
    reason: str = ""

    def matches(self, relpath: str) -> bool:
        if not self.prefix:
            return True
        return (relpath == self.prefix
                or relpath.startswith(self.prefix.rstrip("/") + "/"))


#: First match wins.  ``obs`` and the CLI are host-side: they read wall
#: clocks and tail files by design, but their worker payloads and metric
#: names still matter.
DEFAULT_POLICY: tuple[PathPolicy, ...] = (
    PathPolicy("emulator/bitplane.py", ALL_GROUPS,
               "bit-plane backend: full determinism contract (waves must "
               "be bit-identical to the scalar path)"),
    PathPolicy("emulator/bitplane-gen",
               frozenset({RuleGroup.DETERMINISM}),
               "generated plane kernels (virtual path, linted at "
               "generation time as REPRO-D05): determinism applies, "
               "naming does not — names are machine-chosen"),
    PathPolicy("obs",
               frozenset({RuleGroup.WORKER_SAFETY, RuleGroup.NAMING}),
               "telemetry layer: wall-clock reads are its purpose"),
    PathPolicy("cli.py",
               frozenset({RuleGroup.WORKER_SAFETY, RuleGroup.NAMING}),
               "host-side command front-end (timing banners, file tails)"),
    PathPolicy("lint",
               frozenset({RuleGroup.WORKER_SAFETY, RuleGroup.NAMING}),
               "analysis host tooling, never on a simulation path"),
    PathPolicy("warehouse",
               frozenset({RuleGroup.WORKER_SAFETY, RuleGroup.NAMING,
                          RuleGroup.SCHEMA}),
               "host-side result store: tails files by design, but its "
               "on-disk schema is versioned"),
    PathPolicy("", ALL_GROUPS,
               "simulation packages: full determinism contract"),
)


def groups_for(relpath: str,
               policy: tuple[PathPolicy, ...] = DEFAULT_POLICY,
               ) -> frozenset[RuleGroup]:
    """Rule groups enabled for one source file (first match wins)."""
    normalized = relpath.replace("\\", "/")
    for row in policy:
        if row.matches(normalized):
            return row.groups
    return ALL_GROUPS


def render_policy(policy: tuple[PathPolicy, ...] = DEFAULT_POLICY) -> str:
    """The table, for ``repro-sfi lint --show-policy`` and the docs."""
    lines = [f"{'path prefix':<12} {'rule groups':<40} reason"]
    for row in policy:
        groups = ",".join(sorted(group.value for group in row.groups))
        prefix = row.prefix or "(default)"
        lines.append(f"{prefix:<12} {groups:<40} {row.reason}")
    lines.append("")
    lines.append("model-level rules (not per-path; REPRO-G* need "
                 "--structural):")
    for rule in sorted(STRUCTURAL_RULES):
        lines.append(f"{rule:<12} {STRUCTURAL_RULES[rule]}")
    return "\n".join(lines)
