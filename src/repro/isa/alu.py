"""Pure functional semantics shared by the golden ISS and the pipeline
functional units.

All integer values are 32-bit unsigned Python ints (``0 <= v < 2**32``).
Floating point values travel as IEEE-754 single-precision bit patterns so
that latch-level state remains pure bits.
"""

from __future__ import annotations

import math
import struct

WORD_MASK = 0xFFFFFFFF

# Condition-register bit indices (BI field values for ``bc``).
CR_LT = 0
CR_GT = 1
CR_EQ = 2
CR_SO = 3


def to_signed(value: int) -> int:
    """Interpret a 32-bit pattern as a signed integer."""
    value &= WORD_MASK
    return value - 0x100000000 if value & 0x80000000 else value


def add32(a: int, b: int) -> int:
    return (a + b) & WORD_MASK


def sub32(a: int, b: int) -> int:
    return (a - b) & WORD_MASK


def mul32(a: int, b: int) -> int:
    return (a * b) & WORD_MASK


def div32(a: int, b: int) -> int:
    """Signed division truncating toward zero; divide-by-zero yields 0."""
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return 0
    return int(sa / sb) & WORD_MASK


def and32(a: int, b: int) -> int:
    return a & b & WORD_MASK


def or32(a: int, b: int) -> int:
    return (a | b) & WORD_MASK


def xor32(a: int, b: int) -> int:
    return (a ^ b) & WORD_MASK


def slw32(a: int, amount: int) -> int:
    return (a << (amount & 31)) & WORD_MASK


def srw32(a: int, amount: int) -> int:
    return (a & WORD_MASK) >> (amount & 31)


def sraw32(a: int, amount: int) -> int:
    return (to_signed(a) >> (amount & 31)) & WORD_MASK


def cmp_signed(a: int, b: int) -> int:
    """Condition-register field for a signed compare."""
    sa, sb = to_signed(a), to_signed(b)
    if sa < sb:
        return 1 << CR_LT
    if sa > sb:
        return 1 << CR_GT
    return 1 << CR_EQ


def cmp_unsigned(a: int, b: int) -> int:
    """Condition-register field for an unsigned compare."""
    a &= WORD_MASK
    b &= WORD_MASK
    if a < b:
        return 1 << CR_LT
    if a > b:
        return 1 << CR_GT
    return 1 << CR_EQ


def _bits_to_float(bits: int) -> float:
    return struct.unpack(">f", struct.pack(">I", bits & WORD_MASK))[0]


def _float_to_bits(value: float) -> int:
    if math.isnan(value):
        return 0x7FC00000  # canonical quiet NaN
    try:
        return struct.unpack(">I", struct.pack(">f", value))[0]
    except OverflowError:
        return 0x7F800000 if value > 0 else 0xFF800000


def fadd32(a: int, b: int) -> int:
    return _float_to_bits(_bits_to_float(a) + _bits_to_float(b))


def fsub32(a: int, b: int) -> int:
    return _float_to_bits(_bits_to_float(a) - _bits_to_float(b))


def fmul32(a: int, b: int) -> int:
    return _float_to_bits(_bits_to_float(a) * _bits_to_float(b))


def fdiv32(a: int, b: int) -> int:
    fb = _bits_to_float(b)
    fa = _bits_to_float(a)
    if fb == 0.0:
        if fa == 0.0 or math.isnan(fa):
            return 0x7FC00000
        sign = (a ^ b) & 0x80000000
        return sign | 0x7F800000
    return _float_to_bits(fa / fb)


def float_bits(value: float) -> int:
    """Public helper: IEEE-754 single bit pattern for ``value``."""
    return _float_to_bits(value)


def bits_float(bits: int) -> float:
    """Public helper: float value of an IEEE-754 single bit pattern."""
    return _bits_to_float(bits)
