"""Binary encoding and decoding of P6-lite instruction words.

Instruction formats (32-bit words):

* X-form  (register-register):  ``op[31:26] rt[25:21] ra[20:16] rb[15:11] 0[10:0]``
* D-form  (register-immediate): ``op[31:26] rt[25:21] ra[20:16] imm[15:0]``

``imm`` is a signed 16-bit two's-complement field.  Branch displacements are
encoded in instruction words (i.e. a displacement of ``d`` means the target
is ``pc + 4 * d``).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.isa.opcodes import Opcode, is_valid_opcode, op_info

WORD_MASK = 0xFFFFFFFF
IMM_MASK = 0xFFFF


class DecodedInstr(NamedTuple):
    """A decoded instruction word.

    ``imm`` is sign-extended to a Python int.  For X-form instructions the
    ``imm`` field aliases the raw low 16 bits (rb lives in its top bits),
    so consumers must use ``rb`` or ``imm`` according to the opcode.
    """

    op: int
    rt: int
    ra: int
    rb: int
    imm: int
    word: int

    @property
    def valid(self) -> bool:
        """True when the primary opcode decodes to a defined instruction."""
        return is_valid_opcode(self.op)

    @property
    def mnemonic(self) -> str:
        return op_info(self.op).mnemonic if self.valid else f"undef<{self.op}>"


def sext16(value: int) -> int:
    """Sign-extend a 16-bit field to a Python int."""
    value &= IMM_MASK
    return value - 0x10000 if value & 0x8000 else value


def encode(op: int, rt: int = 0, ra: int = 0, rb: int = 0, imm: int = 0) -> int:
    """Encode an instruction word.

    D-form opcodes take ``imm`` (signed, must fit in 16 bits); X-form opcodes
    take ``rb``.  Passing both a nonzero ``rb`` and ``imm`` is rejected to
    catch caller mistakes.
    """
    if not 0 <= op <= 63:
        raise ValueError(f"opcode out of range: {op}")
    if not 0 <= rt <= 31 or not 0 <= ra <= 31 or not 0 <= rb <= 31:
        raise ValueError(f"register field out of range: rt={rt} ra={ra} rb={rb}")
    if rb and imm:
        raise ValueError("instruction cannot carry both rb and imm")
    if not -0x8000 <= imm <= 0x7FFF:
        raise ValueError(f"immediate does not fit in 16 bits: {imm}")
    low = ((rb << 11) | (imm & IMM_MASK)) & IMM_MASK
    return ((op & 0x3F) << 26) | ((rt & 0x1F) << 21) | ((ra & 0x1F) << 16) | low


def decode(word: int) -> DecodedInstr:
    """Decode a 32-bit instruction word into its fields."""
    word &= WORD_MASK
    op = (word >> 26) & 0x3F
    rt = (word >> 21) & 0x1F
    ra = (word >> 16) & 0x1F
    rb = (word >> 11) & 0x1F
    imm = sext16(word)
    return DecodedInstr(op, rt, ra, rb, imm, word)


def disassemble(word: int) -> str:
    """Render one instruction word as assembler text."""
    instr = decode(word)
    if not instr.valid:
        return f".word 0x{word:08x}"
    info = op_info(instr.op)
    op = Opcode(instr.op)
    reg = "f" if op in {Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV} else "r"
    if op in {Opcode.HALT, Opcode.NOP, Opcode.ATTN, Opcode.BLR}:
        return info.mnemonic
    if op in {Opcode.LWZ, Opcode.LBZ, Opcode.STW, Opcode.STB}:
        return f"{info.mnemonic} r{instr.rt}, {instr.imm}(r{instr.ra})"
    if op in {Opcode.LFS, Opcode.STFS}:
        return f"{info.mnemonic} f{instr.rt}, {instr.imm}(r{instr.ra})"
    if op in {Opcode.B, Opcode.BL, Opcode.BDNZ}:
        return f"{info.mnemonic} {instr.imm}"
    if op is Opcode.BC:
        return f"bc {instr.rt}, {instr.ra}, {instr.imm}"
    if op in {Opcode.CMPW, Opcode.CMPLW}:
        return f"{info.mnemonic} r{instr.ra}, r{instr.rb}"
    if op is Opcode.CMPWI:
        return f"cmpwi r{instr.ra}, {instr.imm}"
    if op is Opcode.MTLR:
        return f"mtlr r{instr.ra}"
    if op is Opcode.MFLR:
        return f"mflr r{instr.rt}"
    if op is Opcode.MTCTR:
        return f"mtctr r{instr.ra}"
    if op is Opcode.MFCTR:
        return f"mfctr r{instr.rt}"
    if info.has_imm:
        return f"{info.mnemonic} {reg}{instr.rt}, {reg}{instr.ra}, {instr.imm}"
    return f"{info.mnemonic} {reg}{instr.rt}, {reg}{instr.ra}, {reg}{instr.rb}"
