"""Golden-model instruction set simulator (ISS).

This is the architectural reference used by the AVP to compute expected
results at testcase-generation time and by the SFI classifier to decide
whether an injected fault produced incorrect architected state.  It shares
the pure functional semantics in :mod:`repro.isa.alu` with the pipeline's
execution units but implements its own sequencing, so an end-state match
between pipeline and ISS is a meaningful cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa import alu
from repro.isa.encoding import decode
from repro.isa.memory import Memory
from repro.isa.opcodes import InstrClass, Opcode, op_info
from repro.isa.program import Program

NUM_GPRS = 32
NUM_FPRS = 32


class IllegalInstruction(Exception):
    """Raised when the ISS fetches an undefined instruction word."""

    def __init__(self, pc: int, word: int) -> None:
        super().__init__(f"illegal instruction 0x{word:08x} at pc=0x{pc:08x}")
        self.pc = pc
        self.word = word


@dataclass
class ArchState:
    """Complete architected state of one hardware thread."""

    gprs: list[int] = field(default_factory=lambda: [0] * NUM_GPRS)
    fprs: list[int] = field(default_factory=lambda: [0] * NUM_FPRS)
    cr: int = 0
    lr: int = 0
    ctr: int = 0
    pc: int = 0
    halted: bool = False

    def copy(self) -> "ArchState":
        return ArchState(list(self.gprs), list(self.fprs), self.cr, self.lr,
                         self.ctr, self.pc, self.halted)

    def signature(self) -> tuple:
        """Hashable digest of the architected state (excludes pc/halted so
        it can compare states reached through different control paths)."""
        return (tuple(self.gprs), tuple(self.fprs), self.cr, self.lr, self.ctr)

    def differences(self, other: "ArchState") -> list[str]:
        """Human-readable list of architected-state mismatches."""
        diffs = []
        for i, (a, b) in enumerate(zip(self.gprs, other.gprs)):
            if a != b:
                diffs.append(f"r{i}: 0x{a:08x} != 0x{b:08x}")
        for i, (a, b) in enumerate(zip(self.fprs, other.fprs)):
            if a != b:
                diffs.append(f"f{i}: 0x{a:08x} != 0x{b:08x}")
        if self.cr != other.cr:
            diffs.append(f"cr: {self.cr:04b} != {other.cr:04b}")
        if self.lr != other.lr:
            diffs.append(f"lr: 0x{self.lr:08x} != 0x{other.lr:08x}")
        if self.ctr != other.ctr:
            diffs.append(f"ctr: 0x{self.ctr:08x} != 0x{other.ctr:08x}")
        return diffs


class Iss:
    """Single-stepping architectural simulator."""

    def __init__(self, program: Program | None = None,
                 memory: Memory | None = None) -> None:
        self.state = ArchState()
        self.memory = memory if memory is not None else Memory()
        self.retired = 0
        self.class_counts: dict[InstrClass, int] = {c: 0 for c in InstrClass}
        if program is not None:
            self.load(program)

    def load(self, program: Program) -> None:
        """Load a program image and point the PC at its entry."""
        self.memory.load_program(program.words, program.base)
        for addr, value in program.data.items():
            self.memory.store_word(addr, value)
        self.state.pc = program.entry if program.entry is not None else program.base

    def step(self) -> Opcode:
        """Execute one instruction; returns the opcode executed.

        Raises :class:`IllegalInstruction` on undefined opcodes and leaves
        the machine halted at the faulting pc.
        """
        st = self.state
        if st.halted:
            raise RuntimeError("stepping a halted machine")
        word = self.memory.load_word(st.pc)
        instr = decode(word)
        if not instr.valid or instr.op == Opcode.ATTN:
            st.halted = True
            raise IllegalInstruction(st.pc, word)
        op = Opcode(instr.op)
        next_pc = alu.add32(st.pc, 4)
        g = st.gprs
        f = st.fprs

        if op is Opcode.HALT:
            st.halted = True
        elif op is Opcode.ADDI:
            g[instr.rt] = alu.add32(g[instr.ra], instr.imm)
        elif op is Opcode.LWZ:
            g[instr.rt] = self.memory.load_word(self._ea(instr) & ~3)
        elif op is Opcode.STW:
            self.memory.store_word(self._ea(instr) & ~3, g[instr.rt])
        elif op is Opcode.LBZ:
            g[instr.rt] = self.memory.load_byte(self._ea(instr))
        elif op is Opcode.STB:
            self.memory.store_byte(self._ea(instr), g[instr.rt] & 0xFF)
        elif op is Opcode.ADD:
            g[instr.rt] = alu.add32(g[instr.ra], g[instr.rb])
        elif op is Opcode.SUB:
            g[instr.rt] = alu.sub32(g[instr.ra], g[instr.rb])
        elif op is Opcode.MULLW:
            g[instr.rt] = alu.mul32(g[instr.ra], g[instr.rb])
        elif op is Opcode.DIVW:
            g[instr.rt] = alu.div32(g[instr.ra], g[instr.rb])
        elif op is Opcode.AND:
            g[instr.rt] = alu.and32(g[instr.ra], g[instr.rb])
        elif op is Opcode.OR:
            g[instr.rt] = alu.or32(g[instr.ra], g[instr.rb])
        elif op is Opcode.XOR:
            g[instr.rt] = alu.xor32(g[instr.ra], g[instr.rb])
        elif op is Opcode.ANDI:
            g[instr.rt] = alu.and32(g[instr.ra], instr.imm & 0xFFFF)
        elif op is Opcode.ORI:
            g[instr.rt] = alu.or32(g[instr.ra], instr.imm & 0xFFFF)
        elif op is Opcode.XORI:
            g[instr.rt] = alu.xor32(g[instr.ra], instr.imm & 0xFFFF)
        elif op is Opcode.SLW:
            g[instr.rt] = alu.slw32(g[instr.ra], g[instr.rb])
        elif op is Opcode.SRW:
            g[instr.rt] = alu.srw32(g[instr.ra], g[instr.rb])
        elif op is Opcode.SRAW:
            g[instr.rt] = alu.sraw32(g[instr.ra], g[instr.rb])
        elif op is Opcode.SLWI:
            g[instr.rt] = alu.slw32(g[instr.ra], instr.imm)
        elif op is Opcode.SRWI:
            g[instr.rt] = alu.srw32(g[instr.ra], instr.imm)
        elif op is Opcode.CMPW:
            st.cr = alu.cmp_signed(g[instr.ra], g[instr.rb])
        elif op is Opcode.CMPWI:
            st.cr = alu.cmp_signed(g[instr.ra], instr.imm & 0xFFFFFFFF)
        elif op is Opcode.CMPLW:
            st.cr = alu.cmp_unsigned(g[instr.ra], g[instr.rb])
        elif op is Opcode.B:
            next_pc = alu.add32(st.pc, 4 * instr.imm)
        elif op is Opcode.BC:
            taken = ((st.cr >> instr.rt) & 1) == instr.ra
            if taken:
                next_pc = alu.add32(st.pc, 4 * instr.imm)
        elif op is Opcode.BL:
            st.lr = alu.add32(st.pc, 4)
            next_pc = alu.add32(st.pc, 4 * instr.imm)
        elif op is Opcode.BLR:
            next_pc = st.lr & ~3
        elif op is Opcode.FADD:
            f[instr.rt] = alu.fadd32(f[instr.ra], f[instr.rb])
        elif op is Opcode.FSUB:
            f[instr.rt] = alu.fsub32(f[instr.ra], f[instr.rb])
        elif op is Opcode.FMUL:
            f[instr.rt] = alu.fmul32(f[instr.ra], f[instr.rb])
        elif op is Opcode.FDIV:
            f[instr.rt] = alu.fdiv32(f[instr.ra], f[instr.rb])
        elif op is Opcode.LFS:
            f[instr.rt] = self.memory.load_word(self._ea(instr) & ~3)
        elif op is Opcode.STFS:
            self.memory.store_word(self._ea(instr) & ~3, f[instr.rt])
        elif op is Opcode.MTLR:
            st.lr = g[instr.ra]
        elif op is Opcode.MFLR:
            g[instr.rt] = st.lr
        elif op is Opcode.MTCTR:
            st.ctr = g[instr.ra]
        elif op is Opcode.MFCTR:
            g[instr.rt] = st.ctr
        elif op is Opcode.BDNZ:
            st.ctr = alu.sub32(st.ctr, 1)
            if st.ctr != 0:
                next_pc = alu.add32(st.pc, 4 * instr.imm)
        elif op is Opcode.NOP:
            pass
        else:  # pragma: no cover - every opcode is handled above
            raise AssertionError(f"unhandled opcode {op!r}")

        st.pc = next_pc
        self.retired += 1
        self.class_counts[op_info(op).iclass] += 1
        return op

    def run(self, max_instructions: int = 1_000_000) -> int:
        """Run until HALT; returns the number of instructions retired.

        Raises:
            RuntimeError: if ``max_instructions`` is exceeded (runaway
                program, typically an AVP-generation bug).
        """
        executed = 0
        while not self.state.halted:
            if executed >= max_instructions:
                raise RuntimeError(
                    f"program did not halt within {max_instructions} instructions")
            self.step()
            executed += 1
        return executed

    def _ea(self, instr) -> int:
        return alu.add32(self.state.gprs[instr.ra], instr.imm)
