"""A simple flat byte-addressable memory with word access helpers.

Main memory in the reproduction sits *outside* the latch fault space — in
the real POWER6 system the memory behind the core is ECC protected and was
not the target of the paper's latch-injection campaigns.  The beam
experiment simulator models array upsets separately (see ``repro.beam``).
"""

from __future__ import annotations

from repro.isa.encoding import WORD_MASK


class Memory:
    """Sparse word-organised memory.

    Internally stores aligned 32-bit words keyed by word index, which keeps
    checkpointing cheap (a shallow dict copy) and lookups fast.
    """

    __slots__ = ("_words",)

    def __init__(self) -> None:
        self._words: dict[int, int] = {}

    def load_word(self, addr: int) -> int:
        """Read a 32-bit word.  ``addr`` must be 4-byte aligned."""
        if addr & 3:
            raise ValueError(f"unaligned word access at 0x{addr:08x}")
        return self._words.get(addr >> 2, 0)

    def store_word(self, addr: int, value: int) -> None:
        """Write a 32-bit word.  ``addr`` must be 4-byte aligned."""
        if addr & 3:
            raise ValueError(f"unaligned word access at 0x{addr:08x}")
        self._words[addr >> 2] = value & WORD_MASK

    def load_byte(self, addr: int) -> int:
        """Read one byte (zero-extended), big-endian within the word."""
        word = self._words.get(addr >> 2, 0)
        shift = (3 - (addr & 3)) * 8
        return (word >> shift) & 0xFF

    def store_byte(self, addr: int, value: int) -> None:
        """Write one byte, big-endian within the word."""
        idx = addr >> 2
        shift = (3 - (addr & 3)) * 8
        word = self._words.get(idx, 0)
        word = (word & ~(0xFF << shift)) | ((value & 0xFF) << shift)
        self._words[idx] = word & WORD_MASK

    def load_program(self, words: list[int], base: int = 0) -> None:
        """Copy a list of 32-bit words into memory starting at ``base``."""
        if base & 3:
            raise ValueError("program base must be word aligned")
        idx = base >> 2
        for offset, word in enumerate(words):
            self._words[idx + offset] = word & WORD_MASK

    def snapshot(self) -> dict[int, int]:
        """Cheap copy of the memory contents, for checkpoint/compare."""
        return dict(self._words)

    def restore(self, snap: dict[int, int]) -> None:
        """Restore the contents captured by :meth:`snapshot`."""
        self._words = dict(snap)

    def nonzero_words(self) -> dict[int, int]:
        """Mapping of word-index -> value for all nonzero words."""
        return {idx: w for idx, w in self._words.items() if w}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Memory):
            return NotImplemented
        return self.nonzero_words() == other.nonzero_words()

    def __len__(self) -> int:
        return len(self._words)
