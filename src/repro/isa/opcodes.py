"""Opcode definitions for the P6-lite ISA.

The reproduction models a POWER-like 32-bit RISC machine.  The instruction
classes mirror the categories used in Table 1 of the paper (Load, Store,
Fixed Point, Floating Point, Comparison, Branch); every opcode carries the
class it is accounted under plus the execution latency used by the pipeline
model and the CPI estimation tool.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class InstrClass(enum.Enum):
    """Instruction classes, matching the rows of Table 1."""

    LOAD = "Load"
    STORE = "Store"
    FIXED_POINT = "Fixed Point"
    FLOATING_POINT = "Floating Point"
    COMPARISON = "Comparison"
    BRANCH = "Branch"
    SYSTEM = "System"


class Opcode(enum.IntEnum):
    """Primary opcodes (bits 31:26 of the instruction word)."""

    HALT = 0
    ADDI = 1
    LWZ = 2
    STW = 3
    LBZ = 4
    STB = 5
    ADD = 6
    SUB = 7
    MULLW = 8
    DIVW = 9
    AND = 10
    OR = 11
    XOR = 12
    ANDI = 13
    ORI = 14
    XORI = 15
    SLW = 16
    SRW = 17
    SRAW = 18
    SLWI = 19
    SRWI = 20
    CMPW = 21
    CMPWI = 22
    CMPLW = 23
    B = 24
    BC = 25
    BL = 26
    BLR = 27
    FADD = 28
    FSUB = 29
    FMUL = 30
    FDIV = 31
    LFS = 32
    STFS = 33
    MTLR = 34
    MFLR = 35
    MTCTR = 36
    MFCTR = 37
    BDNZ = 38
    NOP = 62
    ATTN = 63


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one opcode."""

    opcode: Opcode
    mnemonic: str
    iclass: InstrClass
    latency: int
    has_imm: bool
    unit: str  # "FXU", "FPU", "LSU", "BRU", or "SYS"


_OP_TABLE = {
    Opcode.HALT: OpInfo(Opcode.HALT, "halt", InstrClass.SYSTEM, 1, False, "SYS"),
    Opcode.ADDI: OpInfo(Opcode.ADDI, "addi", InstrClass.FIXED_POINT, 1, True, "FXU"),
    Opcode.LWZ: OpInfo(Opcode.LWZ, "lwz", InstrClass.LOAD, 2, True, "LSU"),
    Opcode.STW: OpInfo(Opcode.STW, "stw", InstrClass.STORE, 1, True, "LSU"),
    Opcode.LBZ: OpInfo(Opcode.LBZ, "lbz", InstrClass.LOAD, 2, True, "LSU"),
    Opcode.STB: OpInfo(Opcode.STB, "stb", InstrClass.STORE, 1, True, "LSU"),
    Opcode.ADD: OpInfo(Opcode.ADD, "add", InstrClass.FIXED_POINT, 1, False, "FXU"),
    Opcode.SUB: OpInfo(Opcode.SUB, "sub", InstrClass.FIXED_POINT, 1, False, "FXU"),
    Opcode.MULLW: OpInfo(Opcode.MULLW, "mullw", InstrClass.FIXED_POINT, 2, False, "FXU"),
    Opcode.DIVW: OpInfo(Opcode.DIVW, "divw", InstrClass.FIXED_POINT, 8, False, "FXU"),
    Opcode.AND: OpInfo(Opcode.AND, "and", InstrClass.FIXED_POINT, 1, False, "FXU"),
    Opcode.OR: OpInfo(Opcode.OR, "or", InstrClass.FIXED_POINT, 1, False, "FXU"),
    Opcode.XOR: OpInfo(Opcode.XOR, "xor", InstrClass.FIXED_POINT, 1, False, "FXU"),
    Opcode.ANDI: OpInfo(Opcode.ANDI, "andi", InstrClass.FIXED_POINT, 1, True, "FXU"),
    Opcode.ORI: OpInfo(Opcode.ORI, "ori", InstrClass.FIXED_POINT, 1, True, "FXU"),
    Opcode.XORI: OpInfo(Opcode.XORI, "xori", InstrClass.FIXED_POINT, 1, True, "FXU"),
    Opcode.SLW: OpInfo(Opcode.SLW, "slw", InstrClass.FIXED_POINT, 1, False, "FXU"),
    Opcode.SRW: OpInfo(Opcode.SRW, "srw", InstrClass.FIXED_POINT, 1, False, "FXU"),
    Opcode.SRAW: OpInfo(Opcode.SRAW, "sraw", InstrClass.FIXED_POINT, 1, False, "FXU"),
    Opcode.SLWI: OpInfo(Opcode.SLWI, "slwi", InstrClass.FIXED_POINT, 1, True, "FXU"),
    Opcode.SRWI: OpInfo(Opcode.SRWI, "srwi", InstrClass.FIXED_POINT, 1, True, "FXU"),
    Opcode.CMPW: OpInfo(Opcode.CMPW, "cmpw", InstrClass.COMPARISON, 1, False, "FXU"),
    Opcode.CMPWI: OpInfo(Opcode.CMPWI, "cmpwi", InstrClass.COMPARISON, 1, True, "FXU"),
    Opcode.CMPLW: OpInfo(Opcode.CMPLW, "cmplw", InstrClass.COMPARISON, 1, False, "FXU"),
    Opcode.B: OpInfo(Opcode.B, "b", InstrClass.BRANCH, 1, True, "BRU"),
    Opcode.BC: OpInfo(Opcode.BC, "bc", InstrClass.BRANCH, 1, True, "BRU"),
    Opcode.BL: OpInfo(Opcode.BL, "bl", InstrClass.BRANCH, 1, True, "BRU"),
    Opcode.BLR: OpInfo(Opcode.BLR, "blr", InstrClass.BRANCH, 1, False, "BRU"),
    Opcode.FADD: OpInfo(Opcode.FADD, "fadd", InstrClass.FLOATING_POINT, 3, False, "FPU"),
    Opcode.FSUB: OpInfo(Opcode.FSUB, "fsub", InstrClass.FLOATING_POINT, 3, False, "FPU"),
    Opcode.FMUL: OpInfo(Opcode.FMUL, "fmul", InstrClass.FLOATING_POINT, 4, False, "FPU"),
    Opcode.FDIV: OpInfo(Opcode.FDIV, "fdiv", InstrClass.FLOATING_POINT, 12, False, "FPU"),
    Opcode.LFS: OpInfo(Opcode.LFS, "lfs", InstrClass.LOAD, 2, True, "LSU"),
    Opcode.STFS: OpInfo(Opcode.STFS, "stfs", InstrClass.STORE, 1, True, "LSU"),
    Opcode.MTLR: OpInfo(Opcode.MTLR, "mtlr", InstrClass.FIXED_POINT, 1, False, "FXU"),
    Opcode.MFLR: OpInfo(Opcode.MFLR, "mflr", InstrClass.FIXED_POINT, 1, False, "FXU"),
    Opcode.MTCTR: OpInfo(Opcode.MTCTR, "mtctr", InstrClass.FIXED_POINT, 1, False, "FXU"),
    Opcode.MFCTR: OpInfo(Opcode.MFCTR, "mfctr", InstrClass.FIXED_POINT, 1, False, "FXU"),
    Opcode.BDNZ: OpInfo(Opcode.BDNZ, "bdnz", InstrClass.BRANCH, 1, True, "BRU"),
    Opcode.NOP: OpInfo(Opcode.NOP, "nop", InstrClass.FIXED_POINT, 1, False, "FXU"),
    Opcode.ATTN: OpInfo(Opcode.ATTN, "attn", InstrClass.SYSTEM, 1, False, "SYS"),
}

_MNEMONIC_TABLE = {info.mnemonic: info for info in _OP_TABLE.values()}

#: Opcodes whose numeric value does not decode to a defined instruction.
VALID_OPCODES = frozenset(int(op) for op in _OP_TABLE)

#: Floating-point register operand opcodes (operands index the FPR file).
FPR_OPCODES = frozenset(
    {Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.LFS, Opcode.STFS}
)

#: Opcodes that write a GPR result.
GPR_WRITERS = frozenset(
    {
        Opcode.ADDI, Opcode.LWZ, Opcode.LBZ, Opcode.ADD, Opcode.SUB,
        Opcode.MULLW, Opcode.DIVW, Opcode.AND, Opcode.OR, Opcode.XOR,
        Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLW, Opcode.SRW,
        Opcode.SRAW, Opcode.SLWI, Opcode.SRWI, Opcode.MFLR, Opcode.MFCTR,
    }
)

#: Opcodes that write an FPR result.
FPR_WRITERS = frozenset({Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.LFS})

#: Branch opcodes.
BRANCH_OPCODES = frozenset({Opcode.B, Opcode.BC, Opcode.BL, Opcode.BLR, Opcode.BDNZ})


def op_info(opcode: int) -> OpInfo:
    """Return the :class:`OpInfo` for ``opcode``.

    Raises:
        KeyError: if ``opcode`` is not a defined instruction.
    """
    return _OP_TABLE[Opcode(opcode)]


def is_valid_opcode(opcode: int) -> bool:
    """True when ``opcode`` decodes to a defined instruction."""
    return opcode in VALID_OPCODES


def info_for_mnemonic(mnemonic: str) -> OpInfo:
    """Look up opcode metadata by assembler mnemonic."""
    return _MNEMONIC_TABLE[mnemonic.lower()]


def all_opinfo() -> list[OpInfo]:
    """All defined opcodes, in opcode order."""
    return [_OP_TABLE[op] for op in sorted(_OP_TABLE)]
