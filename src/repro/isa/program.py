"""Program container shared by the assembler, the AVP generator, the golden
ISS and the pipeline model."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.encoding import disassemble


@dataclass
class Program:
    """An executable image: code words plus an initial data segment.

    Attributes:
        words: instruction words, placed at ``base``.
        base: byte address of the first instruction.
        data: initial data memory contents (byte address -> word value);
            addresses must be word aligned.
        entry: byte address where execution starts (defaults to ``base``).
    """

    words: list[int]
    base: int = 0
    data: dict[int, int] = field(default_factory=dict)
    entry: int | None = None

    def __post_init__(self) -> None:
        if self.base & 3:
            raise ValueError("program base must be word aligned")
        for addr in self.data:
            if addr & 3:
                raise ValueError(f"data address 0x{addr:x} not word aligned")
        if self.entry is None:
            self.entry = self.base

    def __len__(self) -> int:
        return len(self.words)

    @property
    def end(self) -> int:
        """Byte address one past the last instruction."""
        return self.base + 4 * len(self.words)

    def listing(self) -> str:
        """Disassembled listing, one instruction per line."""
        lines = []
        for i, word in enumerate(self.words):
            addr = self.base + 4 * i
            lines.append(f"{addr:08x}:  {word:08x}  {disassemble(word)}")
        return "\n".join(lines)
