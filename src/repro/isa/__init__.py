"""P6-lite instruction set architecture.

A POWER-like 32-bit RISC: the instruction classes map onto the categories
the paper's Table 1 uses to characterise the AVP workload (Load, Store,
Fixed Point, Floating Point, Comparison, Branch).
"""

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.encoding import DecodedInstr, decode, disassemble, encode, sext16
from repro.isa.iss import ArchState, IllegalInstruction, Iss
from repro.isa.memory import Memory
from repro.isa.opcodes import (
    BRANCH_OPCODES,
    FPR_OPCODES,
    FPR_WRITERS,
    GPR_WRITERS,
    InstrClass,
    Opcode,
    OpInfo,
    all_opinfo,
    info_for_mnemonic,
    is_valid_opcode,
    op_info,
)
from repro.isa.program import Program

__all__ = [
    "ArchState",
    "AssemblyError",
    "BRANCH_OPCODES",
    "DecodedInstr",
    "FPR_OPCODES",
    "FPR_WRITERS",
    "GPR_WRITERS",
    "IllegalInstruction",
    "InstrClass",
    "Iss",
    "Memory",
    "OpInfo",
    "Opcode",
    "Program",
    "all_opinfo",
    "assemble",
    "decode",
    "disassemble",
    "encode",
    "info_for_mnemonic",
    "is_valid_opcode",
    "op_info",
    "sext16",
]
