"""A small two-pass assembler for the P6-lite ISA.

Supports labels, numeric immediates (decimal and ``0x`` hex), ``d(rN)``
load/store addressing, comments introduced by ``;`` or ``#``, and a
``.data ADDR V0 V1 ...`` directive for initialising data memory.

Branch instructions accept either a label or a raw signed word
displacement.
"""

from __future__ import annotations

import re

from repro.isa.encoding import encode
from repro.isa.opcodes import Opcode, info_for_mnemonic
from repro.isa.program import Program

_MEMREF_RE = re.compile(r"^(-?\w+)\((\w+)\)$")


class AssemblyError(ValueError):
    """Raised for malformed assembly input."""


def _parse_int(token: str) -> int:
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblyError(f"bad integer literal: {token!r}") from exc


def _parse_reg(token: str, prefix: str = "r") -> int:
    token = token.lower()
    if not token.startswith(prefix):
        raise AssemblyError(f"expected {prefix}-register, got {token!r}")
    num = _parse_int(token[len(prefix):])
    if not 0 <= num <= 31:
        raise AssemblyError(f"register number out of range: {token!r}")
    return num


def _split_operands(rest: str) -> list[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


def assemble(source: str, base: int = 0) -> Program:
    """Assemble ``source`` into a :class:`Program` based at ``base``."""
    labels: dict[str, int] = {}
    items: list[tuple[str, list[str], int]] = []  # (mnemonic, operands, line_no)
    data: dict[int, int] = {}

    # Pass 1: strip comments, collect labels and instruction items.
    pc = 0
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";")[0].split("#")[0].strip()
        if not line:
            continue
        while ":" in line:
            label, _, line = line.partition(":")
            label = label.strip()
            if not label.isidentifier():
                raise AssemblyError(f"line {line_no}: bad label {label!r}")
            if label in labels:
                raise AssemblyError(f"line {line_no}: duplicate label {label!r}")
            labels[label] = pc
            line = line.strip()
        if not line:
            continue
        if line.startswith(".data"):
            tokens = line.split()
            if len(tokens) < 3:
                raise AssemblyError(f"line {line_no}: .data needs ADDR and values")
            addr = _parse_int(tokens[1])
            for i, tok in enumerate(tokens[2:]):
                data[addr + 4 * i] = _parse_int(tok) & 0xFFFFFFFF
            continue
        mnemonic, _, rest = line.partition(" ")
        items.append((mnemonic.lower(), _split_operands(rest), line_no))
        pc += 1

    # Pass 2: encode.
    words = []
    for idx, (mnemonic, ops, line_no) in enumerate(items):
        try:
            words.append(_encode_item(mnemonic, ops, idx, labels))
        except AssemblyError as exc:
            raise AssemblyError(f"line {line_no}: {exc}") from None
    return Program(words=words, base=base, data=data)


def _branch_disp(target: str, pc_index: int, labels: dict[str, int]) -> int:
    if target in labels:
        return labels[target] - pc_index
    return _parse_int(target)


def _encode_item(mnemonic: str, ops: list[str], pc_index: int,
                 labels: dict[str, int]) -> int:
    try:
        info = info_for_mnemonic(mnemonic)
    except KeyError:
        raise AssemblyError(f"unknown mnemonic {mnemonic!r}") from None
    op = info.opcode

    if op in {Opcode.HALT, Opcode.NOP, Opcode.ATTN, Opcode.BLR}:
        _expect(ops, 0, mnemonic)
        return encode(op)
    if op in {Opcode.LWZ, Opcode.LBZ, Opcode.STW, Opcode.STB, Opcode.LFS, Opcode.STFS}:
        _expect(ops, 2, mnemonic)
        prefix = "f" if op in {Opcode.LFS, Opcode.STFS} else "r"
        rt = _parse_reg(ops[0], prefix)
        match = _MEMREF_RE.match(ops[1].replace(" ", ""))
        if not match:
            raise AssemblyError(f"bad memory operand {ops[1]!r}")
        imm = _parse_int(match.group(1))
        ra = _parse_reg(match.group(2))
        return encode(op, rt=rt, ra=ra, imm=imm)
    if op in {Opcode.B, Opcode.BL, Opcode.BDNZ}:
        _expect(ops, 1, mnemonic)
        return encode(op, imm=_branch_disp(ops[0], pc_index, labels))
    if op is Opcode.BC:
        _expect(ops, 3, mnemonic)
        bi = _parse_int(ops[0])
        bo = _parse_int(ops[1])
        if not 0 <= bi <= 3 or bo not in (0, 1):
            raise AssemblyError(f"bad bc condition fields bi={bi} bo={bo}")
        return encode(op, rt=bi, ra=bo, imm=_branch_disp(ops[2], pc_index, labels))
    if op in {Opcode.CMPW, Opcode.CMPLW}:
        _expect(ops, 2, mnemonic)
        return encode(op, ra=_parse_reg(ops[0]), rb=_parse_reg(ops[1]))
    if op is Opcode.CMPWI:
        _expect(ops, 2, mnemonic)
        return encode(op, ra=_parse_reg(ops[0]), imm=_parse_int(ops[1]))
    if op in {Opcode.MTLR, Opcode.MTCTR}:
        _expect(ops, 1, mnemonic)
        return encode(op, ra=_parse_reg(ops[0]))
    if op in {Opcode.MFLR, Opcode.MFCTR}:
        _expect(ops, 1, mnemonic)
        return encode(op, rt=_parse_reg(ops[0]))
    if op in {Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV}:
        _expect(ops, 3, mnemonic)
        return encode(op, rt=_parse_reg(ops[0], "f"), ra=_parse_reg(ops[1], "f"),
                      rb=_parse_reg(ops[2], "f"))
    if info.has_imm:
        _expect(ops, 3, mnemonic)
        return encode(op, rt=_parse_reg(ops[0]), ra=_parse_reg(ops[1]),
                      imm=_parse_int(ops[2]))
    _expect(ops, 3, mnemonic)
    return encode(op, rt=_parse_reg(ops[0]), ra=_parse_reg(ops[1]),
                  rb=_parse_reg(ops[2]))


def _expect(ops: list[str], count: int, mnemonic: str) -> None:
    if len(ops) != count:
        raise AssemblyError(
            f"{mnemonic} expects {count} operand(s), got {len(ops)}")
