"""Awan emulator, communication host and software-sim baseline."""

import pytest

from repro.cpu import Power6Core
from repro.emulator import AwanEmulator, CommHost, LatchMap, SoftwareSimulator
from repro.rtl import InjectionMode, LatchKind

from tests.conftest import SMALL_PARAMS


@pytest.fixture()
def emulator(testcase):
    core = Power6Core(SMALL_PARAMS)
    core.load_program(testcase.program)
    return AwanEmulator(core)


class TestLatchMap:
    def test_indexable_and_total(self, emulator):
        latch_map = emulator.latch_map
        assert len(latch_map) > 0
        site = latch_map.site(0)
        assert latch_map.index_of(site.name) == 0

    def test_units_and_rings_enumerated(self, emulator):
        latch_map = emulator.latch_map
        assert set(latch_map.units()) == {"IFU", "IDU", "FXU", "FPU", "LSU",
                                          "RUT", "CORE"}
        for ring in ("MODE", "GPTR", "REGFILE", "FUNC" if False else "IFU"):
            assert ring in latch_map.rings()

    def test_unit_indices_attribute_correctly(self, emulator):
        latch_map = emulator.latch_map
        for index in latch_map.indices_for_unit("RUT")[:50]:
            assert latch_map.unit_of(index) == "RUT"

    def test_kind_indices(self, emulator):
        latch_map = emulator.latch_map
        for index in latch_map.indices_for_kind(LatchKind.MODE)[:50]:
            assert latch_map.kind_of(index) is LatchKind.MODE

    def test_unit_bit_counts_sum(self, emulator):
        latch_map = emulator.latch_map
        assert sum(latch_map.unit_bit_counts().values()) == len(latch_map)

    def test_unknown_unit_raises(self, emulator):
        with pytest.raises(KeyError):
            emulator.latch_map.indices_for_unit("NOPE")

    def test_parity_sites_present(self, emulator):
        latch_map = emulator.latch_map
        assert any(latch_map.site(i).is_parity_bit
                   for i in range(len(latch_map)))


class TestAwan:
    def test_clock_stops_at_quiesce(self, emulator):
        run = emulator.clock(1_000_000)
        assert emulator.core.quiesced
        assert run < 1_000_000
        assert emulator.stats.cycles_run == run

    def test_checkpoint_reload(self, emulator):
        emulator.checkpoint("t0")
        emulator.clock(50)
        cycles = emulator.core.cycles
        emulator.reload("t0")
        assert emulator.core.cycles == cycles - 50
        assert emulator.stats.checkpoints_loaded == 1

    def test_toggle_injection_flips_bit(self, emulator):
        site = emulator.inject(123, InjectionMode.TOGGLE)
        assert site.current() in (0, 1)
        assert emulator.stats.injections == 1

    def test_sticky_injection_persists(self, emulator):
        # Pick a hot latch (the IFAR) that functional logic rewrites.
        index = emulator.latch_map.index_of("ifu.ifar.2")
        site = emulator.inject(index, InjectionMode.STICKY, sticky_cycles=10)
        level = site.current()
        emulator.clock(5)
        assert site.current() == level  # still forced

    def test_reload_clears_sticky(self, emulator):
        emulator.checkpoint("t0")
        emulator.inject(5, InjectionMode.STICKY, sticky_cycles=1000)
        emulator.reload("t0")
        assert not emulator._sticky

    def test_read_status_fields(self, emulator):
        status = emulator.read_status()
        for key in ("halted", "checkstop", "hang", "fir_rec", "recoveries",
                    "corrected", "cycles", "committed", "quiesced"):
            assert key in status

    def test_read_latch_by_name(self, emulator):
        value = emulator.read_latch("ifu.ifar")
        assert value == emulator.core.ifu.ifar.value

    def test_stats_time_model(self, emulator):
        emulator.clock(1000)
        emulator.read_status()
        stats = emulator.stats
        assert stats.engine_seconds > 0
        assert stats.host_seconds > 0
        assert stats.total_seconds == pytest.approx(
            stats.engine_seconds + stats.host_seconds)


class TestCommHost:
    def test_poll_interval_bounds_interactions(self, testcase):
        core = Power6Core(SMALL_PARAMS)
        core.load_program(testcase.program)
        emulator = AwanEmulator(core)
        fine = CommHost(emulator, poll_interval=10)
        fine.run_until_quiesce(5_000)
        fine_polls = emulator.stats.host_interactions

        core2 = Power6Core(SMALL_PARAMS)
        core2.load_program(testcase.program)
        emulator2 = AwanEmulator(core2)
        coarse = CommHost(emulator2, poll_interval=500)
        coarse.run_until_quiesce(5_000)
        assert emulator2.stats.host_interactions < fine_polls

    def test_returns_final_status(self, emulator):
        host = CommHost(emulator, poll_interval=100)
        status = host.run_until_quiesce(100_000)
        assert status["halted"] and status["quiesced"]

    def test_bad_interval_rejected(self, emulator):
        with pytest.raises(ValueError):
            CommHost(emulator, poll_interval=0)


class TestSoftwareSimulator:
    def test_functionally_identical(self, testcase):
        awan_core = Power6Core(SMALL_PARAMS)
        awan_core.load_program(testcase.program)
        AwanEmulator(awan_core).clock(1_000_000)

        soft_core = Power6Core(SMALL_PARAMS)
        soft_core.load_program(testcase.program)
        SoftwareSimulator(soft_core).clock(1_000_000)

        assert awan_core.memory.nonzero_words() == soft_core.memory.nonzero_words()
        assert awan_core.cycles == soft_core.cycles

    def test_software_sim_is_slower(self, testcase):
        import time

        def timed(emulator_cls):
            core = Power6Core(SMALL_PARAMS)
            core.load_program(testcase.program)
            emulator = emulator_cls(core)
            start = time.perf_counter()
            emulator.clock(400)
            return time.perf_counter() - start

        awan = min(timed(AwanEmulator) for _ in range(2))
        soft = min(timed(SoftwareSimulator) for _ in range(2))
        assert soft > awan


class TestCheckpointLadder:
    """Fast-path replay cache: rungs, LRU eviction, sticky hygiene."""

    def _climb(self, emulator, rungs, step=40):
        """Checkpoint, then save `rungs` ladder rungs `step` cycles apart.
        Returns the saved cycles."""
        emulator.checkpoint("tc")
        cycles = []
        for _ in range(rungs):
            emulator.clock(step)
            emulator.save_rung("tc")
            cycles.append(emulator.core.cycles)
        return cycles

    def test_restore_nearest_picks_highest_rung_at_or_below(self, emulator):
        cycles = self._climb(emulator, 3)
        assert emulator.rung_count("tc") == 3
        emulator.clock(200)
        assert emulator.restore_nearest("tc", cycles[1] + 5) == cycles[1]
        assert emulator.core.cycles == cycles[1]
        assert emulator.restore_nearest("tc", cycles[2]) == cycles[2]
        assert emulator.stats.ladder_hits == 2
        assert emulator.stats.cycles_skipped == cycles[1] + cycles[2]

    def test_restore_below_lowest_rung_reloads_base(self, emulator):
        cycles = self._climb(emulator, 2)
        base_cycle = cycles[0] - 40
        assert emulator.restore_nearest("tc", cycles[0] - 1) == base_cycle
        assert emulator.core.cycles == base_cycle
        assert emulator.stats.ladder_misses == 1

    def test_lru_eviction_beyond_max_rungs(self, testcase):
        core = Power6Core(SMALL_PARAMS)
        core.load_program(testcase.program)
        emulator = AwanEmulator(core, max_rungs=3)
        cycles = self._climb(emulator, 5)
        assert emulator.rung_count("tc") == 3
        assert emulator.stats.rungs_saved == 5
        assert emulator.stats.rung_evictions == 2
        # The two oldest rungs are gone: asking for them falls back to
        # the base checkpoint.
        assert emulator.restore_nearest("tc", cycles[1]) == 0
        assert emulator.stats.ladder_misses == 1

    def test_restore_refreshes_lru_order(self, testcase):
        core = Power6Core(SMALL_PARAMS)
        core.load_program(testcase.program)
        emulator = AwanEmulator(core, max_rungs=2)
        cycles = self._climb(emulator, 2)
        # Touch the older rung, then save a third: the *untouched* middle
        # rung is the eviction victim.
        assert emulator.restore_nearest("tc", cycles[0]) == cycles[0]
        emulator.clock(300)
        emulator.save_rung("tc")
        assert emulator.rung_count("tc") == 2
        assert emulator.restore_nearest("tc", cycles[1]) == cycles[0]

    def test_max_rungs_below_one_disables_ladder(self, testcase):
        core = Power6Core(SMALL_PARAMS)
        core.load_program(testcase.program)
        emulator = AwanEmulator(core, max_rungs=0)
        emulator.checkpoint("tc")
        emulator.clock(40)
        emulator.save_rung("tc")
        assert emulator.rung_count() == 0
        assert emulator.stats.rungs_saved == 0

    def test_drop_rungs_by_name_and_all(self, emulator):
        self._climb(emulator, 2)
        emulator.checkpoint("other")
        emulator.clock(40)
        emulator.save_rung("other")
        assert emulator.rung_count() == 3
        emulator.drop_rungs("tc")
        assert emulator.rung_count("tc") == 0
        assert emulator.rung_count("other") == 1
        emulator.drop_rungs()
        assert emulator.rung_count() == 0

    def test_restore_clears_sticky_faults(self, emulator):
        cycles = self._climb(emulator, 1)
        emulator.inject(0, InjectionMode.STICKY, sticky_cycles=1_000)
        assert emulator.sticky_pending
        emulator.restore_nearest("tc", cycles[0])
        assert not emulator.sticky_pending

    def test_reload_clears_sticky_faults(self, emulator):
        emulator.checkpoint("tc")
        emulator.inject(0, InjectionMode.STICKY, sticky_cycles=1_000)
        assert emulator.sticky_pending
        emulator.reload("tc")
        assert not emulator.sticky_pending
