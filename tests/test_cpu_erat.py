"""ERAT translation behaviour, including its three failure modes."""

import pytest

from repro.cpu.erat import PAGE_BITS, Erat


@pytest.fixture()
def erat():
    return Erat("test.erat", entries=4, ring="LSU")


class TestTranslate:
    def test_identity_mapping(self, erat):
        status, paddr = erat.translate(0x4123)
        assert status == "ok"
        assert paddr == 0x4123

    def test_hit_after_refill(self, erat):
        erat.translate(0x4000)
        victim_before = erat.victim.value
        status, paddr = erat.translate(0x4004)  # same page
        assert status == "ok" and paddr == 0x4004
        assert erat.victim.value == victim_before  # no new allocation

    def test_round_robin_eviction(self, erat):
        pages = [0x1000, 0x2000, 0x3000, 0x4000, 0x5000]
        for addr in pages:
            erat.translate(addr)
        # 4 entries: the first page was evicted by the fifth.
        valid_pages = {erat.vpn[i].value for i in range(4)
                       if (erat.valid.value >> i) & 1}
        assert (0x1000 >> PAGE_BITS) not in valid_pages
        assert (0x5000 >> PAGE_BITS) in valid_pages

    def test_offset_preserved(self, erat):
        _, paddr = erat.translate(0x40FF)
        assert paddr & ((1 << PAGE_BITS) - 1) == 0xFF


class TestFailureModes:
    def test_parity_error_reported_with_entry(self, erat):
        erat.translate(0x4000)
        entry = next(i for i in range(4) if (erat.valid.value >> i) & 1)
        erat.rpn[entry].flip(3)
        status, result = erat.translate(0x4000)
        assert status == "parity"
        assert result == entry

    def test_vpn_parity_error_detected(self, erat):
        erat.translate(0x4000)
        entry = next(i for i in range(4) if (erat.valid.value >> i) & 1)
        erat.vpn[entry].flip(0)
        # The flipped VPN now matches a *different* page; probing the
        # original page misses and refills -> potential multi-hit later.
        status, _ = erat.translate(0x4000)
        assert status in ("ok", "parity")

    def test_multihit_after_vpn_alias(self, erat):
        erat.translate(0x4000)  # vpn 0x40
        erat.translate(0x4100)  # vpn 0x41
        # Flip bit 0 of the 0x40 entry's VPN so both entries claim 0x41.
        entry = next(i for i in range(4)
                     if (erat.valid.value >> i) & 1
                     and erat.vpn[i].value == 0x40)
        erat.vpn[entry].value ^= 1  # silent corruption (keeps parity stale)
        erat.vpn[entry].par = erat.vpn[entry].value.bit_count() & 1
        status, _ = erat.translate(0x4100)
        assert status == "multihit"

    def test_rpn_silent_corruption_translates_wrong(self, erat):
        erat.translate(0x4000)
        entry = next(i for i in range(4) if (erat.valid.value >> i) & 1)
        erat.rpn[entry].write(0x99)  # legit-looking write: clean parity
        status, paddr = erat.translate(0x4010)
        assert status == "ok"
        assert paddr == (0x99 << PAGE_BITS) | 0x10


class TestInvalidate:
    def test_invalidate_entry(self, erat):
        erat.translate(0x4000)
        entry = next(i for i in range(4) if (erat.valid.value >> i) & 1)
        erat.invalidate_entry(entry)
        assert not (erat.valid.value >> entry) & 1

    def test_invalidate_all(self, erat):
        erat.translate(0x4000)
        erat.translate(0x5000)
        erat.invalidate_all()
        assert erat.valid.value == 0

    def test_refill_after_invalidate(self, erat):
        erat.translate(0x4000)
        erat.invalidate_all()
        status, paddr = erat.translate(0x4000)
        assert (status, paddr) == ("ok", 0x4000)
