"""Metrics registry semantics and exporter round-trips."""

import json
import math

import pytest

from repro.obs import (
    MetricError,
    MetricsRegistry,
    default_registry,
    load_jsonl_snapshot,
    parse_prometheus_text,
    render_jsonl,
    render_prometheus,
    set_default_registry,
    write_jsonl,
    write_prometheus,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = MetricsRegistry().counter("requests_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labeled_series_are_independent(self):
        counter = MetricsRegistry().counter("sfi_injections_total",
                                            labelnames=("outcome",))
        counter.inc(outcome="Vanished")
        counter.inc(3, outcome="Hang")
        assert counter.value(outcome="Vanished") == 1
        assert counter.value(outcome="Hang") == 3
        assert counter.value(outcome="Checkstop") == 0

    def test_rejects_negative_increment(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(MetricError, match="only go up"):
            counter.inc(-1)

    def test_rejects_wrong_label_set(self):
        counter = MetricsRegistry().counter("c", labelnames=("outcome",))
        with pytest.raises(MetricError, match="expected labels"):
            counter.inc()
        with pytest.raises(MetricError, match="expected labels"):
            counter.inc(outcome="x", extra="y")


class TestGauge:
    def test_set_inc_value(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(-3)
        assert gauge.value() == 7


class TestHistogram:
    def test_observations_land_in_buckets(self):
        hist = MetricsRegistry().histogram("h", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count() == 4
        assert hist.sum() == pytest.approx(55.55)
        cumulative = hist.cumulative_buckets(())
        assert [count for _, count in cumulative] == [1, 2, 3, 4]
        assert cumulative[-1][0] == math.inf

    def test_inf_bucket_appended_and_bounds_sorted(self):
        hist = MetricsRegistry().histogram("h", buckets=(5.0, 1.0, 1.0))
        assert hist.buckets == (1.0, 5.0, math.inf)

    def test_labeled_histograms(self):
        hist = MetricsRegistry().histogram("h", labelnames=("status",),
                                           buckets=(1.0,))
        hist.observe(0.5, status="ok")
        hist.observe(2.0, status="ok")
        hist.observe(0.1, status="failed")
        assert hist.count(status="ok") == 2
        assert hist.count(status="failed") == 1


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricError, match="already registered"):
            registry.gauge("x")

    def test_label_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", labelnames=("a",))
        with pytest.raises(MetricError, match="already registered"):
            registry.counter("x", labelnames=("b",))

    def test_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(MetricError, match="buckets"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_invalid_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError, match="invalid"):
            registry.counter("bad name")
        with pytest.raises(MetricError, match="invalid"):
            registry.counter("1starts_with_digit")

    def test_merge_sums_counters_and_histograms(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        for registry in (left, right):
            registry.counter("c", labelnames=("k",)).inc(3, k="a")
            hist = registry.histogram("h", buckets=(1.0,))
            hist.observe(0.5)
            hist.observe(2.0)
            registry.gauge("g").set(id(registry))
        left.merge(right)
        assert left.counter("c", labelnames=("k",)).value(k="a") == 6
        assert left.histogram("h", buckets=(1.0,)).count() == 4
        # Gauges are last-write-wins: the merged-in snapshot is newer.
        assert left.gauge("g").value() == id(right)

    def test_merge_rejects_kind_mismatch(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("x")
        right.gauge("x").set(1)
        with pytest.raises(MetricError):
            left.merge(right)

    def test_snapshot_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c", "help!", ("k",)).inc(2, k="v")
        registry.gauge("g").set(1.5)
        hist = registry.histogram("h", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(100.0)
        rebuilt = MetricsRegistry.from_snapshot(registry.snapshot())
        assert rebuilt.snapshot() == registry.snapshot()

    def test_default_registry_swap(self):
        replacement = MetricsRegistry()
        previous = set_default_registry(replacement)
        try:
            assert default_registry() is replacement
        finally:
            set_default_registry(previous)


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("sfi_injections_total",
                     "completed injections by outcome",
                     ("outcome",)).inc(7, outcome="Vanished")
    registry.counter("sfi_injections_total",
                     labelnames=("outcome",)).inc(2, outcome="Hang")
    registry.gauge("sfi_injections_per_second", "throughput").set(41.5)
    hist = registry.histogram("sfi_shard_wall_seconds", "shard wall time",
                              ("status",), buckets=(0.1, 1.0, 10.0))
    hist.observe(0.05, status="ok")
    hist.observe(3.0, status="ok")
    return registry


class TestPrometheusExport:
    def test_render_contains_help_type_and_samples(self):
        text = render_prometheus(_sample_registry())
        assert "# HELP sfi_injections_total completed injections" in text
        assert "# TYPE sfi_injections_total counter" in text
        assert 'sfi_injections_total{outcome="Vanished"} 7' in text
        assert "# TYPE sfi_shard_wall_seconds histogram" in text
        assert 'sfi_shard_wall_seconds_bucket{status="ok",le="+Inf"} 2' in text
        assert 'sfi_shard_wall_seconds_count{status="ok"} 2' in text

    def test_parse_round_trip(self):
        registry = _sample_registry()
        parsed = parse_prometheus_text(render_prometheus(registry))
        assert parsed.types["sfi_injections_total"] == "counter"
        assert parsed.value("sfi_injections_total", outcome="Vanished") == 7
        assert parsed.value("sfi_injections_per_second") == 41.5
        assert parsed.value("sfi_shard_wall_seconds_bucket",
                            status="ok", le="1") == 1
        assert parsed.value("sfi_shard_wall_seconds_count", status="ok") == 2

    def test_label_escaping_survives_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c", labelnames=("detail",)).inc(
            1, detail='quote " slash \\ newline \n end')
        parsed = parse_prometheus_text(render_prometheus(registry))
        assert parsed.value(
            "c", detail='quote " slash \\ newline \n end') == 1

    def test_write_is_atomic_and_readable(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_prometheus(_sample_registry(), path)
        parsed = parse_prometheus_text(path.read_text())
        assert parsed.value("sfi_injections_total", outcome="Hang") == 2
        assert not list(tmp_path.glob("*.tmp*")), "tmp file left behind"


class TestJsonlExport:
    def test_round_trip_preserves_everything(self, tmp_path):
        registry = _sample_registry()
        path = tmp_path / "metrics.jsonl"
        write_jsonl(registry, path)
        loaded = load_jsonl_snapshot(path)
        assert render_prometheus(loaded) == render_prometheus(registry)

    def test_one_json_object_per_family(self):
        lines = [line for line in
                 render_jsonl(_sample_registry()).splitlines() if line]
        assert len(lines) == 3
        names = [json.loads(line)["name"] for line in lines]
        assert "sfi_shard_wall_seconds" in names
