"""Aggregation helpers and smaller API surfaces."""

import pytest

from repro.isa import ArchState, Program, encode, Opcode
from repro.rtl import LatchKind
from repro.sfi import Outcome, per_ring_campaigns
from repro.sfi.results import CampaignResult, InjectionRecord


def _record(outcome, unit="IFU", ring="IFU"):
    return InjectionRecord(0, "x", unit, LatchKind.FUNC, ring, 0, 0, outcome)


class TestCampaignResultHelpers:
    def test_merged_with(self):
        a = CampaignResult([_record(Outcome.VANISHED)], population_bits=10)
        b = CampaignResult([_record(Outcome.CORRECTED)])
        merged = a.merged_with(b)
        assert merged.total == 2
        assert merged.population_bits == 10
        assert merged.counts()[Outcome.CORRECTED] == 1

    def test_summary_mentions_all_outcomes(self):
        result = CampaignResult([_record(Outcome.VANISHED)])
        summary = result.summary()
        for outcome in Outcome:
            assert outcome.value in summary

    def test_by_ring_partition(self):
        result = CampaignResult([_record(Outcome.VANISHED, ring="MODE"),
                                 _record(Outcome.VANISHED, ring="GPTR"),
                                 _record(Outcome.CORRECTED, ring="MODE")])
        grouped = result.by_ring()
        assert grouped["MODE"].total == 2
        assert grouped["GPTR"].total == 1

    def test_empty_result_fractions(self):
        result = CampaignResult()
        fractions = result.fractions()
        assert all(value == 0.0 for value in fractions.values())


class TestPerRingCampaigns:
    def test_targets_requested_rings(self, experiment):
        results = per_ring_campaigns(experiment, fraction=0.2,
                                     rings=["MODE", "GPTR"], seed=2)
        assert set(results) == {"MODE", "GPTR"}
        for ring, result in results.items():
            assert all(record.ring == ring for record in result.records)

    def test_fraction_scales_sample(self, experiment):
        small = per_ring_campaigns(experiment, fraction=0.1,
                                   rings=["MODE"], seed=2)
        large = per_ring_campaigns(experiment, fraction=0.3,
                                   rings=["MODE"], seed=2)
        assert large["MODE"].total > small["MODE"].total


class TestProgramAndState:
    def test_entry_defaults_to_base(self):
        program = Program(words=[encode(Opcode.HALT)], base=0x200)
        assert program.entry == 0x200

    def test_explicit_entry(self):
        program = Program(words=[encode(Opcode.NOP), encode(Opcode.HALT)],
                          base=0x200, entry=0x204)
        assert program.entry == 0x204

    def test_unaligned_data_rejected(self):
        with pytest.raises(ValueError):
            Program(words=[0], data={3: 1})

    def test_signature_includes_ctr(self):
        a, b = ArchState(), ArchState()
        b.ctr = 5
        assert a.signature() != b.signature()

    def test_signature_excludes_pc(self):
        a, b = ArchState(), ArchState()
        b.pc = 0x100
        assert a.signature() == b.signature()
