"""Snapshot/restore: the emulator's checkpoint mechanism must be exact."""

from hypothesis import given, settings, strategies as st

from repro.cpu import Power6Core

from tests.conftest import SMALL_PARAMS


def latch_state(core):
    return [(latch.value, latch.par) for latch in core.all_latches()]


class TestSnapshotRestore:
    def test_roundtrip_identity(self, core, testcase):
        core.load_program(testcase.program)
        for _ in range(25):
            core.cycle()
        snap = core.snapshot()
        before = latch_state(core)
        for _ in range(100):
            core.cycle()
        core.restore(snap)
        assert latch_state(core) == before
        assert core.cycles == snap.cycles

    def test_restore_replays_identically(self, core, testcase):
        core.load_program(testcase.program)
        snap = core.snapshot()
        core.run(max_cycles=100_000)
        first = (core.cycles, core.committed, core.memory.nonzero_words(),
                 core.arch_state().signature())
        core.restore(snap)
        core.run(max_cycles=100_000)
        second = (core.cycles, core.committed, core.memory.nonzero_words(),
                  core.arch_state().signature())
        assert first == second

    def test_restore_after_fault_clears_it(self, core, testcase):
        core.load_program(testcase.program)
        snap = core.snapshot()
        core.gprs.copies[0].banks[0][1].flip(3)
        core.restore(snap)
        assert all(latch.parity_ok() for latch in core.all_latches())

    def test_restore_covers_memory(self, core, testcase):
        core.load_program(testcase.program)
        snap = core.snapshot()
        core.memory.store_word(0x7000, 123)
        core.restore(snap)
        assert core.memory.load_word(0x7000) == 0

    def test_restore_covers_arrays(self, core, testcase):
        core.load_program(testcase.program)
        for _ in range(60):
            core.cycle()
        snap = core.snapshot()
        core.ifu.icache.array.flip(0, 3)
        core.rut.ckpt.flip(0, 5)
        core.restore(snap)
        assert core.ifu.icache.array.snapshot() == snap.arrays[0]
        assert core.rut.ckpt.snapshot() == snap.arrays[2]

    @settings(max_examples=8, deadline=None)
    @given(stop=st.integers(1, 200))
    def test_mid_run_restore_determinism(self, stop, testcase):
        core = Power6Core(SMALL_PARAMS)
        core.load_program(testcase.program)
        snap = core.snapshot()
        for _ in range(stop):
            core.cycle()
            if core.quiesced:
                break
        mid = core.snapshot()
        core.run(max_cycles=100_000)
        end_memory = core.memory.nonzero_words()
        core.restore(mid)
        core.run(max_cycles=100_000)
        assert core.memory.nonzero_words() == end_memory
        core.restore(snap)
        core.run(max_cycles=100_000)
        assert core.memory.nonzero_words() == end_memory


class TestStructureQueries:
    def test_unit_attribution_complete(self, core):
        for latch in core.all_latches():
            assert core.unit_of(latch) in core.units

    def test_latch_bits_matches_sum(self, core):
        assert core.latch_bits() == sum(l.width for l in core.all_latches())

    def test_scan_rings_cover_all_latches(self, core):
        rings = core.scan_rings()
        assert sum(ring.bit_count() for ring in rings.values()) == core.latch_bits()
        for expected in ("MODE", "GPTR", "REGFILE", "IFU", "LSU", "CORE"):
            assert expected in rings

    def test_arch_state_roundtrip_through_checkpoint(self, core, testcase):
        core.load_program(testcase.program)
        core.run(max_cycles=100_000)
        arch = core.arch_state()
        ckpt = core.checkpoint_state()
        # After quiesce the checkpoint mirrors the architected registers.
        assert arch.gprs == ckpt.gprs
        assert arch.cr == ckpt.cr and arch.lr == ckpt.lr and arch.ctr == ckpt.ctr
